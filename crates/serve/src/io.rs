//! Transports: the stdio and Unix-socket front ends of [`Server`].
//!
//! Both speak the same line protocol ([`crate::proto`]); the transport
//! only owns connection plumbing. Responses can arrive out of request
//! order (workers race), so clients must correlate by `id`.
//!
//! There is no signal handling here (the crate is `std`-only, and a
//! portable SIGTERM hook is not): graceful drain is reached through
//! `{"cmd":"shutdown"}` or — on stdio — closing the input. A killed
//! process loses only in-flight answers; the caches are process-local
//! by design.

use crate::server::{drain_summary, Control, ResponseSink, ServeOptions, Server};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Locks a mutex, recovering from poisoning (output streams hold no
/// invariants a panic could tear).
fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Serves one client over stdin/stdout until EOF or a shutdown
/// request; returns the process exit code (0 on a clean drain).
///
/// One response line per request, flushed immediately; diagnostics go
/// to stderr as `c`-prefixed comment lines so stdout stays pure JSONL.
#[must_use]
pub fn run_stdio(opts: ServeOptions) -> i32 {
    let server = Server::start(opts, None);
    let stdout = Arc::new(Mutex::new(std::io::stdout()));
    let sink: ResponseSink = Arc::new(move |line: &str| {
        let mut out = lock(&stdout);
        // A closed pipe must not take the worker down; the job already
        // completed and warmed the caches.
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    });
    let stdin = std::io::stdin();
    let mut requested: Option<(Option<String>, bool)> = None;
    for line in stdin.lock().lines() {
        let Ok(line) = line else {
            break;
        };
        match server.handle_line(&line, &sink) {
            Control::Continue => {}
            Control::Shutdown { id, hard } => {
                requested = Some((id, hard));
                break;
            }
        }
    }
    let explicit = requested.is_some();
    let (id, hard) = requested.unwrap_or((None, false));
    server.shutdown(hard);
    if explicit {
        sink(&Server::shutdown_ack(id.as_deref(), hard));
    }
    eprintln!("c serve: drained; {}", drain_summary(&server.stats()));
    0
}

/// Serves concurrent clients over a Unix domain socket at `path` until
/// some client sends `{"cmd":"shutdown"}`; returns the process exit
/// code.
///
/// A stale socket file from a previous run is removed before binding.
/// On shutdown the server drains, acknowledges to the requesting
/// client, closes every connection and removes the socket file.
#[must_use]
pub fn run_socket(path: &str, opts: ServeOptions) -> i32 {
    if std::path::Path::new(path).exists() {
        let _ = std::fs::remove_file(path);
    }
    let listener = match UnixListener::bind(path) {
        Ok(listener) => listener,
        Err(err) => {
            eprintln!("error: cannot bind {path}: {err}");
            return 1;
        }
    };
    if let Err(err) = listener.set_nonblocking(true) {
        eprintln!("error: cannot configure {path}: {err}");
        return 1;
    }
    let server = Arc::new(Server::start(opts, None));
    // Set once by the connection that carried the shutdown request:
    // (id, hard, that client's sink for the acknowledgement).
    type ShutdownRequest = (Option<String>, bool, ResponseSink);
    let pending: Arc<Mutex<Option<ShutdownRequest>>> = Arc::new(Mutex::new(None));
    let stop = Arc::new(AtomicBool::new(false));
    let streams: Arc<Mutex<Vec<UnixStream>>> = Arc::new(Mutex::new(Vec::new()));
    let mut handlers = Vec::new();

    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                if let Ok(clone) = stream.try_clone() {
                    lock(&streams).push(clone);
                }
                let server = Arc::clone(&server);
                let pending = Arc::clone(&pending);
                let stop = Arc::clone(&stop);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(&server, stream, &pending, &stop);
                }));
            }
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(err) => {
                eprintln!("error: accept on {path} failed: {err}");
                break;
            }
        }
    }

    let (id, hard, ack_sink) = match lock(&pending).take() {
        Some((id, hard, sink)) => (id, hard, Some(sink)),
        None => (None, false, None),
    };
    server.shutdown(hard);
    if let Some(sink) = ack_sink {
        sink(&Server::shutdown_ack(id.as_deref(), hard));
    }
    // Unblock every reader still parked on its connection, then reap.
    for stream in lock(&streams).drain(..) {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    for handler in handlers {
        let _ = handler.join();
    }
    let _ = std::fs::remove_file(path);
    eprintln!("c serve: drained; {}", drain_summary(&server.stats()));
    0
}

/// Reads one client's request lines until EOF, a read error or a
/// shutdown request (which is recorded for the accept loop to act on).
fn handle_connection(
    server: &Server,
    stream: UnixStream,
    pending: &Mutex<Option<(Option<String>, bool, ResponseSink)>>,
    stop: &AtomicBool,
) {
    let writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let writer = Arc::new(Mutex::new(writer));
    let sink: ResponseSink = Arc::new(move |line: &str| {
        // Disconnected clients are tolerated: the job still completes
        // and its work stays in the warm caches.
        let _ = writeln!(lock(&writer), "{line}");
    });
    for line in BufReader::new(stream).lines() {
        let Ok(line) = line else {
            break;
        };
        match server.handle_line(&line, &sink) {
            Control::Continue => {}
            Control::Shutdown { id, hard } => {
                *lock(pending) = Some((id, hard, Arc::clone(&sink)));
                stop.store(true, Ordering::Release);
                return;
            }
        }
    }
}
