//! The JSONL wire protocol: request parsing and response rendering.
//!
//! Each request is one flat JSON object per line. Three shapes exist:
//!
//! * **solve** — `{"id":"r1","file":"inst.dqdimacs"}` or
//!   `{"id":"r1","dqdimacs":"p cnf 1 1\n1 0\n"}`, with optional
//!   `"timeout_ms"`, `"node_limit"` and `"certify"` overrides;
//! * **stats** — `{"cmd":"stats","id":"s1"}` (the `id` is optional and
//!   echoed back);
//! * **shutdown** — `{"cmd":"shutdown","id":"bye"}`, optionally with
//!   `"hard":true` to cancel in-flight jobs instead of draining them.
//!
//! The parser accepts exactly the flat subset the protocol uses —
//! string, number, boolean and null values — and rejects nested
//! containers, which keeps it a few dozen lines and leaves no corner for
//! a malformed request to take down the server: every parse failure
//! becomes an `error` response on the same line.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A flat JSON scalar.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// A JSON string (unescaped).
    Str(String),
    /// A JSON number.
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Solve a formula.
    Solve(SolveRequest),
    /// Report server statistics.
    Stats {
        /// Echoed request id.
        id: Option<String>,
    },
    /// Stop accepting requests; drain (or cancel) outstanding work.
    Shutdown {
        /// Echoed request id.
        id: Option<String>,
        /// `true` cancels in-flight jobs instead of letting them finish.
        hard: bool,
    },
}

/// One solve request.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveRequest {
    /// Client-chosen request id, echoed into the response (defaults to
    /// the request's sequence number when absent).
    pub id: Option<String>,
    /// Path of a (D)QDIMACS file to solve. Exactly one of `file` /
    /// `dqdimacs` must be present.
    pub file: Option<String>,
    /// Inline (D)QDIMACS text to solve.
    pub dqdimacs: Option<String>,
    /// Per-request wall-clock limit in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Per-request AIG-node budget.
    pub node_limit: Option<usize>,
    /// Certify the verdict (overrides the server default when present).
    pub certify: Option<bool>,
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message describing the first problem found; the
/// server echoes it back as an `error` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let fields = parse_flat_object(line)?;
    let get_str = |key: &str| -> Result<Option<String>, String> {
        match fields.get(key) {
            None | Some(JsonValue::Null) => Ok(None),
            Some(JsonValue::Str(s)) => Ok(Some(s.clone())),
            // Numeric ids are legal JSON and natural for clients that
            // count requests; normalise them to their literal text.
            Some(JsonValue::Num(n)) if key == "id" => Ok(Some(format_number(*n))),
            Some(other) => Err(format!("field '{key}' must be a string, got {other:?}")),
        }
    };
    let get_u64 = |key: &str| -> Result<Option<u64>, String> {
        match fields.get(key) {
            None | Some(JsonValue::Null) => Ok(None),
            Some(JsonValue::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(Some(*n as u64)),
            Some(other) => Err(format!(
                "field '{key}' must be a non-negative integer, got {other:?}"
            )),
        }
    };
    let get_bool = |key: &str| -> Result<Option<bool>, String> {
        match fields.get(key) {
            None | Some(JsonValue::Null) => Ok(None),
            Some(JsonValue::Bool(b)) => Ok(Some(*b)),
            Some(other) => Err(format!("field '{key}' must be a boolean, got {other:?}")),
        }
    };

    let id = get_str("id")?;
    if let Some(cmd) = get_str("cmd")? {
        return match cmd.as_str() {
            "stats" => Ok(Request::Stats { id }),
            "shutdown" => Ok(Request::Shutdown {
                id,
                hard: get_bool("hard")?.unwrap_or(false),
            }),
            other => Err(format!("unknown cmd '{other}'")),
        };
    }
    let request = SolveRequest {
        id,
        file: get_str("file")?,
        dqdimacs: get_str("dqdimacs")?,
        timeout_ms: get_u64("timeout_ms")?,
        node_limit: get_u64("node_limit")?.map(|n| n as usize),
        certify: get_bool("certify")?,
    };
    match (&request.file, &request.dqdimacs) {
        (None, None) => Err("request needs 'file', 'dqdimacs' or 'cmd'".to_string()),
        (Some(_), Some(_)) => Err("'file' and 'dqdimacs' are mutually exclusive".to_string()),
        _ => Ok(Request::Solve(request)),
    }
}

/// Renders `n` the way a JSON client wrote it (integers without the
/// trailing `.0` that `f64`'s `Display` would keep implicit anyway).
fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Parses a single-level JSON object of scalar values.
fn parse_flat_object(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut chars = line.char_indices().peekable();
    skip_ws(&mut chars);
    if chars.next().map(|(_, c)| c) != Some('{') {
        return Err("expected a JSON object".to_string());
    }
    let mut fields = BTreeMap::new();
    skip_ws(&mut chars);
    if chars.peek().map(|&(_, c)| c) == Some('}') {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = parse_string(&mut chars)?;
            skip_ws(&mut chars);
            if chars.next().map(|(_, c)| c) != Some(':') {
                return Err(format!("expected ':' after key '{key}'"));
            }
            skip_ws(&mut chars);
            let value = parse_scalar(line, &mut chars)?;
            fields.insert(key, value);
            skip_ws(&mut chars);
            match chars.next().map(|(_, c)| c) {
                Some(',') => continue,
                Some('}') => break,
                _ => return Err("expected ',' or '}' in object".to_string()),
            }
        }
    }
    skip_ws(&mut chars);
    if let Some((_, c)) = chars.next() {
        return Err(format!("trailing content after object: '{c}'"));
    }
    Ok(fields)
}

type Chars<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn skip_ws(chars: &mut Chars<'_>) {
    while matches!(chars.peek(), Some(&(_, c)) if c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn parse_scalar(line: &str, chars: &mut Chars<'_>) -> Result<JsonValue, String> {
    match chars.peek().copied() {
        Some((_, '"')) => Ok(JsonValue::Str(parse_string(chars)?)),
        Some((_, 't')) => parse_literal(chars, "true", JsonValue::Bool(true)),
        Some((_, 'f')) => parse_literal(chars, "false", JsonValue::Bool(false)),
        Some((_, 'n')) => parse_literal(chars, "null", JsonValue::Null),
        Some((_, '[')) | Some((_, '{')) => {
            Err("nested containers are not part of the protocol".to_string())
        }
        Some((start, c)) if c == '-' || c.is_ascii_digit() => {
            let mut end = start;
            while let Some(&(i, c)) = chars.peek() {
                if c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' || c.is_ascii_digit() {
                    end = i + c.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            line[start..end]
                .parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| format!("invalid number '{}'", &line[start..end]))
        }
        _ => Err("expected a JSON value".to_string()),
    }
}

fn parse_literal(chars: &mut Chars<'_>, word: &str, value: JsonValue) -> Result<JsonValue, String> {
    for expected in word.chars() {
        if chars.next().map(|(_, c)| c) != Some(expected) {
            return Err(format!("invalid literal (expected '{word}')"));
        }
    }
    Ok(value)
}

fn parse_string(chars: &mut Chars<'_>) -> Result<String, String> {
    if chars.next().map(|(_, c)| c) != Some('"') {
        return Err("expected a string".to_string());
    }
    let mut out = String::new();
    loop {
        let Some((_, c)) = chars.next() else {
            return Err("unterminated string".to_string());
        };
        match c {
            '"' => return Ok(out),
            '\\' => {
                let Some((_, esc)) = chars.next() else {
                    return Err("unterminated escape".to_string());
                };
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let unit = parse_hex4(chars)?;
                        // Combine a UTF-16 surrogate pair when present.
                        let code = if (0xD800..0xDC00).contains(&unit) {
                            let mut tail = chars.clone();
                            if tail.next().map(|(_, c)| c) == Some('\\')
                                && tail.next().map(|(_, c)| c) == Some('u')
                            {
                                let low = parse_hex4(&mut tail)?;
                                if (0xDC00..0xE000).contains(&low) {
                                    *chars = tail;
                                    0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    unit
                                }
                            } else {
                                unit
                            }
                        } else {
                            unit
                        };
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("invalid escape '\\{other}'")),
                }
            }
            c => out.push(c),
        }
    }
}

fn parse_hex4(chars: &mut Chars<'_>) -> Result<u32, String> {
    let mut code = 0u32;
    for _ in 0..4 {
        let Some((_, c)) = chars.next() else {
            return Err("truncated \\u escape".to_string());
        };
        let digit = c
            .to_digit(16)
            .ok_or_else(|| format!("invalid hex digit '{c}' in \\u escape"))?;
        code = code * 16 + digit;
    }
    Ok(code)
}

/// Escapes `s` for embedding inside a double-quoted JSON string
/// (RFC 8259 §7 mandatory set).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                // Infallible on a String; swallow the Result.
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an id for embedding in a response (always as a JSON string).
pub(crate) fn id_json(id: &str) -> String {
    format!("\"{}\"", escape_json(id))
}

/// Renders an `error` response line.
pub(crate) fn error_response(id: &str, message: &str) -> String {
    format!(
        "{{\"id\":{},\"error\":\"{}\"}}",
        id_json(id),
        escape_json(message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_solve_request() {
        let req = parse_request(
            r#"{"id":"r1","file":"a.dqdimacs","timeout_ms":500,"node_limit":100000,"certify":true}"#,
        )
        .expect("valid");
        let Request::Solve(solve) = req else {
            panic!("expected solve, got {req:?}");
        };
        assert_eq!(solve.id.as_deref(), Some("r1"));
        assert_eq!(solve.file.as_deref(), Some("a.dqdimacs"));
        assert_eq!(solve.timeout_ms, Some(500));
        assert_eq!(solve.node_limit, Some(100_000));
        assert_eq!(solve.certify, Some(true));
    }

    #[test]
    fn parses_inline_dqdimacs_with_escapes() {
        let req = parse_request(r#"{"id":7,"dqdimacs":"p cnf 1 1\n1 0\n"}"#).expect("valid");
        let Request::Solve(solve) = req else {
            panic!("expected solve");
        };
        assert_eq!(solve.id.as_deref(), Some("7"));
        assert_eq!(solve.dqdimacs.as_deref(), Some("p cnf 1 1\n1 0\n"));
    }

    #[test]
    fn parses_commands() {
        assert_eq!(
            parse_request(r#"{"cmd":"stats"}"#),
            Ok(Request::Stats { id: None })
        );
        assert_eq!(
            parse_request(r#"{"cmd":"shutdown","id":"bye","hard":true}"#),
            Ok(Request::Shutdown {
                id: Some("bye".to_string()),
                hard: true,
            })
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("").is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"id":"x"}"#).is_err()); // no formula, no cmd
        assert!(parse_request(r#"{"file":"a","dqdimacs":"b"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"reboot"}"#).is_err());
        assert!(parse_request(r#"{"file":["a"]}"#).is_err()); // nested
        assert!(parse_request(r#"{"timeout_ms":-3,"file":"a"}"#).is_err());
        assert!(parse_request(r#"{"file":"a"} trailing"#).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let req = parse_request(r#"{"id":"q\"\\Aé","file":"f"}"#).expect("valid");
        let Request::Solve(solve) = req else {
            panic!("expected solve");
        };
        assert_eq!(solve.id.as_deref(), Some("q\"\\Aé"));
        assert_eq!(escape_json("a\"b\nc"), "a\\\"b\\nc");
    }

    #[test]
    fn surrogate_pairs_decode() {
        let req = parse_request(r#"{"id":"😀","file":"f"}"#).expect("valid");
        let Request::Solve(solve) = req else {
            panic!("expected solve");
        };
        assert_eq!(solve.id.as_deref(), Some("😀"));
    }
}
