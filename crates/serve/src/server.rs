//! The long-lived solver service behind `hqs serve`.
//!
//! ## Architecture
//!
//! A [`Server`] owns a pool of persistent worker threads fed from a
//! sharded queue that follows the batch scheduler's work-stealing
//! discipline (own shard from the front, steal siblings from the back);
//! unlike the batch scheduler the queue is long-lived, bounded and
//! condvar-signalled, because requests arrive over time instead of as a
//! fixed corpus. Transports ([stdio](crate::run_stdio), [Unix
//! socket](crate::run_socket)) parse request lines, hand them to
//! [`Server::handle_line`] with a per-client response sink, and write
//! whatever the sink receives — workers answer out of order, which is
//! why every response echoes the request `id`.
//!
//! ## Warm state
//!
//! All sessions share one [`WarmCache`] (preprocessing results +
//! FRAIG-reduced cones) plus a server-local verdict cache keyed by the
//! canonical formula hash and the configuration fingerprint, so
//! resolving an already-answered formula is a lookup. Certified
//! requests bypass the verdict cache (a certificate must be rebuilt)
//! but still share the warm cache.
//!
//! ## Lifecycle
//!
//! * **backpressure** — a full queue answers `overloaded` immediately
//!   instead of queueing unboundedly;
//! * **graceful drain** — `{"cmd":"shutdown"}` (or client EOF on
//!   stdio) stops intake, lets queued and in-flight jobs finish, joins
//!   the workers and only then acknowledges;
//! * **hard shutdown** — `{"cmd":"shutdown","hard":true}` additionally
//!   fires the server-wide [`CancelToken`] and every in-flight
//!   request's token, so running solves unwind at their next budget
//!   poll;
//! * **client disconnect** — response sinks swallow write failures:
//!   the job completes, the caches keep the work, in-flight drops to
//!   zero and nothing leaks.

use crate::proto::{error_response, id_json, parse_request, Request, SolveRequest};
use hqs_base::{Budget, ByteBudgetLru, CacheStatsSnapshot, CancelToken};
use hqs_core::{
    canonical_formula_hash, CertifiedOutcome, CertifyError, Dqbf, HqsConfig, Outcome, Session,
    WarmCache,
};
use hqs_engine::{JobOutcome, JobRecord};
use hqs_obs::{MetricsObserver, MetricsSnapshot};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Where a worker writes a finished response line. Sinks must tolerate
/// (swallow) downstream write failures — a disconnected client must not
/// take a worker down with it.
pub type ResponseSink = Arc<dyn Fn(&str) + Send + Sync>;

/// Configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Maximum queued (not yet dispatched) requests before new solve
    /// requests are answered `overloaded`.
    pub queue_capacity: usize,
    /// Default per-request wall-clock limit; a request's `timeout_ms`
    /// overrides it.
    pub default_timeout: Option<Duration>,
    /// Default per-request AIG-node budget; a request's `node_limit`
    /// overrides it.
    pub default_node_limit: Option<usize>,
    /// Certify verdicts by default; a request's `certify` overrides it.
    pub certify: bool,
    /// Solver configuration template; its budget field is replaced per
    /// request.
    pub config: HqsConfig,
    /// Byte budget of the verdict cache.
    pub verdict_cache_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 1,
            queue_capacity: 64,
            default_timeout: None,
            default_node_limit: None,
            certify: false,
            config: HqsConfig::default(),
            verdict_cache_bytes: 1 << 20,
        }
    }
}

/// What the transport loop should do after a handled line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Control {
    /// Keep reading requests.
    Continue,
    /// A shutdown was requested: stop intake, call
    /// [`Server::shutdown`], acknowledge with the carried id, exit.
    Shutdown {
        /// Id to echo in the acknowledgement (after the drain).
        id: Option<String>,
        /// Whether in-flight jobs were cancelled rather than drained.
        hard: bool,
    },
}

/// A snapshot of the server's introspection counters (the `stats`
/// command renders exactly this).
#[derive(Clone, Debug)]
pub struct ServeStats {
    /// Seconds since [`Server::start`].
    pub uptime_seconds: f64,
    /// Requests accepted but not yet dispatched to a worker.
    pub queued: usize,
    /// Requests currently being solved.
    pub in_flight: usize,
    /// Solve responses written (including cached and errored ones).
    pub served: u64,
    /// Solve requests rejected with `overloaded`.
    pub overloaded: u64,
    /// Verdict-cache counters.
    pub verdicts: CacheStatsSnapshot,
    /// Preprocessing-cache counters.
    pub preprocess: CacheStatsSnapshot,
    /// FRAIG-cone-cache counters.
    pub fraig: CacheStatsSnapshot,
    /// Metrics merged over every completed request, when any completed.
    pub metrics: Option<MetricsSnapshot>,
}

/// One queued solve job.
struct Job {
    seq: u64,
    id: String,
    request: SolveRequest,
    sink: ResponseSink,
    cancel: CancelToken,
}

/// Queue state guarded by one mutex: shards plus the counters that must
/// stay consistent with them.
struct QueueState {
    shards: Vec<VecDeque<Job>>,
    queued: usize,
    next_shard: usize,
    in_flight: usize,
    draining: bool,
}

struct ServerState {
    opts: ServeOptions,
    warm: Arc<WarmCache>,
    /// `(formula hash, config fingerprint) -> verdict` for definitive,
    /// uncertified answers.
    verdicts: ByteBudgetLru<(u128, u64), bool>,
    queue: Mutex<QueueState>,
    available: Condvar,
    /// Tokens of accepted-but-unfinished requests, for hard shutdown.
    tokens: Mutex<HashMap<u64, CancelToken>>,
    /// Fired on hard shutdown; every request token is chained to it at
    /// dispatch time (first cancellation wins, so the order is free).
    shutdown: CancelToken,
    served: AtomicU64,
    overloaded: AtomicU64,
    next_seq: AtomicU64,
    merged: Mutex<Option<MetricsSnapshot>>,
    started: Instant,
}

/// The running service: worker pool plus shared state. All methods take
/// `&self`, so transports can share the server behind an [`Arc`].
pub struct Server {
    state: Arc<ServerState>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Locks a mutex, recovering from poisoning: every guarded structure
/// here is counters and plain queues, never mid-mutation solver state.
fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Server {
    /// Starts the worker pool. The server shares `warm` if given (so an
    /// embedding can pool caches across servers) and builds a fresh
    /// [`WarmCache`] otherwise.
    #[must_use]
    pub fn start(opts: ServeOptions, warm: Option<Arc<WarmCache>>) -> Server {
        let workers = opts.workers.max(1);
        let verdict_budget = opts.verdict_cache_bytes;
        let state = Arc::new(ServerState {
            opts,
            warm: warm.unwrap_or_default(),
            verdicts: ByteBudgetLru::new(verdict_budget),
            queue: Mutex::new(QueueState {
                shards: (0..workers).map(|_| VecDeque::new()).collect(),
                queued: 0,
                next_shard: 0,
                in_flight: 0,
                draining: false,
            }),
            available: Condvar::new(),
            tokens: Mutex::new(HashMap::new()),
            shutdown: CancelToken::new(),
            served: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            merged: Mutex::new(None),
            started: Instant::now(),
        });
        let handles = (0..workers)
            .map(|worker| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(&state, worker))
            })
            .collect();
        Server {
            state,
            workers: Mutex::new(handles),
        }
    }

    /// The server-wide shutdown token; fires on hard shutdown.
    #[must_use]
    pub fn shutdown_token(&self) -> &CancelToken {
        &self.state.shutdown
    }

    /// The shared warm cache (for pooling across servers or asserting
    /// on hit rates in tests).
    #[must_use]
    pub fn warm_cache(&self) -> &Arc<WarmCache> {
        &self.state.warm
    }

    /// Parses and dispatches one request line. Responses — including
    /// parse errors, `overloaded` rejections and the `stats` reply —
    /// go through `sink`; solve responses arrive later, from a worker
    /// thread. Shutdown requests are NOT acknowledged here: the
    /// transport must call [`Server::shutdown`] first and acknowledge
    /// after the drain (see [`Control::Shutdown`]).
    pub fn handle_line(&self, line: &str, sink: &ResponseSink) -> Control {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Control::Continue;
        }
        match parse_request(trimmed) {
            Err(message) => {
                sink(&error_response("?", &message));
                Control::Continue
            }
            Ok(Request::Stats { id }) => {
                sink(&self.render_stats(id.as_deref()));
                Control::Continue
            }
            Ok(Request::Shutdown { id, hard }) => Control::Shutdown { id, hard },
            Ok(Request::Solve(request)) => {
                self.submit(request, sink);
                Control::Continue
            }
        }
    }

    /// Enqueues a solve request (or rejects it when draining / over
    /// capacity).
    fn submit(&self, request: SolveRequest, sink: &ResponseSink) {
        let state = &self.state;
        let seq = state.next_seq.fetch_add(1, Ordering::Relaxed);
        let id = request.id.clone().unwrap_or_else(|| seq.to_string());
        // Register the request token before taking the queue lock (the
        // two locks are never nested); a hard shutdown racing this
        // window cancels a token whose job is then rejected below,
        // which is harmless — the rejection paths deregister it.
        let cancel = CancelToken::new();
        lock(&state.tokens).insert(seq, cancel.clone());
        let mut queue = lock(&state.queue);
        if queue.draining {
            drop(queue);
            lock(&state.tokens).remove(&seq);
            sink(&error_response(&id, "server is shutting down"));
            state.served.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if queue.queued >= state.opts.queue_capacity {
            drop(queue);
            lock(&state.tokens).remove(&seq);
            state.overloaded.fetch_add(1, Ordering::Relaxed);
            sink(&format!(
                "{{\"id\":{},\"error\":\"overloaded\",\"capacity\":{}}}",
                id_json(&id),
                state.opts.queue_capacity
            ));
            return;
        }
        let shard = queue.next_shard % queue.shards.len();
        queue.next_shard = queue.next_shard.wrapping_add(1);
        queue.shards[shard].push_back(Job {
            seq,
            id,
            request,
            sink: Arc::clone(sink),
            cancel,
        });
        queue.queued += 1;
        drop(queue);
        state.available.notify_one();
    }

    /// Stops intake and waits for outstanding work: queued and
    /// in-flight jobs finish (graceful) or unwind at their next budget
    /// poll (`hard`), the workers exit and are joined. Idempotent.
    pub fn shutdown(&self, hard: bool) {
        let state = &self.state;
        if hard {
            state.shutdown.cancel("server shutdown");
            for token in lock(&state.tokens).values() {
                token.cancel("server shutdown");
            }
        }
        lock(&state.queue).draining = true;
        state.available.notify_all();
        let handles: Vec<_> = lock(&self.workers).drain(..).collect();
        for handle in handles {
            // A worker that panicked outside the per-job catch_unwind
            // already lost its thread; joining its remains is fine.
            let _ = handle.join();
        }
    }

    /// Current introspection counters.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        let state = &self.state;
        let (queued, in_flight) = {
            let queue = lock(&state.queue);
            (queue.queued, queue.in_flight)
        };
        ServeStats {
            uptime_seconds: state.started.elapsed().as_secs_f64(),
            queued,
            in_flight,
            served: state.served.load(Ordering::Relaxed),
            overloaded: state.overloaded.load(Ordering::Relaxed),
            verdicts: state.verdicts.stats(),
            preprocess: state.warm.preprocess_stats(),
            fraig: state.warm.fraig_stats(),
            metrics: lock(&state.merged).clone(),
        }
    }

    /// Renders the `stats` response line.
    fn render_stats(&self, id: Option<&str>) -> String {
        let stats = self.stats();
        let cache = |s: &CacheStatsSnapshot| {
            format!(
                "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"entries\":{},\"bytes\":{}}}",
                s.hits, s.misses, s.evictions, s.entries, s.bytes
            )
        };
        let metrics = match &stats.metrics {
            Some(snapshot) => snapshot.to_json_compact(),
            None => "null".to_string(),
        };
        format!(
            "{{\"id\":{},\"stats\":{{\"uptime_s\":{:.3},\"queued\":{},\"in_flight\":{},\
             \"served\":{},\"overloaded\":{},\"verdict_cache\":{},\"preprocess_cache\":{},\
             \"fraig_cache\":{},\"metrics\":{}}}}}",
            id_json(id.unwrap_or("stats")),
            stats.uptime_seconds,
            stats.queued,
            stats.in_flight,
            stats.served,
            stats.overloaded,
            cache(&stats.verdicts),
            cache(&stats.preprocess),
            cache(&stats.fraig),
            metrics,
        )
    }

    /// Renders the post-drain shutdown acknowledgement.
    #[must_use]
    pub fn shutdown_ack(id: Option<&str>, hard: bool) -> String {
        format!(
            "{{\"id\":{},\"ok\":true,\"drained\":true,\"hard\":{}}}",
            id_json(id.unwrap_or("shutdown")),
            hard
        )
    }
}

/// One worker's dispatch loop: claim from the own shard's front, steal
/// from a sibling's back, wait when the queue is dry, exit when the
/// server drains. The server-wide shutdown token is polled on every
/// iterating path (claim wait and job dispatch) so a hard shutdown also
/// flushes still-queued jobs (their request tokens are already
/// cancelled; solving them is a no-op poll, but skipping the solve
/// entirely keeps the drain prompt).
fn worker_loop(state: &Arc<ServerState>, worker: usize) {
    loop {
        let job = {
            let mut queue = lock(&state.queue);
            loop {
                if let Some(job) = claim(&mut queue, worker) {
                    queue.queued -= 1;
                    queue.in_flight += 1;
                    break Some(job);
                }
                if queue.draining || state.shutdown.is_cancelled() {
                    break None;
                }
                queue = match state.available.wait(queue) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        let Some(job) = job else {
            return;
        };
        let seq = job.seq;
        let sink = Arc::clone(&job.sink);
        let response = if state.shutdown.is_cancelled() {
            cancelled_response(state, &job, worker)
        } else {
            match catch_unwind(AssertUnwindSafe(|| execute(state, &job, worker))) {
                Ok(response) => response,
                Err(panic) => panic_response(state, &job, worker, panic.as_ref()),
            }
        };
        sink(&response);
        state.served.fetch_add(1, Ordering::Relaxed);
        lock(&state.tokens).remove(&seq);
        lock(&state.queue).in_flight -= 1;
        state.available.notify_all();
    }
}

/// Claims the next job for `worker`: own shard front first, then steal
/// from the back of the first non-empty sibling.
fn claim(queue: &mut QueueState, worker: usize) -> Option<Job> {
    if let Some(job) = queue.shards.get_mut(worker).and_then(VecDeque::pop_front) {
        return Some(job);
    }
    let shards = queue.shards.len();
    for offset in 1..shards {
        let victim = (worker + offset) % shards;
        if let Some(job) = queue.shards.get_mut(victim).and_then(VecDeque::pop_back) {
            return Some(job);
        }
    }
    None
}

/// Solves one request end to end and renders its response line.
fn execute(state: &Arc<ServerState>, job: &Job, worker: usize) -> String {
    let started = Instant::now();
    let text = match (&job.request.file, &job.request.dqdimacs) {
        (Some(path), _) => match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => return error_response(&job.id, &format!("cannot read {path}: {err}")),
        },
        (None, Some(inline)) => inline.clone(),
        (None, None) => return error_response(&job.id, "request carries no formula"),
    };
    let file = match hqs_cnf::dimacs::parse_dqdimacs(&text) {
        Ok(file) => file,
        Err(err) => return error_response(&job.id, &err.to_string()),
    };
    let dqbf = Dqbf::from_file(&file);
    let certify = job.request.certify.unwrap_or(state.opts.certify);

    let mut config = state.opts.config.clone();
    config.certify = certify;
    let fingerprint = config.fingerprint();
    let verdict_key = (canonical_formula_hash(&dqbf), fingerprint);
    // Certified requests must rebuild their certificate; everything else
    // can be answered from the verdict cache.
    if !certify {
        if let Some(sat) = state.verdicts.get(&verdict_key) {
            let outcome = if sat {
                JobOutcome::Sat
            } else {
                JobOutcome::Unsat
            };
            return render_response(
                &job.id,
                &record(job, &outcome, false, started, worker, fingerprint, None),
                true,
            );
        }
    }

    let mut budget = Budget::new().with_cancel_token(job.cancel.clone());
    let timeout = job
        .request
        .timeout_ms
        .map(Duration::from_millis)
        .or(state.opts.default_timeout);
    if let Some(timeout) = timeout {
        budget = budget.with_timeout(timeout);
    }
    if let Some(nodes) = job.request.node_limit.or(state.opts.default_node_limit) {
        budget = budget.with_node_limit(nodes);
    }
    config.budget = budget;

    let observer = Arc::new(MetricsObserver::new());
    let mut session = match Session::builder()
        .config(config)
        .observer(Arc::clone(&observer) as _)
        .warm_cache(Arc::clone(&state.warm))
        .build()
    {
        Ok(session) => session,
        Err(err) => return error_response(&job.id, &err.to_string()),
    };
    let (outcome, certified) = if certify {
        match session.solve_certified(&dqbf) {
            Ok(CertifiedOutcome::Sat(_)) => (JobOutcome::Sat, true),
            Ok(CertifiedOutcome::Unsat(_)) => (JobOutcome::Unsat, true),
            Ok(CertifiedOutcome::Limit(e)) => (JobOutcome::Limit(e), false),
            // Too many universals to expand a certificate; keep the
            // plain verdict, reported uncertified.
            Err(CertifyError::TooLarge) => (outcome_of(session.solve(&dqbf)), false),
            Err(err) => (JobOutcome::Error(err.to_string()), false),
        }
    } else {
        (outcome_of(session.solve(&dqbf)), false)
    };

    match outcome {
        JobOutcome::Sat => state.verdicts.insert(verdict_key, true, VERDICT_COST),
        JobOutcome::Unsat => state.verdicts.insert(verdict_key, false, VERDICT_COST),
        _ => {}
    }
    let snapshot = observer.snapshot();
    {
        let mut merged = lock(&state.merged);
        match merged.as_mut() {
            Some(merged) => merged.merge(&snapshot),
            None => *merged = Some(snapshot.clone()),
        }
    }
    render_response(
        &job.id,
        &record(
            job,
            &outcome,
            certified,
            started,
            worker,
            fingerprint,
            Some(snapshot),
        ),
        false,
    )
}

/// Approximate byte cost of one verdict-cache entry (key + value +
/// map overhead).
const VERDICT_COST: usize = 64;

fn outcome_of(result: Outcome) -> JobOutcome {
    match result {
        Outcome::Sat => JobOutcome::Sat,
        Outcome::Unsat => JobOutcome::Unsat,
        Outcome::Unknown(e) => JobOutcome::Limit(e),
    }
}

/// Builds the batch-schema record for one served request.
fn record(
    job: &Job,
    outcome: &JobOutcome,
    certified: bool,
    started: Instant,
    worker: usize,
    fingerprint: u64,
    metrics: Option<MetricsSnapshot>,
) -> JobRecord {
    JobRecord {
        index: job.seq as usize,
        name: job.id.clone(),
        entry: "serve".to_string(),
        config_hash: fingerprint,
        outcome: outcome.clone(),
        certified,
        wall_seconds: started.elapsed().as_secs_f64(),
        cpu_seconds: None,
        worker,
        metrics,
    }
}

/// Maps a job outcome to the (Q)DIMACS-convention exit code the batch
/// runner uses: 10 SAT, 20 UNSAT, 30 budget-limited, 1 failure.
fn exit_code(outcome: &JobOutcome) -> u32 {
    match outcome {
        JobOutcome::Sat => 10,
        JobOutcome::Unsat => 20,
        JobOutcome::Limit(_) => 30,
        JobOutcome::Panicked(_) | JobOutcome::Error(_) => 1,
    }
}

/// Wraps a batch-schema record into a response line:
/// `{"id":…,"exit_code":…,"cached":…,` + the record's own fields.
fn render_response(id: &str, record: &JobRecord, cached: bool) -> String {
    let body = record.to_jsonl();
    format!(
        "{{\"id\":{},\"exit_code\":{},\"cached\":{},{}",
        id_json(id),
        exit_code(&record.outcome),
        cached,
        body.strip_prefix('{').unwrap_or(&body)
    )
}

/// Response for a job flushed by a hard shutdown without solving.
fn cancelled_response(_state: &Arc<ServerState>, job: &Job, worker: usize) -> String {
    let outcome = JobOutcome::Limit(hqs_base::Exhaustion::Cancelled);
    render_response(
        &job.id,
        &record(job, &outcome, false, Instant::now(), worker, 0, None),
        false,
    )
}

/// Response for a job whose solve panicked (the panic is confined to
/// the job, mirroring the batch scheduler).
fn panic_response(
    _state: &Arc<ServerState>,
    job: &Job,
    worker: usize,
    panic: &(dyn std::any::Any + Send),
) -> String {
    let message = if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    let outcome = JobOutcome::Panicked(message);
    render_response(
        &job.id,
        &record(job, &outcome, false, Instant::now(), worker, 0, None),
        false,
    )
}

/// Renders a `ServeStats` line fragment for logs (`c`-prefixed human
/// text used by the transports at drain time).
pub(crate) fn drain_summary(stats: &ServeStats) -> String {
    format!(
        "served {} (overloaded {}), caches: verdicts {}/{} preprocess {}/{} fraig {}/{}",
        stats.served,
        stats.overloaded,
        stats.verdicts.hits,
        stats.verdicts.hits + stats.verdicts.misses,
        stats.preprocess.hits,
        stats.preprocess.hits + stats.preprocess.misses,
        stats.fraig.hits,
        stats.fraig.hits + stats.fraig.misses,
    )
}
