//! `hqs-serve` — the long-lived HQS solver service.
//!
//! A one-shot `hqs <file>` invocation pays the whole pipeline — parse,
//! preprocess, build the AIG, sweep, solve — for every instance, then
//! throws the state away. Serving workloads (PEC sweeps over circuit
//! families, CEGIS-style refinement loops, IDE integrations) solve
//! *streams* of closely related formulas, where most of that work
//! repeats. This crate keeps a solver process alive and reuses warm
//! state across requests:
//!
//! * a shared [`WarmCache`](hqs_core::WarmCache) (preprocessing results
//!   keyed by the canonical formula hash + FRAIG-reduced cones keyed by
//!   their canonical cone encoding), attached to every session;
//! * a verdict cache short-circuiting formulas the server has already
//!   decided under the same configuration;
//! * a persistent worker pool fed by a bounded, work-stealing request
//!   queue with explicit `overloaded` backpressure.
//!
//! ## Wire protocol
//!
//! One JSON object per line in, one per line out (the batch JSONL
//! record schema plus `id`, `exit_code` and `cached`); see
//! [`proto`] for the request grammar and DESIGN.md §16 for the full
//! specification. Exit codes follow the (Q)DIMACS convention the CLI
//! already uses: 10 SAT, 20 UNSAT, 30 budget-limited.
//!
//! ```text
//! → {"id":"a","dqdimacs":"p cnf 1 2\n1 0\n-1 0\n"}
//! ← {"id":"a","exit_code":20,"cached":false,"index":0,...,"outcome":"UNSAT",...}
//! → {"cmd":"stats"}
//! ← {"id":"stats","stats":{"uptime_s":0.012,"in_flight":0,...}}
//! → {"cmd":"shutdown"}
//! ← {"id":"shutdown","ok":true,"drained":true,"hard":false}
//! ```
//!
//! ## Entry points
//!
//! [`run_stdio`] / [`run_socket`] are the CLI transports;
//! [`Server`] is the embeddable core (start a pool, feed it lines,
//! drain it) that the integration tests drive in-process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proto;
mod server;

#[cfg(unix)]
mod io;

pub use proto::{escape_json, parse_request, JsonValue, Request, SolveRequest};
pub use server::{Control, ResponseSink, ServeOptions, ServeStats, Server};

#[cfg(unix)]
pub use io::{run_socket, run_stdio};
