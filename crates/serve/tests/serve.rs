//! In-process integration tests of the serving core: verdict contract,
//! warm-cache reuse, backpressure, timeouts, disconnects and drain.

use hqs_serve::{Control, ResponseSink, ServeOptions, Server};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A sink that records every response line.
fn recording_sink() -> (ResponseSink, Arc<Mutex<Vec<String>>>) {
    let lines: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let captured = Arc::clone(&lines);
    let sink: ResponseSink = Arc::new(move |line: &str| {
        captured.lock().expect("sink mutex").push(line.to_string());
    });
    (sink, lines)
}

fn take_lines(lines: &Arc<Mutex<Vec<String>>>) -> Vec<String> {
    lines.lock().expect("sink mutex").clone()
}

/// Polls until `served` reaches `count` (responses are asynchronous).
fn wait_served(server: &Server, count: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while server.stats().served < count {
        assert!(
            Instant::now() < deadline,
            "server did not serve {count} responses in time"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

const SAT_CNF: &str = "p cnf 1 1\\n1 0\\n";
const UNSAT_CNF: &str = "p cnf 1 2\\n1 0\\n-1 0\\n";
/// Matching-pairs DQBF (Example 1 shape): satisfiable, decided by
/// preprocessing, certifiable.
const DQBF_SAT: &str =
    "p cnf 4 4\\na 1 2 0\\nd 3 1 0\\nd 4 2 0\\n1 -3 0\\n-1 3 0\\n2 -4 0\\n-2 4 0\\n";

fn solve_line(id: &str, dqdimacs: &str, extra: &str) -> String {
    format!("{{\"id\":\"{id}\",\"dqdimacs\":\"{dqdimacs}\"{extra}}}")
}

/// A pigeonhole CNF (n+1 pigeons, n holes, UNSAT) that survives
/// preprocessing, as inline DIMACS with literal `\n` escapes.
fn pigeonhole(holes: usize) -> String {
    let pigeons = holes + 1;
    let var = |p: usize, h: usize| p * holes + h + 1;
    let mut clauses: Vec<String> = Vec::new();
    for p in 0..pigeons {
        let mut clause: Vec<String> = (0..holes).map(|h| var(p, h).to_string()).collect();
        clause.push("0".to_string());
        clauses.push(clause.join(" "));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                clauses.push(format!("-{} -{} 0", var(p1, h), var(p2, h)));
            }
        }
    }
    format!(
        "p cnf {} {}\\n{}\\n",
        pigeons * holes,
        clauses.len(),
        clauses.join("\\n")
    )
}

#[test]
fn verdict_contract_and_out_of_order_ids() {
    let server = Server::start(
        ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        },
        None,
    );
    let (sink, lines) = recording_sink();
    for (id, formula) in [
        ("sat-1", SAT_CNF),
        ("unsat-1", UNSAT_CNF),
        ("dqbf-1", DQBF_SAT),
    ] {
        assert_eq!(
            server.handle_line(&solve_line(id, formula, ""), &sink),
            Control::Continue
        );
    }
    wait_served(&server, 3);
    server.shutdown(false);
    let responses = take_lines(&lines);
    assert_eq!(responses.len(), 3);
    let find = |id: &str| {
        responses
            .iter()
            .find(|l| l.contains(&format!("\"id\":\"{id}\"")))
            .unwrap_or_else(|| panic!("no response for {id} in {responses:?}"))
    };
    assert!(find("sat-1").contains("\"exit_code\":10"));
    assert!(find("sat-1").contains("\"outcome\":\"SAT\""));
    assert!(find("unsat-1").contains("\"exit_code\":20"));
    assert!(find("dqbf-1").contains("\"exit_code\":10"));
    // Responses carry per-request metrics and the batch record schema.
    assert!(find("sat-1").contains("\"metrics\":{"));
    assert!(find("sat-1").contains("\"entry\":\"serve\""));
    let stats = server.stats();
    assert_eq!((stats.queued, stats.in_flight), (0, 0));
    assert_eq!(stats.served, 3);
}

#[test]
fn repeated_formula_hits_the_verdict_cache() {
    let server = Server::start(ServeOptions::default(), None);
    let (sink, lines) = recording_sink();
    server.handle_line(&solve_line("cold", UNSAT_CNF, ""), &sink);
    wait_served(&server, 1);
    server.handle_line(&solve_line("warm", UNSAT_CNF, ""), &sink);
    wait_served(&server, 2);
    server.shutdown(false);
    let responses = take_lines(&lines);
    let warm = responses
        .iter()
        .find(|l| l.contains("\"id\":\"warm\""))
        .expect("warm response");
    assert!(
        warm.contains("\"cached\":true"),
        "expected a cache hit: {warm}"
    );
    assert!(warm.contains("\"exit_code\":20"));
    let stats = server.stats();
    assert_eq!(stats.verdicts.hits, 1);
    assert_eq!(stats.verdicts.misses, 1);
}

#[test]
fn certified_requests_bypass_verdicts_but_share_the_preprocess_cache() {
    let server = Server::start(ServeOptions::default(), None);
    let (sink, lines) = recording_sink();
    server.handle_line(&solve_line("c1", DQBF_SAT, ",\"certify\":true"), &sink);
    wait_served(&server, 1);
    server.handle_line(&solve_line("c2", DQBF_SAT, ",\"certify\":true"), &sink);
    wait_served(&server, 2);
    server.shutdown(false);
    let responses = take_lines(&lines);
    for id in ["c1", "c2"] {
        let line = responses
            .iter()
            .find(|l| l.contains(&format!("\"id\":\"{id}\"")))
            .expect("response");
        assert!(line.contains("\"exit_code\":10"));
        assert!(line.contains("\"certified\":true"));
        // Certificates are rebuilt each time, never verdict-cached.
        assert!(line.contains("\"cached\":false"));
    }
    let stats = server.stats();
    assert!(
        stats.preprocess.hits >= 1,
        "second certified solve should hit the preprocessing cache: {stats:?}"
    );
}

#[test]
fn overloaded_backpressure_is_explicit() {
    let server = Server::start(
        ServeOptions {
            workers: 1,
            queue_capacity: 0,
            ..ServeOptions::default()
        },
        None,
    );
    let (sink, lines) = recording_sink();
    server.handle_line(&solve_line("burst", SAT_CNF, ""), &sink);
    // Capacity 0 rejects synchronously; no wait needed.
    let responses = take_lines(&lines);
    assert_eq!(responses.len(), 1);
    assert!(responses[0].contains("\"error\":\"overloaded\""));
    assert!(responses[0].contains("\"capacity\":0"));
    assert_eq!(server.stats().overloaded, 1);
    server.shutdown(false);
}

#[test]
fn per_request_timeout_does_not_leak_the_job() {
    let server = Server::start(ServeOptions::default(), None);
    let (sink, lines) = recording_sink();
    server.handle_line(
        &solve_line("slow", &pigeonhole(4), ",\"timeout_ms\":0"),
        &sink,
    );
    wait_served(&server, 1);
    let stats = server.stats();
    assert_eq!(
        (stats.queued, stats.in_flight),
        (0, 0),
        "job leaked: {stats:?}"
    );
    server.shutdown(false);
    let responses = take_lines(&lines);
    assert_eq!(responses.len(), 1);
    assert!(
        responses[0].contains("\"exit_code\":30"),
        "expected a budget-limited verdict: {}",
        responses[0]
    );
    assert!(responses[0].contains("\"outcome\":\"TIMEOUT\""));
}

#[test]
fn client_disconnect_mid_request_leaks_nothing() {
    let server = Server::start(ServeOptions::default(), None);
    // This client vanished: its sink drops every response on the floor
    // (the transports likewise swallow write errors).
    let gone: ResponseSink = Arc::new(|_line: &str| {});
    server.handle_line(&solve_line("ghost", &pigeonhole(3), ""), &gone);
    wait_served(&server, 1);
    let stats = server.stats();
    assert_eq!(
        (stats.queued, stats.in_flight),
        (0, 0),
        "job leaked: {stats:?}"
    );
    // The work still warmed the caches and the server still serves.
    let (sink, lines) = recording_sink();
    server.handle_line(&solve_line("alive", SAT_CNF, ""), &sink);
    wait_served(&server, 2);
    server.shutdown(false);
    assert!(take_lines(&lines)[0].contains("\"exit_code\":10"));
}

#[test]
fn hard_shutdown_cancels_in_flight_work_and_drains() {
    let server = Server::start(
        ServeOptions {
            workers: 1,
            ..ServeOptions::default()
        },
        None,
    );
    let (sink, lines) = recording_sink();
    // A pile of nontrivial jobs; with one worker most are still queued
    // when the hard shutdown fires.
    for i in 0..6 {
        server.handle_line(&solve_line(&format!("j{i}"), &pigeonhole(5), ""), &sink);
    }
    server.shutdown(true);
    let responses = take_lines(&lines);
    // Every accepted job got exactly one response — a verdict if it
    // finished before the cancellation, CANCELLED otherwise.
    assert_eq!(responses.len(), 6);
    for line in &responses {
        assert!(
            line.contains("\"outcome\":\"UNSAT\"") || line.contains("\"outcome\":\"CANCELLED\""),
            "unexpected response: {line}"
        );
    }
    let stats = server.stats();
    assert_eq!((stats.queued, stats.in_flight), (0, 0));
    assert!(server.shutdown_token().is_cancelled());
}

#[test]
fn stats_command_reports_shape_and_counts() {
    let server = Server::start(ServeOptions::default(), None);
    let (sink, lines) = recording_sink();
    server.handle_line(&solve_line("one", SAT_CNF, ""), &sink);
    wait_served(&server, 1);
    server.handle_line("{\"cmd\":\"stats\",\"id\":\"s\"}", &sink);
    server.shutdown(false);
    let responses = take_lines(&lines);
    let stats_line = responses
        .iter()
        .find(|l| l.contains("\"stats\":{"))
        .expect("stats response");
    for key in [
        "\"id\":\"s\"",
        "\"uptime_s\":",
        "\"queued\":0",
        "\"in_flight\":0",
        "\"served\":1",
        "\"verdict_cache\":{",
        "\"preprocess_cache\":{",
        "\"fraig_cache\":{",
        "\"metrics\":{",
    ] {
        assert!(stats_line.contains(key), "missing {key} in {stats_line}");
    }
}

#[test]
fn malformed_lines_and_draining_rejections_answer_with_errors() {
    let server = Server::start(ServeOptions::default(), None);
    let (sink, lines) = recording_sink();
    assert_eq!(server.handle_line("not json", &sink), Control::Continue);
    assert_eq!(server.handle_line("", &sink), Control::Continue); // blank: ignored
    assert_eq!(
        server.handle_line("{\"cmd\":\"shutdown\",\"id\":\"bye\"}", &sink),
        Control::Shutdown {
            id: Some("bye".to_string()),
            hard: false,
        }
    );
    server.shutdown(false);
    // Post-drain submissions are refused explicitly.
    server.handle_line(&solve_line("late", SAT_CNF, ""), &sink);
    let responses = take_lines(&lines);
    assert!(responses[0].contains("\"error\":"));
    assert!(responses
        .iter()
        .any(|l| l.contains("server is shutting down")));
    // The acknowledgement is rendered by the transport after draining.
    let ack = Server::shutdown_ack(Some("bye"), false);
    assert!(ack.contains("\"ok\":true") && ack.contains("\"drained\":true"));
}

#[test]
fn file_requests_solve_from_disk() {
    let dir = std::env::temp_dir().join(format!("hqs-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tempdir");
    let path = dir.join("inst.dqdimacs");
    std::fs::write(&path, "p cnf 1 2\n1 0\n-1 0\n").expect("write");
    let server = Server::start(ServeOptions::default(), None);
    let (sink, lines) = recording_sink();
    server.handle_line(
        &format!(
            "{{\"id\":\"f\",\"file\":\"{}\"}}",
            path.display().to_string().replace('\\', "\\\\")
        ),
        &sink,
    );
    server.handle_line(
        "{\"id\":\"missing\",\"file\":\"/nonexistent/x.dqdimacs\"}",
        &sink,
    );
    wait_served(&server, 2);
    server.shutdown(false);
    let responses = take_lines(&lines);
    let find = |id: &str| {
        responses
            .iter()
            .find(|l| l.contains(&format!("\"id\":\"{id}\"")))
            .expect("response")
    };
    assert!(find("f").contains("\"exit_code\":20"));
    assert!(find("missing").contains("\"error\":"));
    let _ = std::fs::remove_dir_all(&dir);
}
