//! The HQS main loop (Fig. 3 of the paper).

use crate::build::build_aig;
use crate::depgraph::{linearise, DepGraph};
use crate::elim::AigDqbf;
use crate::elimset::minimal_elimination_set_observed;
use crate::preprocess::{preprocess_full, PreprocessResult, PreprocessStats};
use crate::Dqbf;
use hqs_base::{Budget, Exhaustion, Var};
use hqs_obs::{Metric, Obs, Phase};
use hqs_qbf::{QbfResult, QbfSolver, QbfStats};
use std::fmt;

/// Result of a DQBF solve.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DqbfResult {
    /// The formula is satisfied (Skolem functions exist).
    Sat,
    /// The formula is unsatisfied.
    Unsat,
    /// A resource limit was hit first (paper: TO/MO).
    Limit(Exhaustion),
}

impl DqbfResult {
    /// Converts a QBF backend verdict.
    #[must_use]
    pub fn from_qbf(result: QbfResult) -> Self {
        match result {
            QbfResult::Sat => DqbfResult::Sat,
            QbfResult::Unsat => DqbfResult::Unsat,
            QbfResult::Limit(e) => DqbfResult::Limit(e),
        }
    }
}

/// A verdict bundled with its machine-checkable certificate, as returned
/// by [`Session::solve_certified`](crate::Session::solve_certified).
#[derive(Clone, Debug)]
pub enum CertifiedOutcome {
    /// Satisfied; the certificate holds explicit Skolem function tables
    /// and has already passed
    /// [`verify`](crate::skolem::SkolemCertificate::verify).
    Sat(crate::skolem::SkolemCertificate),
    /// Unsatisfied; the certificate holds the expansion trace and a DRAT
    /// proof and has already passed
    /// [`verify`](crate::refute::RefutationCertificate::verify).
    Unsat(crate::refute::RefutationCertificate),
    /// A resource limit was hit; no verdict, no certificate.
    Limit(Exhaustion),
}

/// Why [`Session::solve_certified`](crate::Session::solve_certified)
/// could not certify a verdict.
///
/// Apart from [`CertifyError::TooLarge`], every variant indicates an
/// internal soundness bug: the solver's verdict and the independent
/// certification machinery disagree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CertifyError {
    /// The formula exceeds the expansion limit
    /// ([`MAX_EXPANSION_UNIVERSALS`](crate::expand::MAX_EXPANSION_UNIVERSALS));
    /// certificates are built over the universal expansion.
    TooLarge,
    /// The solver said SAT but no Skolem certificate could be extracted
    /// (the expansion is unsatisfiable): a soundness disagreement.
    SatNotCertified,
    /// The solver said UNSAT but no checked refutation could be produced
    /// (the expansion is satisfiable, or the proof was rejected): a
    /// soundness disagreement.
    UnsatNotCertified,
    /// A certificate was produced but failed its own verification: a bug
    /// in the certificate machinery itself.
    CertificateRejected,
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyError::TooLarge => write!(
                f,
                "formula exceeds the universal-expansion limit for certification"
            ),
            CertifyError::SatNotCertified => {
                write!(f, "SAT verdict could not be certified (soundness bug)")
            }
            CertifyError::UnsatNotCertified => {
                write!(f, "UNSAT verdict could not be certified (soundness bug)")
            }
            CertifyError::CertificateRejected => {
                write!(f, "certificate failed its own verification (soundness bug)")
            }
        }
    }
}

impl std::error::Error for CertifyError {}

/// Which QBF decision procedure receives the linearised remainder —
/// the paper's abstract promises the produced QBF "can be decided using
/// any standard QBF solver".
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum QbfBackend {
    /// The AIG-based elimination solver (the AIGSOLVE role; HQS feeds it
    /// the AIG directly).
    #[default]
    Elimination,
    /// The search-based (QDPLL-style) solver of [`hqs_qbf::search`]; the
    /// AIG is Tseitin-converted back to CNF first.
    Search,
}

/// Which universal variables the main loop eliminates.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ElimStrategy {
    /// HQS: the MaxSAT-minimal set that linearises the prefix (Eq. 1–2),
    /// ordered by the number of existential copies each elimination
    /// introduces. Once the dependency graph is acyclic, the remaining QBF
    /// goes to the QBF backend.
    #[default]
    MaxSatMinimal,
    /// The baseline of Gitina et al. 2013 (\[10\]): eliminate *all* universal
    /// variables (cheapest first) until a plain SAT instance remains —
    /// no QBF backend, no MaxSAT selection.
    AllUniversals,
}

/// Configuration of the solver, carried by every
/// [`Session`](crate::Session).
///
/// `Clone` but not `Copy`: the embedded [`Budget`] may carry a shared
/// [`hqs_base::CancelToken`], and cloning a config deliberately shares
/// that token — the portfolio engine clones one budget (with its token)
/// into every deck variant so all workers observe the same cancellation.
#[derive(Clone, Debug)]
pub struct HqsConfig {
    /// Resource budget (wall clock + AIG nodes).
    pub budget: Budget,
    /// Run the CNF preprocessing pipeline (§III-C).
    pub preprocess: bool,
    /// Detect and compose Tseitin gates (requires `preprocess`).
    pub gate_detection: bool,
    /// Issue one plain SAT call on the original matrix up front — the
    /// extended-version optimisation that cheapens instances whose matrix
    /// is propositionally unsatisfiable.
    pub initial_sat_check: bool,
    /// Apply Theorem 5/6 unit-pure elimination in the main loop.
    pub unit_pure: bool,
    /// Universal-elimination strategy.
    pub strategy: ElimStrategy,
    /// SAT-sweep (FRAIG) cones larger than this many AND nodes; 0 off.
    pub fraig_threshold: usize,
    /// Subsumption/self-subsumption in preprocessing (extension beyond the
    /// paper's pipeline; its conclusion's "more sophisticated
    /// preprocessing").
    pub subsumption: bool,
    /// Recompute the elimination set and its cost order after every
    /// elimination instead of once up front (the conclusion's
    /// "improvements on the choice and order of variables").
    pub dynamic_order: bool,
    /// Which QBF solver finishes the linearised remainder.
    pub qbf_backend: QbfBackend,
    /// Re-run the full invariant audit (AIG manager + prefix bookkeeping)
    /// after every main-loop step, even in release builds; panics on the
    /// first violation. Debug builds always audit at each mutation site
    /// regardless of this flag.
    pub paranoid: bool,
    /// Proof-log and independently check the solver's internal SAT calls
    /// (currently the up-front matrix check), and make
    /// [`Session::solve_certified`](crate::Session::solve_certified)
    /// the intended entry point: verdicts
    /// then ship a Skolem or refutation certificate. An UNSAT answer from
    /// a proof-logged call is only trusted if its DRAT proof passes the
    /// independent `hqs-proof` checker.
    pub certify: bool,
}

impl Default for HqsConfig {
    fn default() -> Self {
        HqsConfig {
            budget: Budget::new(),
            preprocess: true,
            gate_detection: true,
            initial_sat_check: false,
            unit_pure: true,
            strategy: ElimStrategy::MaxSatMinimal,
            fraig_threshold: 0,
            subsumption: false,
            dynamic_order: false,
            qbf_backend: QbfBackend::default(),
            paranoid: false,
            certify: false,
        }
    }
}

/// Counters describing one [`Session::solve`](crate::Session::solve)
/// call.
#[derive(Clone, Copy, Default, Debug)]
pub struct HqsStats {
    /// Preprocessing counters.
    pub preprocess: PreprocessStats,
    /// `true` when preprocessing alone decided the instance.
    pub decided_by_preprocessing: bool,
    /// `true` when the up-front SAT call decided the instance.
    pub decided_by_initial_sat: bool,
    /// Size of the first MaxSAT-minimal elimination set.
    pub elimination_set_size: usize,
    /// Universal variables eliminated by Theorem 1.
    pub universal_elims: u64,
    /// Existential variables eliminated by Theorem 2.
    pub existential_elims: u64,
    /// Variables removed by Theorem 5/6 in the main loop.
    pub unit_pure_elims: u64,
    /// Largest AIG seen in the DQBF phase.
    pub peak_nodes: usize,
    /// Statistics of the QBF backend run (zero if never reached).
    pub qbf: QbfStats,
    /// `true` when the instance was handed to the QBF backend.
    pub reached_qbf: bool,
    /// Internal SAT calls that were proof-logged and whose DRAT proof was
    /// validated by the independent checker (only under
    /// [`HqsConfig::certify`]).
    pub certified_sat_calls: u64,
}

/// The HQS DQBF solver.
///
/// See the [crate docs](crate) for the algorithm. This is the internal
/// engine behind [`Session`](crate::Session), the only solve entry
/// point — the session adds config validation, observability and
/// cancellation wiring before delegating here.
#[derive(Debug, Default)]
pub(crate) struct HqsSolver {
    config: HqsConfig,
    stats: HqsStats,
    obs: Obs,
    warm: Option<std::sync::Arc<crate::WarmCache>>,
}

impl HqsSolver {
    /// A solver with the paper's default configuration.
    #[cfg(test)]
    #[must_use]
    pub(crate) fn new() -> Self {
        HqsSolver::default()
    }

    /// A solver with an explicit configuration.
    #[must_use]
    pub(crate) fn with_config(config: HqsConfig) -> Self {
        HqsSolver {
            config,
            stats: HqsStats::default(),
            obs: Obs::disabled(),
            warm: None,
        }
    }

    /// Attaches the observability handle every subsequent solve emits
    /// through ([`Session`](crate::Session) wires this up).
    pub(crate) fn set_observer(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Attaches a shared cross-request warm cache
    /// ([`SessionBuilder::warm_cache`](crate::SessionBuilder::warm_cache)
    /// wires this up). Preprocessing results and FRAIG-reduced cones are
    /// then served from / stored into the cache.
    pub(crate) fn set_warm_cache(&mut self, warm: Option<std::sync::Arc<crate::WarmCache>>) {
        self.warm = warm;
    }

    /// Statistics of the most recent solve.
    #[must_use]
    pub(crate) fn stats(&self) -> HqsStats {
        self.stats
    }

    /// The solver's configuration.
    #[must_use]
    pub(crate) fn config(&self) -> &HqsConfig {
        &self.config
    }

    /// Decides `dqbf` (the engine entry point behind
    /// [`Session::solve`](crate::Session::solve)).
    pub(crate) fn run(&mut self, dqbf: &Dqbf) -> DqbfResult {
        self.stats = HqsStats::default();

        if self.config.initial_sat_check {
            let _span = self.obs.span(Phase::InitialSat);
            let matrix_unsat = if self.config.certify {
                self.certified_matrix_unsat(dqbf.matrix())
            } else {
                let budget = self.config.budget.clone();
                let mut sat = hqs_sat::Solver::builder()
                    .observer(self.obs.clone())
                    .budget(budget.clone())
                    .build()
                    .expect("default SAT configuration is valid");
                sat.add_cnf(dqbf.matrix());
                match sat.solve(&[]) {
                    hqs_sat::SolveResult::Unsat => true,
                    hqs_sat::SolveResult::Sat => false,
                    hqs_sat::SolveResult::Unknown => {
                        return DqbfResult::Limit(budget.stop_reason())
                    }
                }
            };
            if matrix_unsat {
                self.stats.decided_by_initial_sat = true;
                return DqbfResult::Unsat;
            }
        }

        let (reduced, gates) = if self.config.preprocess {
            let _span = self.obs.span(Phase::Preprocess);
            match self.preprocess_cached(dqbf) {
                PreprocessResult::Decided { value, stats } => {
                    self.stats.preprocess = stats;
                    self.stats.decided_by_preprocessing = true;
                    self.flush_preprocess(&stats);
                    return if value {
                        DqbfResult::Sat
                    } else {
                        DqbfResult::Unsat
                    };
                }
                PreprocessResult::Reduced { dqbf, gates, stats } => {
                    self.stats.preprocess = stats;
                    self.flush_preprocess(&stats);
                    (dqbf, gates)
                }
            }
        } else {
            let mut bound = dqbf.clone();
            bound.bind_free_vars();
            (bound, Vec::new())
        };

        let mut state = {
            let _span = self.obs.span(Phase::BuildAig);
            let (aig, root) = build_aig(&reduced, &gates);
            let existentials: Vec<(Var, hqs_base::VarSet)> = reduced
                .existentials()
                .iter()
                .filter(|&&y| !gates.iter().any(|g| g.output.var() == y))
                .map(|&y| (y, reduced.dependencies(y).expect("existential").clone()))
                .collect();
            AigDqbf::from_parts(
                aig,
                root,
                reduced.universals().to_vec(),
                existentials,
                reduced.num_vars(),
            )
        };
        state.aig.set_observer(self.obs.clone());
        if let Some(warm) = &self.warm {
            state.aig.set_fraig_cache(Some(warm.fraig().clone()));
        }
        let _span = self.obs.span(Phase::ElimLoop);
        self.main_loop(state)
    }

    /// Runs [`preprocess_full`], consulting the warm cache first when one
    /// is attached. Both `Decided` and `Reduced` results are cached — the
    /// key covers the canonical formula hash plus the two preprocessing
    /// flags, so a hit replays exactly what a cold run would compute.
    fn preprocess_cached(&self, dqbf: &Dqbf) -> PreprocessResult {
        let Some(warm) = &self.warm else {
            return preprocess_full(dqbf, self.config.gate_detection, self.config.subsumption);
        };
        let key = crate::warm::PreprocessKey::new(
            dqbf,
            self.config.gate_detection,
            self.config.subsumption,
        );
        if let Some(cached) = warm.lookup_preprocess(&key, &self.obs) {
            return cached;
        }
        let result = preprocess_full(dqbf, self.config.gate_detection, self.config.subsumption);
        warm.store_preprocess(key, &result, &self.obs);
        result
    }

    /// Emits the preprocessing rule-hit counters.
    fn flush_preprocess(&self, stats: &PreprocessStats) {
        if !self.obs.is_enabled() {
            return;
        }
        self.obs.add(Metric::PreprocessUnits, stats.units);
        self.obs.add(
            Metric::PreprocessUniversalReductions,
            stats.universal_reductions,
        );
        self.obs.add(Metric::PreprocessPures, stats.pures);
        self.obs
            .add(Metric::PreprocessEquivalences, stats.equivalences);
        self.obs.add(Metric::PreprocessSubsumed, stats.subsumed);
        self.obs
            .add(Metric::PreprocessStrengthened, stats.strengthened);
        self.obs.add(Metric::PreprocessGates, stats.gates);
    }

    /// Runs the up-front SAT call with DRAT logging; the UNSAT answer is
    /// only believed if the proof survives the independent checker.
    fn certified_matrix_unsat(&mut self, matrix: &hqs_cnf::Cnf) -> bool {
        let buffer = hqs_sat::ProofBuffer::new();
        let mut sat = hqs_sat::Solver::builder()
            .proof_logger(Box::new(hqs_sat::TextDratLogger::new(buffer.clone())))
            .budget(self.config.budget.clone())
            .build()
            .expect("default SAT configuration is valid");
        sat.ensure_vars(matrix.num_vars());
        sat.add_cnf(matrix);
        if sat.solve(&[]) != hqs_sat::SolveResult::Unsat || sat.proof_had_error() {
            return false;
        }
        let contents = buffer.contents();
        let accepted = String::from_utf8(contents)
            .ok()
            .and_then(|text| hqs_proof::parse_text_drat(&text).ok())
            .is_some_and(|proof| {
                hqs_proof::check_proof(matrix, &proof, hqs_proof::CheckMode::Forward).is_ok()
            });
        if accepted {
            self.stats.certified_sat_calls += 1;
            self.obs.add(Metric::CertifiedSatCalls, 1);
        }
        accepted
    }

    /// Certified solve (the engine entry point behind
    /// [`Session::solve_certified`](crate::Session::solve_certified),
    /// which documents the semantics and the expansion size limit).
    pub(crate) fn run_certified(&mut self, dqbf: &Dqbf) -> Result<CertifiedOutcome, CertifyError> {
        let mut bound = dqbf.clone();
        bound.bind_free_vars();
        if bound.universals().len() > crate::expand::MAX_EXPANSION_UNIVERSALS {
            return Err(CertifyError::TooLarge);
        }
        match self.run(dqbf) {
            DqbfResult::Limit(e) => Ok(CertifiedOutcome::Limit(e)),
            DqbfResult::Sat => {
                let _span = self.obs.span(Phase::Certify);
                let certificate =
                    crate::skolem::extract_skolem(dqbf).ok_or(CertifyError::SatNotCertified)?;
                if !certificate.verify(dqbf) {
                    return Err(CertifyError::CertificateRejected);
                }
                Ok(CertifiedOutcome::Sat(certificate))
            }
            DqbfResult::Unsat => {
                let _span = self.obs.span(Phase::Certify);
                let certificate = crate::refute::extract_refutation(dqbf)
                    .ok_or(CertifyError::UnsatNotCertified)?;
                if !certificate.verify(dqbf) {
                    return Err(CertifyError::CertificateRejected);
                }
                Ok(CertifiedOutcome::Unsat(certificate))
            }
        }
    }

    fn main_loop(&mut self, mut state: AigDqbf) -> DqbfResult {
        // Queue of universals to eliminate, cheapest first; recomputed when
        // it runs dry while the graph is still cyclic.
        let mut queue: Vec<Var> = Vec::new();
        let mut queue_initialised = false;
        loop {
            if self.config.paranoid {
                state.assert_invariants("in the main loop");
            }
            self.stats.peak_nodes = self.stats.peak_nodes.max(state.aig.num_nodes());
            self.obs
                .gauge_max(Metric::AigPeakNodes, state.aig.num_nodes() as u64);
            if state.root == hqs_aig::Aig::TRUE {
                return DqbfResult::Sat;
            }
            if state.root == hqs_aig::Aig::FALSE {
                return DqbfResult::Unsat;
            }
            if let Some(e) = self.config.budget.check(state.aig.num_nodes()) {
                return DqbfResult::Limit(e);
            }
            if self.config.unit_pure {
                match state.apply_unit_pure() {
                    Some(false) => return DqbfResult::Unsat,
                    Some(true) => {
                        self.stats.unit_pure_elims += 1;
                        self.obs.add(Metric::UnitPureElims, 1);
                        continue;
                    }
                    None => {}
                }
            }
            state.drop_unused();
            // One Theorem-2 elimination at a time so the budget check at
            // the top of the loop can interrupt runaway growth (a PEC
            // instance without gate extraction carries hundreds of
            // total-dependency Tseitin auxiliaries).
            {
                let span = self.obs.span(Phase::ElimExistential);
                if state.eliminate_one_total_existential() {
                    self.stats.existential_elims += 1;
                    self.obs.add(Metric::ExistentialElims, 1);
                    self.reduce(&mut state);
                    continue;
                }
                span.cancel();
            }

            let hand_off = match self.config.strategy {
                ElimStrategy::MaxSatMinimal => {
                    !DepGraph::new(&state.existential_deps()).is_cyclic()
                }
                ElimStrategy::AllUniversals => state.universals().is_empty(),
            };
            if hand_off {
                self.stats.reached_qbf = true;
                let _span = self.obs.span(Phase::QbfFinish);
                let prefix = linearise(state.universals(), &state.existential_deps())
                    .expect("acyclic graph linearises");
                match self.config.qbf_backend {
                    QbfBackend::Elimination => {
                        let mut qbf = QbfSolver::new();
                        qbf.set_budget(self.config.budget.clone());
                        qbf.set_fraig_threshold(self.config.fraig_threshold);
                        qbf.set_observer(self.obs.clone());
                        let result = qbf.solve(&mut state.aig, state.root, prefix);
                        self.stats.qbf = qbf.stats();
                        return DqbfResult::from_qbf(result);
                    }
                    QbfBackend::Search => {
                        return self.finish_with_search(&mut state, prefix);
                    }
                }
            }

            // Pick the next universal to eliminate.
            let next = loop {
                // analyze::allow(cancel): drains a finite queue, at most |queue| pops
                match queue.pop() {
                    Some(x) if state.universals().contains(&x) => break Some(x),
                    Some(_) => continue, // removed meanwhile (unit/pure)
                    None => break None,
                }
            };
            let x = match next {
                Some(x) => x,
                None => {
                    // (Re)compute the elimination queue.
                    let _span = self.obs.span(Phase::ElimSet);
                    let vars = match self.config.strategy {
                        ElimStrategy::MaxSatMinimal => {
                            let graph = DepGraph::new(&state.existential_deps());
                            let cycles = graph.binary_cycles();
                            minimal_elimination_set_observed(
                                state.universals(),
                                &cycles,
                                |x| state.copies_of(x),
                                &self.obs,
                            )
                        }
                        ElimStrategy::AllUniversals => {
                            let mut all = state.universals().to_vec();
                            all.sort_by_key(|&x| state.copies_of(x));
                            all
                        }
                    };
                    self.obs.add(Metric::ElimSetsComputed, 1);
                    self.obs.add(Metric::ElimSetChosen, vars.len() as u64);
                    self.obs.gauge_max(Metric::ElimSetSize, vars.len() as u64);
                    if !queue_initialised {
                        self.stats.elimination_set_size = vars.len();
                        queue_initialised = true;
                    }
                    // Pop from the back ⇒ store most expensive first.
                    queue = vars.into_iter().rev().collect();
                    match queue.pop() {
                        Some(x) => x,
                        None => continue, // became acyclic; loop to hand off
                    }
                }
            };
            let nodes_before = state.aig.num_nodes();
            {
                let _span = self.obs.span(Phase::ElimUniversal);
                state.eliminate_universal(x);
                self.stats.universal_elims += 1;
                if self.config.dynamic_order {
                    // Re-derive the elimination set and cost order from the
                    // updated prefix before the next pick.
                    queue.clear();
                }
                self.reduce(&mut state);
            }
            self.obs.add(Metric::UniversalElims, 1);
            self.obs.add(
                Metric::ElimNodeGrowth,
                state.aig.num_nodes().saturating_sub(nodes_before) as u64,
            );
        }
    }

    /// Tseitin-converts the remaining AIG back to CNF (auxiliary variables
    /// become an innermost existential block) and hands it to the
    /// search-based QBF solver.
    fn finish_with_search(&mut self, state: &mut AigDqbf, prefix: hqs_qbf::Prefix) -> DqbfResult {
        if state.root == hqs_aig::Aig::TRUE {
            return DqbfResult::Sat;
        }
        if state.root == hqs_aig::Aig::FALSE {
            return DqbfResult::Unsat;
        }
        let first_aux = state
            .aig
            .support(state.root)
            .iter()
            .map(|v| v.bound())
            .max()
            .unwrap_or(0);
        let (mut cnf, out) = state.aig.to_cnf(state.root, first_aux);
        cnf.add_lits([out]);
        let mut full_prefix = prefix;
        let aux: Vec<Var> = (first_aux..cnf.num_vars()).map(Var::new).collect();
        full_prefix.push_block(hqs_cnf::Quantifier::Existential, aux);
        let mut search = hqs_qbf::search::SearchSolver::new();
        match search.solve_budgeted(&full_prefix, &cnf, self.config.budget.clone()) {
            Some(true) => DqbfResult::Sat,
            Some(false) => DqbfResult::Unsat,
            None => DqbfResult::Limit(self.config.budget.stop_reason()),
        }
    }

    fn reduce(&mut self, state: &mut AigDqbf) {
        if self.config.fraig_threshold > 0
            && state.aig.cone_size(state.root) > self.config.fraig_threshold
        {
            state.root = state.aig.fraig(state.root, 0x5EED, 200);
        }
        let live = state.aig.cone_size(state.root);
        if state.aig.num_nodes() > 256 && state.aig.num_nodes() > 4 * live {
            state.compact();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::is_satisfiable_by_expansion;
    use hqs_base::Lit;

    fn example_one(matching: bool) -> Dqbf {
        // ∀x1∀x2 ∃y1(x1) ∃y2(x2):
        //   matching: (y1↔x1) ∧ (y2↔x2) — SAT.
        //   else:     (y1↔x2) ∧ (y2↔x1) — UNSAT (wrong dependencies).
        let mut d = Dqbf::new();
        let x1 = d.add_universal();
        let x2 = d.add_universal();
        let y1 = d.add_existential([x1]);
        let y2 = d.add_existential([x2]);
        let pairs = if matching {
            [(x1, y1), (x2, y2)]
        } else {
            [(x2, y1), (x1, y2)]
        };
        for (x, y) in pairs {
            d.add_clause([Lit::positive(x), Lit::negative(y)]);
            d.add_clause([Lit::negative(x), Lit::positive(y)]);
        }
        d
    }

    #[test]
    fn example_one_sat() {
        assert_eq!(HqsSolver::new().run(&example_one(true)), DqbfResult::Sat);
    }

    #[test]
    fn example_one_unsat() {
        assert_eq!(HqsSolver::new().run(&example_one(false)), DqbfResult::Unsat);
    }

    #[test]
    fn all_configurations_agree_on_example_one() {
        for preprocess in [false, true] {
            for unit_pure in [false, true] {
                for strategy in [ElimStrategy::MaxSatMinimal, ElimStrategy::AllUniversals] {
                    for initial_sat in [false, true] {
                        let config = HqsConfig {
                            preprocess,
                            gate_detection: preprocess,
                            unit_pure,
                            strategy,
                            initial_sat_check: initial_sat,
                            ..HqsConfig::default()
                        };
                        let mut solver = HqsSolver::with_config(config);
                        assert_eq!(solver.run(&example_one(true)), DqbfResult::Sat);
                        assert_eq!(solver.run(&example_one(false)), DqbfResult::Unsat);
                    }
                }
            }
        }
    }

    #[test]
    fn trivial_formulas() {
        let empty = Dqbf::new();
        assert_eq!(HqsSolver::new().run(&empty), DqbfResult::Sat);
        let mut contradiction = Dqbf::new();
        let y = contradiction.add_existential([]);
        contradiction.add_clause([Lit::positive(y)]);
        contradiction.add_clause([Lit::negative(y)]);
        assert_eq!(HqsSolver::new().run(&contradiction), DqbfResult::Unsat);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let d = example_one(true);
        let config = HqsConfig {
            budget: Budget::new().with_node_limit(1),
            preprocess: false,
            ..HqsConfig::default()
        };
        assert_eq!(
            HqsSolver::with_config(config).run(&d),
            DqbfResult::Limit(Exhaustion::Memout)
        );
    }

    /// The central correctness test: on random small DQBFs, every solver
    /// configuration agrees with the expansion oracle.
    #[test]
    fn agrees_with_expansion_oracle_on_random_dqbfs() {
        use hqs_base::Rng;
        let mut rng = Rng::seed_from_u64(20150309);
        let configs = [
            HqsConfig::default(),
            HqsConfig {
                preprocess: false,
                gate_detection: false,
                ..HqsConfig::default()
            },
            HqsConfig {
                unit_pure: false,
                ..HqsConfig::default()
            },
            HqsConfig {
                strategy: ElimStrategy::AllUniversals,
                ..HqsConfig::default()
            },
            HqsConfig {
                initial_sat_check: true,
                ..HqsConfig::default()
            },
            HqsConfig {
                subsumption: true,
                ..HqsConfig::default()
            },
            HqsConfig {
                dynamic_order: true,
                ..HqsConfig::default()
            },
            HqsConfig {
                qbf_backend: QbfBackend::Search,
                ..HqsConfig::default()
            },
            HqsConfig {
                paranoid: true,
                ..HqsConfig::default()
            },
        ];
        for round in 0..80 {
            let mut d = Dqbf::new();
            let nu = rng.gen_range(1..=4u32);
            let ne = rng.gen_range(1..=4u32);
            let xs: Vec<Var> = (0..nu).map(|_| d.add_universal()).collect();
            let mut all: Vec<Var> = xs.clone();
            for _ in 0..ne {
                let deps: Vec<Var> = xs.iter().copied().filter(|_| rng.gen_bool(0.5)).collect();
                all.push(d.add_existential(deps));
            }
            for _ in 0..rng.gen_range(2..=9usize) {
                let len = rng.gen_range(1..=3usize);
                let lits: Vec<Lit> = (0..len)
                    .map(|_| Lit::new(all[rng.gen_range(0..all.len())], rng.gen_bool(0.5)))
                    .collect();
                d.add_clause(lits);
            }
            let expected = if is_satisfiable_by_expansion(&d) {
                DqbfResult::Sat
            } else {
                DqbfResult::Unsat
            };
            for (ci, config) in configs.iter().enumerate() {
                let mut solver = HqsSolver::with_config(config.clone());
                assert_eq!(
                    solver.run(&d),
                    expected,
                    "round {round}, config {ci}: {d:?}"
                );
            }
        }
    }

    #[test]
    fn stats_reflect_the_pipeline() {
        let d = example_one(true);
        let mut solver = HqsSolver::with_config(HqsConfig {
            preprocess: false,
            gate_detection: false,
            unit_pure: false,
            ..HqsConfig::default()
        });
        let result = solver.run(&d);
        assert_eq!(result, DqbfResult::Sat);
        let stats = solver.stats();
        // The 2-cycle requires eliminating at least one universal.
        assert!(stats.universal_elims >= 1);
        assert_eq!(stats.elimination_set_size, 1);
        assert!(stats.peak_nodes > 0);
    }
}
