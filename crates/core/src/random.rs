//! Random DQBF generation for fuzzing and benchmarking.
//!
//! The test suites cross-check the solvers against the expansion oracle on
//! random formulas; this module makes the generator part of the public API
//! so external fuzzing (see the `fuzz_dqbf` binary of `hqs-bench`) and
//! downstream test suites can reuse it. Generation is fully deterministic
//! in the seed.

use crate::Dqbf;
use hqs_base::Rng;
use hqs_base::{Lit, Var};

/// Parameters of the random-formula distribution.
///
/// # Examples
///
/// ```
/// use hqs_core::random::RandomDqbf;
///
/// let dqbf = RandomDqbf::default().generate(42);
/// assert!(!dqbf.universals().is_empty());
/// let again = RandomDqbf::default().generate(42);
/// assert_eq!(dqbf.matrix().clauses(), again.matrix().clauses());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RandomDqbf {
    /// Number of universal variables.
    pub num_universals: u32,
    /// Number of existential variables.
    pub num_existentials: u32,
    /// Probability that an existential depends on each universal.
    pub dependency_density: f64,
    /// Number of clauses.
    pub num_clauses: usize,
    /// Maximum clause length (lengths are uniform in `1..=max`).
    pub max_clause_len: usize,
}

impl Default for RandomDqbf {
    fn default() -> Self {
        RandomDqbf {
            num_universals: 4,
            num_existentials: 4,
            dependency_density: 0.5,
            num_clauses: 12,
            max_clause_len: 3,
        }
    }
}

impl RandomDqbf {
    /// Generates the formula for `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `max_clause_len` is 0 or there are no variables at all.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Dqbf {
        assert!(self.max_clause_len > 0, "clauses need at least one literal");
        assert!(
            self.num_universals + self.num_existentials > 0,
            "at least one variable required"
        );
        let mut rng = Rng::seed_from_u64(seed);
        let mut dqbf = Dqbf::new();
        let universals: Vec<Var> = (0..self.num_universals)
            .map(|_| dqbf.add_universal())
            .collect();
        let mut all = universals.clone();
        for _ in 0..self.num_existentials {
            let deps: Vec<Var> = universals
                .iter()
                .copied()
                .filter(|_| rng.gen_bool(self.dependency_density))
                .collect();
            all.push(dqbf.add_existential(deps));
        }
        for _ in 0..self.num_clauses {
            let len = rng.gen_range(1..=self.max_clause_len);
            let lits: Vec<Lit> = (0..len)
                .map(|_| Lit::new(all[rng.gen_range(0..all.len())], rng.gen_bool(0.5)))
                .collect();
            dqbf.add_clause(lits);
        }
        dqbf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let config = RandomDqbf::default();
        let a = config.generate(7);
        let b = config.generate(7);
        assert_eq!(a.matrix().clauses(), b.matrix().clauses());
        assert_eq!(a.universals(), b.universals());
        let c = config.generate(8);
        assert!(
            a.matrix().clauses() != c.matrix().clauses()
                || a.existentials()
                    .iter()
                    .any(|&y| a.dependencies(y) != c.dependencies(y)),
            "different seeds should differ"
        );
    }

    #[test]
    fn respects_parameters() {
        let config = RandomDqbf {
            num_universals: 3,
            num_existentials: 5,
            dependency_density: 1.0,
            num_clauses: 7,
            max_clause_len: 2,
        };
        let d = config.generate(0);
        assert_eq!(d.universals().len(), 3);
        assert_eq!(d.existentials().len(), 5);
        assert_eq!(d.matrix().clauses().len(), 7);
        assert!(d.matrix().clauses().iter().all(|c| c.len() <= 2));
        assert!(d.has_total_dependencies());
    }

    #[test]
    fn zero_density_yields_free_style_existentials() {
        let config = RandomDqbf {
            dependency_density: 0.0,
            ..RandomDqbf::default()
        };
        let d = config.generate(1);
        for &y in d.existentials() {
            assert!(d.dependencies(y).unwrap().is_empty());
        }
    }
}
