//! The blessed solve entry point: [`Session`].
//!
//! A session bundles the three things every embedding ends up wiring
//! together anyway — a validated [`HqsConfig`], an optional
//! [`Observer`] for metrics/tracing, and an optional [`CancelToken`]
//! for cooperative teardown — behind one builder. The CLI, the engine
//! (portfolio and batch), the serve front end, the fuzzer and the
//! benchmarks all solve through it; the engine struct underneath is
//! not part of the public API.
//!
//! # Examples
//!
//! ```
//! use hqs_base::Lit;
//! use hqs_core::{Dqbf, Outcome, Session};
//!
//! // ∀x₁∀x₂ ∃y₁(x₁) ∃y₂(x₂) : (y₁↔x₁) ∧ (y₂↔x₂)   — satisfiable.
//! let mut dqbf = Dqbf::new();
//! let x1 = dqbf.add_universal();
//! let x2 = dqbf.add_universal();
//! let y1 = dqbf.add_existential([x1]);
//! let y2 = dqbf.add_existential([x2]);
//! for (x, y) in [(x1, y1), (x2, y2)] {
//!     dqbf.add_clause([Lit::positive(x), Lit::negative(y)]);
//!     dqbf.add_clause([Lit::negative(x), Lit::positive(y)]);
//! }
//!
//! let mut session = Session::builder().build().expect("defaults are valid");
//! assert_eq!(session.solve(&dqbf), Outcome::Sat);
//! ```
//!
//! With metrics attached:
//!
//! ```
//! use hqs_core::Session;
//! use hqs_obs::{Metric, MetricsObserver};
//! use std::sync::Arc;
//!
//! let observer = Arc::new(MetricsObserver::new());
//! let mut session = Session::builder()
//!     .observer(observer.clone())
//!     .build()
//!     .expect("defaults are valid");
//! session.solve(&hqs_core::Dqbf::new());
//! let snapshot = observer.snapshot();
//! assert!(snapshot.counter(Metric::SatConflicts) == 0); // empty formula
//! ```

use crate::config::ConfigError;
use crate::outcome::Outcome;
use crate::solver::{CertifiedOutcome, CertifyError, HqsConfig, HqsSolver, HqsStats};
use crate::Dqbf;
use hqs_base::CancelToken;
use hqs_cnf::DqdimacsFile;
use hqs_obs::{Obs, Observer};
use std::fmt;
use std::sync::Arc;

/// A configured, observable solving context.
///
/// Construct with [`Session::builder`]; the crate docs carry the
/// canonical embedding example. A session is reusable: each
/// [`solve`](Session::solve) call resets the per-solve statistics but
/// keeps the configuration and observer.
#[derive(Debug)]
pub struct Session {
    solver: HqsSolver,
    obs: Obs,
}

/// Builder for [`Session`]; obtain via [`Session::builder`].
#[derive(Default)]
#[must_use]
pub struct SessionBuilder {
    config: HqsConfig,
    observer: Option<Arc<dyn Observer>>,
    cancel: Option<CancelToken>,
    warm: Option<Arc<crate::WarmCache>>,
}

impl fmt::Debug for SessionBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionBuilder")
            .field("config", &self.config)
            .field("observer", &self.observer.is_some())
            .field("cancel", &self.cancel.is_some())
            .field("warm", &self.warm.is_some())
            .finish()
    }
}

impl SessionBuilder {
    /// Uses `config` instead of the defaults. The config is validated
    /// at [`build`](SessionBuilder::build) time, so hand-assembled
    /// struct literals go through the same checks as
    /// [`HqsConfig::builder`].
    pub fn config(mut self, config: HqsConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches an [`Observer`]; every solve through the session then
    /// emits phase spans and metrics into it. Without one, the session
    /// runs fully uninstrumented (no clock reads, no atomics).
    pub fn observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attaches a cancellation token to the session's budget; firing it
    /// makes in-flight solves return [`Outcome::Unknown`].
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a shared [`WarmCache`](crate::WarmCache): preprocessing
    /// results and FRAIG-reduced cones computed by this session become
    /// available to every other session holding the same cache, and vice
    /// versa. Verdicts are unaffected — a cache hit replays exactly what
    /// the cold computation would have produced.
    pub fn warm_cache(mut self, warm: Arc<crate::WarmCache>) -> Self {
        self.warm = Some(warm);
        self
    }

    /// Validates the configuration and produces the session.
    ///
    /// # Errors
    ///
    /// A [`ConfigError`] naming the first nonsensical flag combination.
    pub fn build(self) -> Result<Session, ConfigError> {
        self.config.validate()?;
        let mut config = self.config;
        if let Some(token) = self.cancel {
            config.budget = config.budget.with_cancel_token(token);
        }
        let obs = match self.observer {
            Some(observer) => Obs::attached(observer),
            None => Obs::disabled(),
        };
        let mut solver = HqsSolver::with_config(config);
        solver.set_observer(obs.clone());
        solver.set_warm_cache(self.warm);
        Ok(Session { solver, obs })
    }
}

impl Session {
    /// A builder starting from the paper's default configuration, no
    /// observer and no cancellation token.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// Decides `dqbf`.
    pub fn solve(&mut self, dqbf: &Dqbf) -> Outcome {
        self.solver.run(dqbf).into()
    }

    /// Solves a parsed DQDIMACS file.
    pub fn solve_file(&mut self, file: &DqdimacsFile) -> Outcome {
        self.solve(&Dqbf::from_file(file))
    }

    /// Decides `dqbf` and ships a machine-checkable certificate with
    /// the verdict: Skolem function tables for SAT
    /// ([`crate::skolem::extract_skolem`]), an expansion trace plus
    /// DRAT proof for UNSAT ([`crate::refute::extract_refutation`]).
    /// Both certificates are verified before being returned.
    ///
    /// Certificate construction expands the universal quantifiers, so
    /// this entry point is limited to
    /// [`MAX_EXPANSION_UNIVERSALS`](crate::expand::MAX_EXPANSION_UNIVERSALS)
    /// universal variables ([`CertifyError::TooLarge`] otherwise); the
    /// plain [`solve`](Session::solve) has no such limit.
    ///
    /// # Errors
    ///
    /// Any [`CertifyError`] signals an internal soundness bug (or the
    /// expansion size limit), never a property of the formula.
    pub fn solve_certified(&mut self, dqbf: &Dqbf) -> Result<CertifiedOutcome, CertifyError> {
        self.solver.run_certified(dqbf)
    }

    /// Statistics of the most recent solve.
    #[must_use]
    pub fn stats(&self) -> HqsStats {
        self.solver.stats()
    }

    /// The session's (validated) configuration.
    #[must_use]
    pub fn config(&self) -> &HqsConfig {
        self.solver.config()
    }

    /// The observability handle the session emits through — shareable
    /// with surrounding code that wants to add its own spans (the CLI
    /// wraps parsing this way, so `total` covers parse + solve).
    #[must_use]
    pub fn obs(&self) -> &Obs {
        &self.obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::ElimStrategy;
    use hqs_base::{Exhaustion, Lit};
    use hqs_obs::{Metric, MetricsObserver, Phase};

    fn matching_pairs() -> Dqbf {
        let mut d = Dqbf::new();
        let x1 = d.add_universal();
        let x2 = d.add_universal();
        let y1 = d.add_existential([x1]);
        let y2 = d.add_existential([x2]);
        for (x, y) in [(x1, y1), (x2, y2)] {
            d.add_clause([Lit::positive(x), Lit::negative(y)]);
            d.add_clause([Lit::negative(x), Lit::positive(y)]);
        }
        d
    }

    #[test]
    fn plain_session_solves() {
        let mut session = Session::builder().build().expect("defaults");
        assert_eq!(session.solve(&matching_pairs()), Outcome::Sat);
        // This instance is decided by preprocessing (equivalence
        // substitution collapses it), so no main-loop eliminations run —
        // but the stats must reflect *some* activity either way.
        let stats = session.stats();
        assert!(
            stats.decided_by_preprocessing || stats.universal_elims + stats.unit_pure_elims > 0
        );
    }

    #[test]
    fn builder_rejects_invalid_config() {
        let config = HqsConfig {
            preprocess: false,
            ..HqsConfig::default()
        };
        assert_eq!(
            Session::builder().config(config).build().unwrap_err(),
            ConfigError::GatesWithoutPreprocess
        );
    }

    #[test]
    fn cancel_token_is_installed_into_the_budget() {
        // Preprocessing would decide this instance before any budget
        // poll, so disable it to reach the main loop's check.
        let config = HqsConfig::builder()
            .preprocess(false)
            .gate_detection(false)
            .build()
            .expect("valid");
        let token = CancelToken::new();
        token.cancel("stop before starting");
        let mut session = Session::builder()
            .config(config)
            .cancel(token)
            .build()
            .expect("valid");
        assert_eq!(
            session.solve(&matching_pairs()),
            Outcome::Unknown(Exhaustion::Cancelled)
        );
    }

    #[test]
    fn observed_session_records_phases_and_metrics() {
        let observer = Arc::new(MetricsObserver::new());
        let mut session = Session::builder()
            .config(
                HqsConfig::builder()
                    .preprocess(false)
                    .gate_detection(false)
                    .build()
                    .expect("valid"),
            )
            .observer(observer.clone())
            .build()
            .expect("valid");
        assert!(session.obs().is_enabled());
        assert_eq!(session.solve(&matching_pairs()), Outcome::Sat);
        let snapshot = observer.snapshot();
        assert!(snapshot.counter(Metric::UniversalElims) >= 1);
        assert!(snapshot.counter(Metric::AigPeakNodes) > 0);
        assert!(snapshot.counter(Metric::ElimSetsComputed) >= 1);
        assert!(
            snapshot.spans.iter().any(|s| s.phase == Phase::ElimLoop),
            "expected an elim-loop span, got {:?}",
            snapshot.spans
        );
    }

    #[test]
    fn all_universals_strategy_works_through_session() {
        let config = HqsConfig::builder()
            .strategy(ElimStrategy::AllUniversals)
            .build()
            .expect("valid");
        let mut session = Session::builder().config(config).build().expect("valid");
        assert_eq!(session.solve(&matching_pairs()), Outcome::Sat);
    }
}
