//! Skolem-function extraction and certification.
//!
//! A DQBF is satisfied iff *Skolem functions* `s_y : A(D_y) → {0,1}` exist
//! whose substitution turns the matrix into a tautology (Definition 2).
//! This module makes satisfaction verdicts *checkable*:
//!
//! * [`extract_skolem`] builds explicit function tables from a model of
//!   the universal expansion (exact, exponential — intended for the sizes
//!   the certification literature handles, cf. Balabanov et al. \[13\]);
//! * [`SkolemCertificate::verify`] independently checks a certificate
//!   with one SAT call: `¬φ ∧ (y ↔ s_y(D_y) for all y)` must be
//!   unsatisfiable.
//!
//! For PEC instances the certificate *is* the synthesis result: the table
//! of each black-box output over its input cut is a concrete
//! implementation of the box.

use crate::expand::expand_to_cnf;
use crate::Dqbf;
use hqs_base::{Lit, Var};
use hqs_cnf::Cnf;
use hqs_sat::{ProofBuffer, SolveResult, Solver, TextDratLogger};

/// An explicit Skolem function: a truth table over the dependency set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SkolemFunction {
    /// The existential variable this function defines.
    pub var: Var,
    /// Dependency variables in table-index order (bit `i` of a row index
    /// is the value of `deps[i]`).
    pub deps: Vec<Var>,
    /// The table, `2^deps.len()` entries.
    pub table: Vec<bool>,
}

impl SkolemFunction {
    /// Evaluates the function on a universal valuation.
    pub fn eval<F: Fn(Var) -> bool>(&self, value_of: F) -> bool {
        let mut index = 0usize;
        for (i, &dep) in self.deps.iter().enumerate() {
            if value_of(dep) {
                index |= 1 << i;
            }
        }
        self.table[index]
    }
}

/// A full certificate: one function per existential variable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SkolemCertificate {
    /// Functions in the formula's existential order.
    pub functions: Vec<SkolemFunction>,
}

impl SkolemCertificate {
    /// Looks up the function for `var`.
    #[must_use]
    pub fn function(&self, var: Var) -> Option<&SkolemFunction> {
        self.functions.iter().find(|f| f.var == var)
    }

    /// Builds the propositional verification problem `¬φ ∧ (y ↔ s_y(D_y))`:
    /// unsatisfiable iff the certificate is valid. `None` when the
    /// certificate is structurally invalid (a missing function) or
    /// trivially valid (empty matrix) — distinguished by the `bool`.
    fn verification_cnf(&self, dqbf: &Dqbf) -> Result<Cnf, bool> {
        let mut dqbf = dqbf.clone();
        dqbf.bind_free_vars();
        // Every existential needs a function.
        for &y in dqbf.existentials() {
            if self.function(y).is_none() {
                return Err(false);
            }
        }
        if dqbf.matrix().clauses().is_empty() {
            return Err(true); // empty matrix is a tautology
        }
        let mut cnf = Cnf::new(dqbf.num_vars());
        // ¬φ via per-clause selectors.
        let mut selectors = Vec::with_capacity(dqbf.matrix().clauses().len());
        for clause in dqbf.matrix().clauses() {
            let s = Lit::positive(cnf.fresh_var());
            for &lit in clause.lits() {
                cnf.add_lits([!s, !lit]);
            }
            selectors.push(s);
        }
        cnf.add_lits(selectors);
        // y ↔ s_y: one clause per table row: (deps = row) → (y = value).
        for function in &self.functions {
            for (row, &value) in function.table.iter().enumerate() {
                let mut clause: Vec<Lit> = function
                    .deps
                    .iter()
                    .enumerate()
                    .map(|(i, &dep)| Lit::new(dep, row >> i & 1 == 1))
                    .collect();
                clause.push(Lit::new(function.var, !value));
                cnf.add_lits(clause);
            }
        }
        Ok(cnf)
    }

    /// Verifies the certificate against `dqbf` with one SAT call:
    /// `¬φ` conjoined with clauses forcing each existential to its table
    /// value must be unsatisfiable. Sound and complete for total
    /// certificates (a function per existential).
    #[must_use]
    pub fn verify(&self, dqbf: &Dqbf) -> bool {
        let cnf = match self.verification_cnf(dqbf) {
            Ok(cnf) => cnf,
            Err(trivial) => return trivial,
        };
        let mut solver = Solver::new();
        solver.ensure_vars(cnf.num_vars());
        solver.add_cnf(&cnf);
        solver.solve(&[]) == SolveResult::Unsat
    }

    /// Like [`verify`](SkolemCertificate::verify), but the verifying SAT
    /// call is itself proof-logged and its UNSAT answer validated by the
    /// independent `hqs-proof` checker — closing the last trust gap (a
    /// buggy verifier vacuously answering UNSAT).
    #[must_use]
    pub fn verify_certified(&self, dqbf: &Dqbf) -> bool {
        let cnf = match self.verification_cnf(dqbf) {
            Ok(cnf) => cnf,
            Err(trivial) => return trivial,
        };
        let buffer = ProofBuffer::new();
        let mut solver = Solver::builder()
            .proof_logger(Box::new(TextDratLogger::new(buffer.clone())))
            .build()
            .expect("default SAT configuration is valid");
        solver.ensure_vars(cnf.num_vars());
        solver.add_cnf(&cnf);
        if solver.solve(&[]) != SolveResult::Unsat || solver.proof_had_error() {
            return false;
        }
        String::from_utf8(buffer.contents())
            .ok()
            .and_then(|text| hqs_proof::parse_text_drat(&text).ok())
            .is_some_and(|proof| {
                hqs_proof::check_proof(&cnf, &proof, hqs_proof::CheckMode::Forward).is_ok()
            })
    }
}

/// Extracts Skolem functions for a satisfiable DQBF by solving its full
/// universal expansion; returns `None` when the formula is unsatisfied.
///
/// # Panics
///
/// Panics on formulas beyond
/// [`MAX_EXPANSION_UNIVERSALS`](crate::expand::MAX_EXPANSION_UNIVERSALS)
/// universal variables (the table representation is exponential anyway).
#[must_use]
pub fn extract_skolem(dqbf: &Dqbf) -> Option<SkolemCertificate> {
    let mut bound = dqbf.clone();
    bound.bind_free_vars();
    let (cnf, instances) = expand_to_cnf(&bound);
    if cnf.has_empty_clause() {
        return None;
    }
    let mut solver = Solver::new();
    solver.ensure_vars(cnf.num_vars());
    solver.add_cnf(&cnf);
    if solver.solve(&[]) != SolveResult::Sat {
        return None;
    }
    let mut functions = Vec::with_capacity(bound.existentials().len());
    for &y in bound.existentials() {
        let deps: Vec<Var> = bound.dependencies(y).expect("existential").iter().collect();
        assert!(deps.len() < 20, "table would not fit");
        let mut table = vec![false; 1 << deps.len()];
        for (row, entry) in table.iter_mut().enumerate() {
            // The expansion keys instances by the packed restriction in
            // dependency-iteration order — the same order as `deps`.
            if let Some(&instance) = instances.get(&(y, row as u64)) {
                *entry = solver.model_value(instance).unwrap_or(false);
            }
            // Unsampled restrictions (y never occurred under that
            // restriction) are unconstrained; `false` works.
        }
        functions.push(SkolemFunction {
            var: y,
            deps,
            table,
        });
    }
    Some(SkolemCertificate { functions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DqbfResult, HqsSolver};

    fn example_one() -> Dqbf {
        let mut d = Dqbf::new();
        let x1 = d.add_universal();
        let x2 = d.add_universal();
        let y1 = d.add_existential([x1]);
        let y2 = d.add_existential([x2]);
        for (x, y) in [(x1, y1), (x2, y2)] {
            d.add_clause([Lit::positive(x), Lit::negative(y)]);
            d.add_clause([Lit::negative(x), Lit::positive(y)]);
        }
        d
    }

    #[test]
    fn extraction_yields_the_copy_functions() {
        let d = example_one();
        let cert = extract_skolem(&d).expect("satisfiable");
        assert_eq!(cert.functions.len(), 2);
        for f in &cert.functions {
            assert_eq!(f.deps.len(), 1);
            // The forced function is the identity on the dependency.
            assert_eq!(f.table, vec![false, true]);
        }
        assert!(cert.verify(&d));
    }

    #[test]
    fn unsatisfiable_formula_has_no_certificate() {
        let mut d = Dqbf::new();
        let x1 = d.add_universal();
        let x2 = d.add_universal();
        let y = d.add_existential([x1]);
        d.add_clause([Lit::positive(x2), Lit::negative(y)]);
        d.add_clause([Lit::negative(x2), Lit::positive(y)]);
        assert!(extract_skolem(&d).is_none());
    }

    #[test]
    fn tampered_certificate_fails_verification() {
        let d = example_one();
        let mut cert = extract_skolem(&d).unwrap();
        cert.functions[0].table[0] = !cert.functions[0].table[0];
        assert!(!cert.verify(&d));
    }

    /// Exhaustive tamper check: both Skolem functions of Example 1 are
    /// forced (y = x), so corrupting *any single* table row must be
    /// caught — in both the plain and the proof-checked verifier.
    #[test]
    fn every_single_row_corruption_is_rejected() {
        let d = example_one();
        let cert = extract_skolem(&d).expect("satisfiable");
        assert!(cert.verify(&d));
        assert!(cert.verify_certified(&d));
        for f in 0..cert.functions.len() {
            for row in 0..cert.functions[f].table.len() {
                let mut tampered = cert.clone();
                tampered.functions[f].table[row] = !tampered.functions[f].table[row];
                assert!(
                    !tampered.verify(&d),
                    "corruption of function {f} row {row} went undetected"
                );
                assert!(
                    !tampered.verify_certified(&d),
                    "certified verify missed corruption of function {f} row {row}"
                );
            }
        }
    }

    #[test]
    fn certified_verification_agrees_with_plain() {
        let d = example_one();
        let cert = extract_skolem(&d).unwrap();
        assert!(cert.verify_certified(&d));
        let mut broken = cert.clone();
        broken.functions.pop();
        assert!(!broken.verify_certified(&d));
    }

    #[test]
    fn partial_certificate_is_rejected() {
        let d = example_one();
        let mut cert = extract_skolem(&d).unwrap();
        cert.functions.pop();
        assert!(!cert.verify(&d));
    }

    #[test]
    fn empty_matrix_certificate() {
        let mut d = Dqbf::new();
        let _x = d.add_universal();
        let y = d.add_existential([]);
        let _ = y;
        let cert = extract_skolem(&d).expect("trivially satisfiable");
        assert!(cert.verify(&d));
    }

    /// On random satisfiable instances: extraction succeeds exactly when
    /// HQS says Sat, and the certificate always verifies.
    #[test]
    fn extraction_matches_solver_and_verifies() {
        use hqs_base::Rng;
        let mut rng = Rng::seed_from_u64(60);
        let mut verified = 0;
        for _ in 0..60 {
            let mut d = Dqbf::new();
            let nu = rng.gen_range(1..=3u32);
            let xs: Vec<Var> = (0..nu).map(|_| d.add_universal()).collect();
            let mut all: Vec<Var> = xs.clone();
            for _ in 0..rng.gen_range(1..=3u32) {
                let deps: Vec<Var> = xs.iter().copied().filter(|_| rng.gen_bool(0.5)).collect();
                all.push(d.add_existential(deps));
            }
            for _ in 0..rng.gen_range(1..=7usize) {
                let len = rng.gen_range(1..=3usize);
                let lits: Vec<Lit> = (0..len)
                    .map(|_| Lit::new(all[rng.gen_range(0..all.len())], rng.gen_bool(0.5)))
                    .collect();
                d.add_clause(lits);
            }
            let verdict = HqsSolver::new().run(&d);
            match extract_skolem(&d) {
                Some(cert) => {
                    assert_eq!(verdict, DqbfResult::Sat, "{d:?}");
                    assert!(cert.verify(&d), "{d:?}");
                    verified += 1;
                }
                None => assert_eq!(verdict, DqbfResult::Unsat, "{d:?}"),
            }
        }
        assert!(verified > 5, "expected a healthy mix of SAT instances");
    }

    /// PEC view: the certificate of a carved instance is a concrete
    /// implementation of the black box.
    #[test]
    fn certificate_implements_the_black_box() {
        // spec: o = a ∧ b; impl: o = BB(a, b). The extracted table for the
        // box output must be the AND table.
        let mut d = Dqbf::new();
        let a = d.add_universal();
        let b = d.add_universal();
        let h = d.add_existential([a, b]);
        // matrix: h ↔ (a ∧ b)
        d.add_clause([Lit::negative(h), Lit::positive(a)]);
        d.add_clause([Lit::negative(h), Lit::positive(b)]);
        d.add_clause([Lit::positive(h), Lit::negative(a), Lit::negative(b)]);
        let cert = extract_skolem(&d).expect("realizable");
        let f = cert.function(h).unwrap();
        assert_eq!(f.table, vec![false, false, false, true]);
    }
}
