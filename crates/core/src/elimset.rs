//! MaxSAT-based selection of a minimum universal elimination set
//! (Section III-A, Equations 1 and 2 of the paper).
//!
//! For every binary cycle `{y, y'}` of the dependency graph, the hard
//! constraint demands that all of `D_y \ D_y'` or all of `D_y' \ D_y` be
//! eliminated; the soft clauses `¬x̂` minimise the number of eliminated
//! universals. The optimum of this partial MaxSAT instance is a *minimum*
//! set of universal variables whose elimination makes the dependency graph
//! acyclic — i.e. turns the DQBF into a QBF.

use crate::depgraph::BinaryCycle;
use hqs_base::{Lit, Var};
use hqs_maxsat::{MaxSatResult, MaxSatSolver};
use hqs_obs::Obs;
use std::collections::HashMap;

/// Computes a minimum set of universal variables to eliminate.
///
/// `universals` are the current universal variables; `cycles` the binary
/// cycles of the dependency graph (see
/// [`DepGraph::binary_cycles`](crate::depgraph::DepGraph::binary_cycles));
/// `copies_of` gives `|E_x|`, the number of existential copies introduced
/// by eliminating `x` (Theorem 1) — the returned set is ordered by it,
/// cheapest first, which is the elimination order HQS uses.
///
/// Returns an empty vector when there are no cycles.
#[must_use]
pub fn minimal_elimination_set(
    universals: &[Var],
    cycles: &[BinaryCycle],
    copies_of: impl Fn(Var) -> usize,
) -> Vec<Var> {
    minimal_elimination_set_observed(universals, cycles, copies_of, &Obs::disabled())
}

/// [`minimal_elimination_set`] with an observability handle: the inner
/// MaxSAT (and its SAT substrate) then report call and conflict counters
/// through `obs`. The solver's main loop uses this variant.
#[must_use]
pub fn minimal_elimination_set_observed(
    universals: &[Var],
    cycles: &[BinaryCycle],
    copies_of: impl Fn(Var) -> usize,
    obs: &Obs,
) -> Vec<Var> {
    if cycles.is_empty() {
        return Vec::new();
    }
    let mut solver = MaxSatSolver::new();
    solver.set_observer(obs.clone());
    // One MaxSAT variable x̂ per universal, in order.
    let hat: HashMap<Var, Var> = universals.iter().map(|&x| (x, solver.new_var())).collect();
    for cycle in cycles {
        let first: Vec<Var> = cycle.first_only.iter().collect();
        let second: Vec<Var> = cycle.second_only.iter().collect();
        debug_assert!(!first.is_empty() && !second.is_empty());
        match (first.as_slice(), second.as_slice()) {
            ([a], [b]) => {
                solver.add_hard([Lit::positive(hat[a]), Lit::positive(hat[b])]);
            }
            ([a], bs) => {
                // â ∨ (∧ b̂): clauses (â ∨ b̂) for each b.
                for b in bs {
                    solver.add_hard([Lit::positive(hat[a]), Lit::positive(hat[b])]);
                }
            }
            (r#as, [b]) => {
                for a in r#as {
                    solver.add_hard([Lit::positive(hat[a]), Lit::positive(hat[b])]);
                }
            }
            (r#as, bs) => {
                // Selector s: s → ∧ â, ¬s → ∧ b̂.
                let s = solver.new_var();
                for a in r#as {
                    solver.add_hard([Lit::negative(s), Lit::positive(hat[a])]);
                }
                for b in bs {
                    solver.add_hard([Lit::positive(s), Lit::positive(hat[b])]);
                }
            }
        }
    }
    for &x in universals {
        solver.add_soft([Lit::negative(hat[&x])]);
    }
    let MaxSatResult::Optimum { model, .. } = solver.solve() else {
        unreachable!("the hard constraints are satisfiable (eliminate everything)");
    };
    let mut chosen: Vec<Var> = universals
        .iter()
        .copied()
        .filter(|x| model.satisfies(Lit::positive(hat[x])))
        .collect();
    chosen.sort_by_key(|&x| copies_of(x));
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::DepGraph;
    use hqs_base::VarSet;

    fn set(vars: &[u32]) -> VarSet {
        vars.iter().map(|&i| Var::new(i)).collect()
    }

    fn cycles_of(existentials: &[(Var, VarSet)]) -> Vec<BinaryCycle> {
        DepGraph::new(existentials).binary_cycles()
    }

    #[test]
    fn no_cycles_empty_set() {
        let existentials = vec![(Var::new(2), set(&[0])), (Var::new(3), set(&[0, 1]))];
        let result = minimal_elimination_set(
            &[Var::new(0), Var::new(1)],
            &cycles_of(&existentials),
            |_| 0,
        );
        assert!(result.is_empty());
    }

    /// Example 1: D_{y1}={x1}, D_{y2}={x2}. Eliminating either x1 or x2
    /// suffices; the minimum has size 1.
    #[test]
    fn paper_example_needs_one_variable() {
        let existentials = vec![(Var::new(2), set(&[0])), (Var::new(3), set(&[1]))];
        let result = minimal_elimination_set(
            &[Var::new(0), Var::new(1)],
            &cycles_of(&existentials),
            |_| 1,
        );
        assert_eq!(result.len(), 1);
    }

    /// A "star" of cycles all sharing universal x0: eliminating x0 alone is
    /// optimal even though each cycle could also be broken on its other
    /// side.
    #[test]
    fn shared_variable_is_preferred() {
        // y_i depends on {x0, x_i}; z depends on all but x0.
        // Pairs {y_i, z} are incomparable with differences ({x0}, rest).
        let universals: Vec<Var> = (0..4).map(Var::new).collect();
        let z_deps = set(&[1, 2, 3]);
        let existentials = vec![
            (Var::new(4), set(&[0, 1])),
            (Var::new(5), set(&[0, 2])),
            (Var::new(6), set(&[0, 3])),
            (Var::new(7), z_deps),
        ];
        let result = minimal_elimination_set(&universals, &cycles_of(&existentials), |_| 1);
        // x0 breaks the {y_i, z} cycles; but the y_i are also pairwise
        // incomparable ({x_i} vs {x_j}), so more must go. Verify the result
        // really linearises and is minimal (≤ 3).
        assert!(!result.is_empty());
        let remaining = |deps: &VarSet| {
            let kill: VarSet = result.iter().copied().collect();
            deps.difference(&kill)
        };
        let after: Vec<(Var, VarSet)> = existentials
            .iter()
            .map(|(v, d)| (*v, remaining(d)))
            .collect();
        assert!(!DepGraph::new(&after).is_cyclic());
        assert!(result.len() <= 3);
    }

    #[test]
    fn result_ordered_by_copy_count() {
        // Force both x0 and x1 into the set with two disjoint cycles.
        let existentials = vec![
            (Var::new(4), set(&[0])),
            (Var::new(5), set(&[2])),
            (Var::new(6), set(&[1, 2])),
            (Var::new(7), set(&[2, 3])),
        ];
        // cycles: {y4,y5}: ({0},{2}), {y4,y6}: ({0},{1,2}), {y4,y7}:({0},{2,3}),
        // {y6,y7}: ({1},{3}) …
        let universals: Vec<Var> = (0..4).map(Var::new).collect();
        let copies = |x: Var| match x.index() {
            0 => 10,
            _ => x.uidx(),
        };
        let result = minimal_elimination_set(&universals, &cycles_of(&existentials), copies);
        let mut sorted = result.clone();
        sorted.sort_by_key(|&x| copies(x));
        assert_eq!(result, sorted);
    }

    /// Exhaustive minimality check on random instances: the MaxSAT answer
    /// has the same size as the brute-force minimum hitting choice.
    #[test]
    fn optimum_matches_brute_force() {
        use hqs_base::Rng;
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..100 {
            let nu = rng.gen_range(1..=6u32);
            let ne = rng.gen_range(2..=4usize);
            let universals: Vec<Var> = (0..nu).map(Var::new).collect();
            let existentials: Vec<(Var, VarSet)> = (0..ne)
                .map(|i| {
                    let deps: VarSet = universals
                        .iter()
                        .copied()
                        .filter(|_| rng.gen_bool(0.5))
                        .collect();
                    (Var::new(nu + i as u32), deps)
                })
                .collect();
            let cycles = cycles_of(&existentials);
            let result = minimal_elimination_set(&universals, &cycles, |_| 0);
            // Brute force: smallest subset of universals whose removal
            // makes all dependency sets pairwise comparable.
            let mut best = usize::MAX;
            for mask in 0u32..(1 << nu) {
                let kill: VarSet = (0..nu)
                    .filter(|i| mask >> i & 1 == 1)
                    .map(Var::new)
                    .collect();
                let after: Vec<(Var, VarSet)> = existentials
                    .iter()
                    .map(|(v, d)| (*v, d.difference(&kill)))
                    .collect();
                if !DepGraph::new(&after).is_cyclic() {
                    best = best.min(mask.count_ones() as usize);
                }
            }
            assert_eq!(result.len(), best, "existentials: {existentials:?}");
        }
    }
}
