//! Building the matrix AIG and composing detected gates
//! (Section III-C: "we replace all literals representing a gate output by
//! the function computed by its gate using the compose operation").

use crate::preprocess::{Gate, GateKind};
use crate::Dqbf;
use hqs_aig::{Aig, AigEdge};
use hqs_base::Var;
use std::collections::HashMap;

/// Builds the AIG of `dqbf`'s matrix and composes the extracted `gates`
/// away: every occurrence of a gate-output variable is replaced by the
/// gate's function over primary (non-gate) variables.
///
/// `gates` must be in topological order, inputs before outputs — exactly
/// what [`crate::preprocess::preprocess`] returns. The gate-output
/// variables disappear from the support of the returned edge.
#[must_use]
pub fn build_aig(dqbf: &Dqbf, gates: &[Gate]) -> (Aig, AigEdge) {
    let mut aig = Aig::new();
    let root = aig.from_cnf(dqbf.matrix());
    if gates.is_empty() {
        return (aig, root);
    }
    // Resolve every gate to a function over primary variables, walking the
    // (topologically sorted) gate list inputs-first.
    let mut functions: HashMap<Var, AigEdge> = HashMap::new();
    for gate in gates {
        let input_edges: Vec<AigEdge> = gate
            .inputs
            .iter()
            .map(|&lit| {
                let base = functions
                    .get(&lit.var())
                    .copied()
                    .unwrap_or_else(|| aig.input(lit.var()));
                base.xor_complement(lit.is_negative())
            })
            .collect();
        let gate_fn = match gate.kind {
            GateKind::And => aig.and_many(&input_edges),
            GateKind::Xor => {
                debug_assert_eq!(input_edges.len(), 2);
                aig.xor(input_edges[0], input_edges[1])
            }
        };
        // `output ≡ gate_fn` where output may be a negative literal:
        // var(output) ≡ gate_fn ⊕ sign.
        functions.insert(
            gate.output.var(),
            gate_fn.xor_complement(gate.output.is_negative()),
        );
    }
    let root = aig.compose_many(root, &functions);
    (aig, root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqs_base::Lit;

    #[test]
    fn gateless_build_matches_cnf() {
        let mut d = Dqbf::new();
        let x = d.add_universal();
        let y = d.add_existential([x]);
        d.add_clause([Lit::positive(x), Lit::negative(y)]);
        let (aig, root) = build_aig(&d, &[]);
        assert!(aig.support(root).contains(x));
        assert!(aig.support(root).contains(y));
    }

    #[test]
    fn composed_gate_output_leaves_support() {
        // Matrix uses t; gate t ≡ x ∧ y.
        let mut d = Dqbf::new();
        let x = d.add_universal();
        let y = d.add_existential([x]);
        let t = Var::new(2);
        d.add_clause([Lit::positive(t), Lit::positive(y)]);
        let gates = vec![Gate {
            output: Lit::positive(t),
            inputs: vec![Lit::positive(x), Lit::positive(y)],
            kind: GateKind::And,
        }];
        let (aig, root) = build_aig(&d, &gates);
        let support = aig.support(root);
        assert!(!support.contains(t), "gate output composed away");
        // (x∧y) ∨ y ≡ y.
        for bits in 0u32..4 {
            let val = |v: Var| bits >> v.index() & 1 == 1;
            assert_eq!(aig.eval(root, val), val(y));
        }
    }

    #[test]
    fn chained_gates_resolve_to_primaries() {
        // t1 ≡ x ∧ y; t2 ≡ t1 ⊕ x; matrix = (t2).
        let mut d = Dqbf::new();
        let x = d.add_universal();
        let y = d.add_existential([x]);
        let t1 = Var::new(2);
        let t2 = Var::new(3);
        d.add_clause([Lit::positive(t2)]);
        let gates = vec![
            Gate {
                output: Lit::positive(t1),
                inputs: vec![Lit::positive(x), Lit::positive(y)],
                kind: GateKind::And,
            },
            Gate {
                output: Lit::positive(t2),
                inputs: vec![Lit::positive(t1), Lit::positive(x)],
                kind: GateKind::Xor,
            },
        ];
        let (aig, root) = build_aig(&d, &gates);
        let support = aig.support(root);
        assert!(!support.contains(t1) && !support.contains(t2));
        // t2 = (x∧y) ⊕ x = x∧¬y.
        for bits in 0u32..4 {
            let val = |v: Var| bits >> v.index() & 1 == 1;
            assert_eq!(aig.eval(root, val), val(x) && !val(y));
        }
    }

    #[test]
    fn negated_gate_output_literal() {
        // Gate "¬t ≡ x ∧ y" i.e. t ≡ ¬(x∧y); matrix = (t).
        let mut d = Dqbf::new();
        let x = d.add_universal();
        let y = d.add_existential([x]);
        let t = Var::new(2);
        d.add_clause([Lit::positive(t)]);
        let gates = vec![Gate {
            output: Lit::negative(t),
            inputs: vec![Lit::positive(x), Lit::positive(y)],
            kind: GateKind::And,
        }];
        let (aig, root) = build_aig(&d, &gates);
        for bits in 0u32..4 {
            let val = |v: Var| bits >> v.index() & 1 == 1;
            assert_eq!(aig.eval(root, val), !(val(x) && val(y)));
        }
    }
}
