//! Quantifier elimination on the AIG representation
//! (Theorems 1, 2 and 5 of the paper).
//!
//! [`AigDqbf`] is the solver's working state: the matrix as an AIG cone
//! plus the DQBF prefix (universals, existentials, dependency sets).
//! The three elimination rules transform it in place:
//!
//! * [`AigDqbf::eliminate_universal`] — Theorem 1:
//!   `φ ↦ φ[0/x] ∧ φ[1/x][y'/y for y ∈ E_x]`, introducing a fresh copy
//!   `y'` for every existential depending on `x`.
//! * [`AigDqbf::eliminate_existential`] — Theorem 2 (requires
//!   `D_y = V^∀`): `φ ↦ φ[0/y] ∨ φ[1/y]`.
//! * [`AigDqbf::apply_unit_pure`] — Theorem 5, driven by the syntactic
//!   Theorem-6 traversal of [`hqs_aig`].

use crate::Dqbf;
use hqs_aig::{Aig, AigEdge, VarStatus};
use hqs_base::{Var, VarSet};
use std::collections::HashMap;

/// The AIG-based working form of a DQBF.
///
/// # Examples
///
/// ```
/// use hqs_base::Lit;
/// use hqs_core::{Dqbf, elim::AigDqbf};
///
/// let mut dqbf = Dqbf::new();
/// let x = dqbf.add_universal();
/// let y = dqbf.add_existential([x]);
/// dqbf.add_clause([Lit::positive(x), Lit::positive(y)]);
/// let mut state = AigDqbf::from_dqbf(&dqbf);
/// assert_eq!(state.universals().len(), 1);
/// state.eliminate_universal(x);
/// assert!(state.universals().is_empty());
/// ```
#[derive(Debug)]
pub struct AigDqbf {
    /// The AIG manager holding the matrix.
    pub aig: Aig,
    /// The matrix cone.
    pub root: AigEdge,
    pub(crate) universals: Vec<Var>,
    pub(crate) universal_set: VarSet,
    pub(crate) existentials: Vec<Var>,
    pub(crate) deps: HashMap<Var, VarSet>,
    pub(crate) next_var: u32,
}

impl AigDqbf {
    /// Builds the working state from a CNF-based DQBF (free variables are
    /// bound as empty-dependency existentials).
    #[must_use]
    pub fn from_dqbf(dqbf: &Dqbf) -> Self {
        let mut dqbf = dqbf.clone();
        dqbf.bind_free_vars();
        let mut aig = Aig::new();
        let root = aig.from_cnf(dqbf.matrix());
        AigDqbf {
            aig,
            root,
            universals: dqbf.universals().to_vec(),
            universal_set: dqbf.universals().iter().copied().collect(),
            existentials: dqbf.existentials().to_vec(),
            deps: dqbf
                .existentials()
                .iter()
                .map(|&y| (y, dqbf.dependencies(y).expect("existential").clone()))
                .collect(),
            next_var: dqbf.num_vars(),
        }
    }

    /// Builds the state from pre-assembled parts (used by the solver after
    /// preprocessing and gate composition).
    ///
    /// `next_var` must exceed every allocated variable index.
    #[must_use]
    pub fn from_parts(
        aig: Aig,
        root: AigEdge,
        universals: Vec<Var>,
        existentials: Vec<(Var, VarSet)>,
        next_var: u32,
    ) -> Self {
        let universal_set: VarSet = universals.iter().copied().collect();
        AigDqbf {
            aig,
            root,
            universals,
            universal_set,
            existentials: existentials.iter().map(|&(y, _)| y).collect(),
            deps: existentials.into_iter().collect(),
            next_var,
        }
    }

    /// The remaining universal variables, in order.
    #[must_use]
    pub fn universals(&self) -> &[Var] {
        &self.universals
    }

    /// The remaining existential variables, in order (copies appended).
    #[must_use]
    pub fn existentials(&self) -> &[Var] {
        &self.existentials
    }

    /// The dependency set of `y`.
    #[must_use]
    pub fn dependencies(&self, y: Var) -> Option<&VarSet> {
        self.deps.get(&y)
    }

    /// Existential/dependency pairs, for dependency-graph construction.
    #[must_use]
    pub fn existential_deps(&self) -> Vec<(Var, VarSet)> {
        self.existentials
            .iter()
            .map(|&y| (y, self.deps[&y].clone()))
            .collect()
    }

    /// `|E_x|`: how many existential copies eliminating `x` would create.
    #[must_use]
    pub fn copies_of(&self, x: Var) -> usize {
        self.existentials
            .iter()
            .filter(|y| self.deps[y].contains(x))
            .count()
    }

    /// Eliminates universal `x` by Theorem 1. Copies are created only for
    /// existentials that actually occur in the positive cofactor's support;
    /// the others keep their (now `x`-free) dependency sets.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not a current universal variable.
    pub fn eliminate_universal(&mut self, x: Var) {
        assert!(self.universal_set.contains(x), "{x} is not universal");
        let cof0 = self.aig.cofactor(self.root, x, false);
        let cof1 = self.aig.cofactor(self.root, x, true);
        let support1 = self.aig.support(cof1);
        let mut replacement: HashMap<Var, AigEdge> = HashMap::new();
        let e_x: Vec<Var> = self
            .existentials
            .iter()
            .copied()
            .filter(|y| self.deps[y].contains(x))
            .collect();
        for y in e_x {
            self.deps.get_mut(&y).expect("existential").remove(x);
            if support1.contains(y) {
                let copy = Var::new(self.next_var);
                self.next_var += 1;
                let mut copy_deps = self.deps[&y].clone();
                copy_deps.remove(x);
                self.deps.insert(copy, copy_deps);
                self.existentials.push(copy);
                let edge = self.aig.input(copy);
                replacement.insert(y, edge);
            }
        }
        let cof1_renamed = self.aig.compose_many(cof1, &replacement);
        self.root = self.aig.and(cof0, cof1_renamed);
        self.universals.retain(|&u| u != x);
        self.universal_set.remove(x);
        self.debug_audit("after eliminate_universal");
    }

    /// Eliminates existential `y` by Theorem 2.
    ///
    /// # Panics
    ///
    /// Panics if `y` does not depend on all current universals.
    pub fn eliminate_existential(&mut self, y: Var) {
        assert_eq!(
            self.deps.get(&y),
            Some(&self.universal_set),
            "Theorem 2 requires D_y = V∀"
        );
        self.root = self.aig.exists(self.root, y);
        self.remove_existential(y);
        self.debug_audit("after eliminate_existential");
    }

    /// Eliminates every existential whose dependency set equals the full
    /// current universal set (the paper applies Theorem 2 "whenever
    /// possible"). Returns how many were eliminated.
    pub fn eliminate_total_existentials(&mut self) -> usize {
        let mut count = 0;
        while self.eliminate_one_total_existential() {
            count += 1;
        }
        count
    }

    /// Eliminates a single total-dependency existential — the cheapest by
    /// cone-occurrence count — and returns `true`; `false` when none is
    /// left. Callers that enforce budgets use this to check limits between
    /// eliminations.
    pub fn eliminate_one_total_existential(&mut self) -> bool {
        let support = self.aig.support(self.root);
        let candidates: Vec<Var> = self
            .existentials
            .iter()
            .copied()
            .filter(|y| self.deps[y] == self.universal_set && support.contains(*y))
            .collect();
        if candidates.is_empty() {
            return false;
        }
        // Cheapest first: fewest cone nodes mentioning the variable.
        let costs = crate::elim::support_occurrences(&self.aig, self.root, &candidates);
        let Some((pos, _)) = costs.iter().enumerate().min_by_key(|&(_, c)| *c) else {
            return false;
        };
        let y = candidates[pos];
        self.root = self.aig.exists(self.root, y);
        self.remove_existential(y);
        self.debug_audit("after eliminate_one_total_existential");
        true
    }

    /// One round of Theorem-5 elimination driven by the syntactic
    /// Theorem-6 check. Applies at most one variable (the classification is
    /// stale after a cofactor); returns
    ///
    /// * `Some(false)` — the formula was detected **unsatisfied**
    ///   (universal unit),
    /// * `Some(true)` — a variable was eliminated,
    /// * `None` — nothing applied; the caller can stop iterating.
    pub fn apply_unit_pure(&mut self) -> Option<bool> {
        if self.root.is_constant() {
            return None;
        }
        let status = self.aig.unit_pure(self.root);
        for (var, s) in status.classified() {
            let is_universal = self.universal_set.contains(var);
            let is_existential = self.deps.contains_key(&var);
            if !is_universal && !is_existential {
                continue;
            }
            match s {
                VarStatus::PositiveUnit | VarStatus::NegativeUnit if is_universal => {
                    return Some(false);
                }
                VarStatus::PositiveUnit | VarStatus::PositivePure if is_existential => {
                    self.root = self.aig.cofactor(self.root, var, true);
                    self.remove_existential(var);
                }
                VarStatus::NegativeUnit | VarStatus::NegativePure if is_existential => {
                    self.root = self.aig.cofactor(self.root, var, false);
                    self.remove_existential(var);
                }
                VarStatus::PositivePure => {
                    self.root = self.aig.cofactor(self.root, var, false);
                    self.remove_universal(var);
                }
                VarStatus::NegativePure => {
                    self.root = self.aig.cofactor(self.root, var, true);
                    self.remove_universal(var);
                }
                VarStatus::Unknown => continue,
                _ => continue,
            }
            self.debug_audit("after unit/pure elimination");
            return Some(true);
        }
        None
    }

    /// Per-variable count of cone nodes whose support contains the
    /// variable (bit-parallel over chunks of 64) — the elimination-cost
    /// estimate.
    #[must_use]
    pub fn occurrence_counts(&self, vars: &[Var]) -> Vec<usize> {
        support_occurrences(&self.aig, self.root, vars)
    }

    fn remove_existential(&mut self, y: Var) {
        self.existentials.retain(|&v| v != y);
        self.deps.remove(&y);
    }

    fn remove_universal(&mut self, x: Var) {
        self.universals.retain(|&v| v != x);
        self.universal_set.remove(x);
        // analyze::allow(determinism): each dependency set is mutated independently — visit order cannot affect the result
        for deps in self.deps.values_mut() {
            deps.remove(x);
        }
    }

    /// Drops prefix variables that no longer occur in the matrix support.
    /// Unused universals are simply removed (their quantification is
    /// vacuous); unused existentials likewise.
    pub fn drop_unused(&mut self) {
        let support = self.aig.support(self.root);
        self.universals.retain(|&x| {
            let keep = support.contains(x);
            if !keep {
                self.universal_set.remove(x);
            }
            keep
        });
        // Removed universals must disappear from dependency sets.
        // analyze::allow(determinism): each dependency set is mutated independently — visit order cannot affect the result
        for deps in self.deps.values_mut() {
            deps.intersect_with(&self.universal_set);
        }
        let deps = &mut self.deps;
        self.existentials.retain(|&y| {
            let keep = support.contains(y);
            if !keep {
                deps.remove(&y);
            }
            keep
        });
        self.debug_audit("after drop_unused");
    }

    /// Garbage-collects the AIG manager, keeping only the live cone.
    pub fn compact(&mut self) {
        self.root = self.aig.compact(&[self.root])[0];
        self.debug_audit("after compact");
    }

    /// Converts back to a CNF-based [`Dqbf`] by Tseitin encoding; auxiliary
    /// gate variables become existentials depending on **all** current
    /// universals (their values are functions of the other variables, hence
    /// Skolem-representable). Used by the test oracle.
    #[must_use]
    pub fn to_dqbf(&self) -> Dqbf {
        let first_aux = self.next_var;
        let (cnf, out) = self.aig.to_cnf(self.root, first_aux);
        let mut dqbf = Dqbf::new();
        // Recreate prefix in variable order: universals first.
        let mut mapping: HashMap<Var, Var> = HashMap::new();
        for &x in &self.universals {
            mapping.insert(x, dqbf.add_universal());
        }
        for &y in &self.existentials {
            let deps: Vec<Var> = self.deps[&y].iter().map(|d| mapping[&d]).collect();
            mapping.insert(y, dqbf.add_existential(deps));
        }
        // Auxiliary variables: innermost existentials.
        for aux in first_aux..cnf.num_vars() {
            mapping.insert(Var::new(aux), dqbf.add_existential_innermost());
        }
        // Any other support variable (shouldn't happen) maps identically.
        for clause in cnf.clauses() {
            dqbf.add_clause(clause.lits().iter().map(|&l| {
                let var = *mapping.get(&l.var()).unwrap_or(&l.var());
                hqs_base::Lit::new(var, l.is_negative())
            }));
        }
        let out_var = *mapping.get(&out.var()).unwrap_or(&out.var());
        dqbf.add_clause([hqs_base::Lit::new(out_var, out.is_negative())]);
        dqbf
    }
}

/// For each variable, the number of cone nodes of `root` whose support
/// contains it; used to order eliminations cheapest-first.
pub(crate) fn support_occurrences(aig: &hqs_aig::Aig, root: AigEdge, vars: &[Var]) -> Vec<usize> {
    aig.occurrence_counts(root, vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::is_satisfiable_by_expansion;
    use hqs_base::Lit;

    fn example_one() -> (Dqbf, Var, Var, Var, Var) {
        // ∀x1∀x2 ∃y1(x1) ∃y2(x2) : (y1↔x1) ∧ (y2↔x2)
        let mut d = Dqbf::new();
        let x1 = d.add_universal();
        let x2 = d.add_universal();
        let y1 = d.add_existential([x1]);
        let y2 = d.add_existential([x2]);
        for (x, y) in [(x1, y1), (x2, y2)] {
            d.add_clause([Lit::positive(x), Lit::negative(y)]);
            d.add_clause([Lit::negative(x), Lit::positive(y)]);
        }
        (d, x1, x2, y1, y2)
    }

    #[test]
    fn universal_elimination_creates_copies() {
        let (d, x1, _, _, _) = example_one();
        let mut state = AigDqbf::from_dqbf(&d);
        let before = state.existentials().len();
        state.eliminate_universal(x1);
        assert_eq!(state.universals().len(), 1);
        // y1 depended on x1 and occurs in the positive cofactor: one copy.
        assert_eq!(state.existentials().len(), before + 1);
        // All dependency sets no longer mention x1.
        for &y in state.existentials() {
            assert!(!state.dependencies(y).unwrap().contains(x1));
        }
    }

    #[test]
    fn elimination_preserves_truth() {
        let (d, x1, _, _, _) = example_one();
        assert!(is_satisfiable_by_expansion(&d));
        let mut state = AigDqbf::from_dqbf(&d);
        state.eliminate_universal(x1);
        assert!(is_satisfiable_by_expansion(&state.to_dqbf()));
        // After both universals: SAT matrix remains.
        let x2 = state.universals()[0];
        state.eliminate_universal(x2);
        assert!(state.universals().is_empty());
        assert!(is_satisfiable_by_expansion(&state.to_dqbf()));
    }

    #[test]
    fn elimination_preserves_falsity() {
        // ∀x1∀x2 ∃y(x1): y↔x2 — unsatisfiable.
        let mut d = Dqbf::new();
        let x1 = d.add_universal();
        let x2 = d.add_universal();
        let y = d.add_existential([x1]);
        d.add_clause([Lit::positive(x2), Lit::negative(y)]);
        d.add_clause([Lit::negative(x2), Lit::positive(y)]);
        assert!(!is_satisfiable_by_expansion(&d));
        let mut state = AigDqbf::from_dqbf(&d);
        state.eliminate_universal(x1);
        assert!(!is_satisfiable_by_expansion(&state.to_dqbf()));
        state.eliminate_universal(x2);
        assert!(!is_satisfiable_by_expansion(&state.to_dqbf()));
        // With all universals gone the matrix must be unsatisfiable
        // propositionally (all remaining vars existential).
    }

    #[test]
    fn existential_elimination_requires_total_deps() {
        let (d, _, _, _, y2) = example_one();
        let mut state = AigDqbf::from_dqbf(&d);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            state.eliminate_existential(y2);
        }));
        assert!(result.is_err(), "partial dependencies must be rejected");
    }

    #[test]
    fn total_existential_elimination() {
        // ∀x ∃y(x): (y ↔ x) — y depends on all universals, eliminable.
        let mut d = Dqbf::new();
        let x = d.add_universal();
        let y = d.add_existential([x]);
        d.add_clause([Lit::positive(x), Lit::negative(y)]);
        d.add_clause([Lit::negative(x), Lit::positive(y)]);
        let mut state = AigDqbf::from_dqbf(&d);
        assert_eq!(state.eliminate_total_existentials(), 1);
        // ∃y. y↔x ≡ TRUE for each x: the AIG collapses.
        assert_eq!(state.root, Aig::TRUE);
    }

    #[test]
    fn unit_pure_universal_unit_detects_unsat() {
        // ∀x: matrix = x — universal unit.
        let mut d = Dqbf::new();
        let x = d.add_universal();
        d.add_clause([Lit::positive(x)]);
        let mut state = AigDqbf::from_dqbf(&d);
        assert_eq!(state.apply_unit_pure(), Some(false));
    }

    #[test]
    fn unit_pure_eliminates_pure_existential() {
        // ∃y (free-style): matrix = (y ∨ x) ∧ (y ∨ ¬x), y positive pure.
        let mut d = Dqbf::new();
        let x = d.add_universal();
        let y = d.add_existential([]);
        d.add_clause([Lit::positive(y), Lit::positive(x)]);
        d.add_clause([Lit::positive(y), Lit::negative(x)]);
        let mut state = AigDqbf::from_dqbf(&d);
        // Repeated application ends in constant TRUE.
        while let Some(step) = state.apply_unit_pure() {
            assert!(step, "no unsat verdict expected");
        }
        assert_eq!(state.root, Aig::TRUE);
    }

    #[test]
    fn drop_unused_cleans_prefix() {
        let mut d = Dqbf::new();
        let _x = d.add_universal();
        let y = d.add_existential([]);
        d.add_clause([Lit::positive(y)]);
        let mut state = AigDqbf::from_dqbf(&d);
        state.drop_unused();
        assert!(state.universals().is_empty());
        assert_eq!(state.existentials(), &[y]);
    }

    /// Randomised soundness: a random sequence of Theorem-1/2 eliminations
    /// never changes the truth value (checked against the expansion
    /// oracle).
    #[test]
    fn random_elimination_sequences_preserve_truth() {
        use hqs_base::Rng;
        let mut rng = Rng::seed_from_u64(4242);
        for round in 0..60 {
            let mut d = Dqbf::new();
            let nu = rng.gen_range(1..=3u32);
            let ne = rng.gen_range(1..=3u32);
            let xs: Vec<Var> = (0..nu).map(|_| d.add_universal()).collect();
            let mut ys = Vec::new();
            for _ in 0..ne {
                let deps: Vec<Var> = xs.iter().copied().filter(|_| rng.gen_bool(0.6)).collect();
                ys.push(d.add_existential(deps));
            }
            let all_vars: Vec<Var> = xs.iter().chain(ys.iter()).copied().collect();
            for _ in 0..rng.gen_range(1..=6usize) {
                let len = rng.gen_range(1..=3usize);
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = all_vars[rng.gen_range(0..all_vars.len())];
                        Lit::new(v, rng.gen_bool(0.5))
                    })
                    .collect();
                d.add_clause(lits);
            }
            let expected = is_satisfiable_by_expansion(&d);
            let mut state = AigDqbf::from_dqbf(&d);
            // Eliminate universals in random order, existentials whenever
            // total.
            let mut remaining = xs.clone();
            while !remaining.is_empty() {
                state.eliminate_total_existentials();
                let pick = rng.gen_range(0..remaining.len());
                let x = remaining.swap_remove(pick);
                state.eliminate_universal(x);
                let now = is_satisfiable_by_expansion(&state.to_dqbf());
                assert_eq!(now, expected, "round {round} after eliminating {x}");
            }
        }
    }
}
