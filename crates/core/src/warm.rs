//! Cross-request warm state: the canonical formula hash and the
//! [`WarmCache`] bundle a long-lived server shares between sessions.
//!
//! A [`Session`](crate::Session) is cheap to build and tear down, but a
//! serving process answers streams of closely related requests — often
//! the *same* formula with a different budget, or siblings of one
//! instance family. [`WarmCache`] keeps the two most expensive
//! session-independent artefacts alive across sessions:
//!
//! * **preprocessing results**, keyed by [`canonical_formula_hash`] plus
//!   the preprocessing flags, and
//! * **FRAIG-reduced cones** ([`hqs_aig::FraigCache`]), keyed by the
//!   canonical cone encoding.
//!
//! Both caches are bounded [`ByteBudgetLru`]s, and both are consulted
//! transparently once the cache is attached via
//! [`SessionBuilder::warm_cache`](crate::SessionBuilder::warm_cache).

use crate::preprocess::{Gate, PreprocessResult};
use crate::Dqbf;
use hqs_aig::FraigCache;
use hqs_base::{ByteBudgetLru, CacheStatsSnapshot};
use hqs_obs::{Metric, Obs};
use std::sync::Arc;

/// A stable 128-bit canonical hash of a DQBF.
///
/// Canonical means insensitive to *presentation order*: permuting the
/// clauses of the matrix, the literals within a clause, or the
/// declaration order of prefix variables (and of the variables inside a
/// dependency set) leaves the hash unchanged. It is deliberately
/// **sensitive to variable naming** — renaming variables changes the
/// hash — because a cached preprocessing result stores concrete
/// [`Var`](hqs_base::Var) indices and could not be replayed under a
/// renaming.
///
/// Two independently seeded 64-bit passes make accidental collisions
/// (which would silently serve the wrong cached result) a 2⁻¹²⁸ event.
#[must_use]
pub fn canonical_formula_hash(dqbf: &Dqbf) -> u128 {
    let lo = hash_with_seed(dqbf, 0x243F_6A88_85A3_08D3);
    let hi = hash_with_seed(dqbf, 0x1319_8A2E_0370_7344);
    (u128::from(hi) << 64) | u128::from(lo)
}

fn hash_with_seed(dqbf: &Dqbf, seed: u64) -> u64 {
    // Commutative accumulation (wrapping sums of mixed per-item hashes)
    // gives the order-insensitivity; the final mix binds the sections
    // together.
    let mut matrix_acc = 0u64;
    for clause in dqbf.matrix().clauses() {
        let mut clause_acc = 0u64;
        for &lit in clause.lits() {
            let code = u64::from(lit.var().index()) << 1 | u64::from(lit.is_negative());
            clause_acc = clause_acc.wrapping_add(splitmix64(seed ^ code));
        }
        matrix_acc =
            matrix_acc.wrapping_add(splitmix64(clause_acc.wrapping_add(clause.len() as u64)));
    }
    let mut prefix_acc = 0u64;
    for &x in dqbf.universals() {
        prefix_acc = prefix_acc.wrapping_add(splitmix64(
            seed ^ 0xAAAA_0000_0000_0000 ^ u64::from(x.index()),
        ));
    }
    for &y in dqbf.existentials() {
        let mut dep_acc = 0u64;
        if let Some(deps) = dqbf.dependencies(y) {
            for d in deps.iter() {
                dep_acc = dep_acc.wrapping_add(splitmix64(seed ^ u64::from(d.index())));
            }
        }
        prefix_acc = prefix_acc.wrapping_add(splitmix64(
            seed ^ 0xEEEE_0000_0000_0000 ^ u64::from(y.index()) ^ dep_acc.rotate_left(17),
        ));
    }
    splitmix64(
        matrix_acc
            .wrapping_add(prefix_acc.rotate_left(32))
            .wrapping_add(u64::from(dqbf.num_vars())),
    )
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Key of one preprocessing-cache entry: the canonical formula hash
/// plus the flags that change what the pipeline computes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct PreprocessKey {
    formula: u128,
    gate_detection: bool,
    subsumption: bool,
}

impl PreprocessKey {
    pub(crate) fn new(dqbf: &Dqbf, gate_detection: bool, subsumption: bool) -> Self {
        PreprocessKey {
            formula: canonical_formula_hash(dqbf),
            gate_detection,
            subsumption,
        }
    }
}

/// The warm state a serving process shares across sessions: bounded
/// caches of preprocessing results and FRAIG-reduced cones.
///
/// Share one instance behind an [`Arc`] and attach it to every session
/// via [`SessionBuilder::warm_cache`](crate::SessionBuilder::warm_cache).
/// All methods are `&self`; the caches synchronise internally.
#[derive(Debug)]
pub struct WarmCache {
    preprocess: ByteBudgetLru<PreprocessKey, PreprocessResult>,
    fraig: Arc<FraigCache>,
}

impl Default for WarmCache {
    fn default() -> Self {
        WarmCache::new()
    }
}

impl WarmCache {
    /// Default byte budget of the preprocessing cache (32 MiB).
    pub const DEFAULT_PREPROCESS_BUDGET: usize = 32 << 20;
    /// Default byte budget of the FRAIG cone cache (32 MiB).
    pub const DEFAULT_FRAIG_BUDGET: usize = 32 << 20;

    /// A warm cache with the default byte budgets.
    #[must_use]
    pub fn new() -> Self {
        WarmCache::with_budgets(Self::DEFAULT_PREPROCESS_BUDGET, Self::DEFAULT_FRAIG_BUDGET)
    }

    /// A warm cache with explicit byte budgets.
    #[must_use]
    pub fn with_budgets(preprocess_bytes: usize, fraig_bytes: usize) -> Self {
        WarmCache {
            preprocess: ByteBudgetLru::new(preprocess_bytes),
            fraig: Arc::new(FraigCache::new(fraig_bytes)),
        }
    }

    /// The shared FRAIG cone cache, for [`hqs_aig::Aig::set_fraig_cache`].
    #[must_use]
    pub fn fraig(&self) -> &Arc<FraigCache> {
        &self.fraig
    }

    /// Counters and occupancy of the preprocessing cache.
    #[must_use]
    pub fn preprocess_stats(&self) -> CacheStatsSnapshot {
        self.preprocess.stats()
    }

    /// Counters and occupancy of the FRAIG cone cache.
    #[must_use]
    pub fn fraig_stats(&self) -> CacheStatsSnapshot {
        self.fraig.stats()
    }

    /// Drops every entry from both caches (counters are retained).
    pub fn clear(&self) {
        self.preprocess.clear();
        self.fraig.clear();
    }

    pub(crate) fn lookup_preprocess(
        &self,
        key: &PreprocessKey,
        obs: &Obs,
    ) -> Option<PreprocessResult> {
        match self.preprocess.get(key) {
            Some(result) => {
                obs.add(Metric::PreprocessCacheHits, 1);
                Some(result)
            }
            None => {
                obs.add(Metric::PreprocessCacheMisses, 1);
                None
            }
        }
    }

    pub(crate) fn store_preprocess(
        &self,
        key: PreprocessKey,
        result: &PreprocessResult,
        obs: &Obs,
    ) {
        let cost = approx_result_bytes(result);
        let evictions_before = self.preprocess.stats().evictions;
        self.preprocess.insert(key, result.clone(), cost);
        let evicted = self.preprocess.stats().evictions - evictions_before;
        if evicted > 0 {
            obs.add(Metric::CacheEvictions, evicted);
        }
    }
}

/// Approximate heap footprint of a cached preprocessing result, charged
/// against the cache's byte budget.
fn approx_result_bytes(result: &PreprocessResult) -> usize {
    const BASE: usize = 128;
    match result {
        PreprocessResult::Decided { .. } => BASE,
        PreprocessResult::Reduced { dqbf, gates, .. } => {
            BASE + approx_dqbf_bytes(dqbf) + gates.iter().map(approx_gate_bytes).sum::<usize>()
        }
    }
}

fn approx_dqbf_bytes(dqbf: &Dqbf) -> usize {
    let matrix: usize = dqbf
        .matrix()
        .clauses()
        .iter()
        .map(|c| 32 + c.len() * std::mem::size_of::<hqs_base::Lit>())
        .sum();
    // Dependency sets are dense bitsets over num_vars.
    let prefix = dqbf.existentials().len() * (32 + dqbf.num_vars() as usize / 8);
    matrix + prefix + dqbf.universals().len() * 4
}

fn approx_gate_bytes(gate: &Gate) -> usize {
    32 + gate.inputs.len() * std::mem::size_of::<hqs_base::Lit>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqs_base::Lit;

    fn sample() -> Dqbf {
        let mut d = Dqbf::new();
        let x1 = d.add_universal();
        let x2 = d.add_universal();
        let y1 = d.add_existential([x1]);
        let y2 = d.add_existential([x1, x2]);
        d.add_clause([Lit::positive(x1), Lit::negative(y1)]);
        d.add_clause([Lit::negative(x2), Lit::positive(y2), Lit::positive(y1)]);
        d
    }

    #[test]
    fn hash_ignores_clause_and_literal_order() {
        let mut a = Dqbf::new();
        let x1 = a.add_universal();
        let x2 = a.add_universal();
        let y1 = a.add_existential([x1]);
        let y2 = a.add_existential([x1, x2]);
        a.add_clause([Lit::positive(x1), Lit::negative(y1)]);
        a.add_clause([Lit::negative(x2), Lit::positive(y2), Lit::positive(y1)]);

        // Same formula, clauses in the other order and literals shuffled.
        let mut b = Dqbf::new();
        let x1 = b.add_universal();
        let x2 = b.add_universal();
        let y1 = b.add_existential([x1]);
        let y2 = b.add_existential([x2, x1]); // dependency order shuffled too
        b.add_clause([Lit::positive(y1), Lit::negative(x2), Lit::positive(y2)]);
        b.add_clause([Lit::negative(y1), Lit::positive(x1)]);

        assert_eq!(canonical_formula_hash(&a), canonical_formula_hash(&b));
    }

    #[test]
    fn hash_distinguishes_different_formulas() {
        let base = sample();
        let base_hash = canonical_formula_hash(&base);

        // Flipping one literal changes the hash.
        let mut flipped = sample();
        let lits: Vec<Lit> = flipped.matrix().clauses()[0]
            .lits()
            .iter()
            .map(|&l| !l)
            .collect();
        flipped.matrix_mut().clauses_mut()[0] = hqs_cnf::Clause::from_lits(lits);
        assert_ne!(base_hash, canonical_formula_hash(&flipped));

        // A different dependency set changes the hash even with an
        // identical matrix.
        let mut d = Dqbf::new();
        let x1 = d.add_universal();
        let x2 = d.add_universal();
        let y1 = d.add_existential([x2]); // was [x1]
        let y2 = d.add_existential([x1, x2]);
        d.add_clause([Lit::positive(x1), Lit::negative(y1)]);
        d.add_clause([Lit::negative(x2), Lit::positive(y2), Lit::positive(y1)]);
        assert_ne!(base_hash, canonical_formula_hash(&d));

        // An extra (even duplicate) clause changes the hash.
        let mut dup = sample();
        let first = dup.matrix().clauses()[0].clone();
        dup.matrix_mut().add_clause(first);
        assert_ne!(base_hash, canonical_formula_hash(&dup));
    }

    #[test]
    fn hash_is_sensitive_to_variable_naming() {
        // The same shape over renamed variables must hash differently —
        // cached results carry concrete variable indices.
        let mut a = Dqbf::new();
        let x = a.add_universal();
        let y = a.add_existential([x]);
        a.add_clause([Lit::positive(x), Lit::negative(y)]);

        let mut b = Dqbf::new();
        let _pad = b.add_universal();
        let x = b.add_universal();
        let y = b.add_existential([x]);
        b.add_clause([Lit::positive(x), Lit::negative(y)]);

        assert_ne!(canonical_formula_hash(&a), canonical_formula_hash(&b));
    }

    #[test]
    fn warm_cache_round_trips_preprocess_results() {
        let cache = WarmCache::new();
        let obs = Obs::disabled();
        let dqbf = sample();
        let key = PreprocessKey::new(&dqbf, true, false);
        assert!(cache.lookup_preprocess(&key, &obs).is_none());
        let result = crate::preprocess::preprocess_full(&dqbf, true, false);
        cache.store_preprocess(key, &result, &obs);
        let cached = cache.lookup_preprocess(&key, &obs).expect("stored");
        // Same variant and same stats as the original run.
        match (&result, &cached) {
            (
                PreprocessResult::Decided {
                    value: a,
                    stats: sa,
                },
                PreprocessResult::Decided {
                    value: b,
                    stats: sb,
                },
            ) => {
                assert_eq!(a, b);
                assert_eq!(sa, sb);
            }
            (
                PreprocessResult::Reduced { stats: sa, .. },
                PreprocessResult::Reduced { stats: sb, .. },
            ) => assert_eq!(sa, sb),
            _ => panic!("variant mismatch"),
        }
        let stats = cache.preprocess_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // Different flags are a different key.
        let other = PreprocessKey::new(&dqbf, false, false);
        assert!(cache.lookup_preprocess(&other, &obs).is_none());
    }
}
