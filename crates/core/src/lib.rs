//! HQS — an elimination-based DQBF solver.
//!
//! This crate is a from-scratch reproduction of the solver described in
//! K. Gitina, R. Wimmer, S. Reimer, M. Sauer, C. Scholl, B. Becker:
//! *Solving DQBF Through Quantifier Elimination*, DATE 2015.
//!
//! A dependency quantified Boolean formula (DQBF)
//!
//! ```text
//! ∀x₁ … ∀xₙ ∃y₁(D_{y₁}) … ∃yₘ(D_{yₘ}) : φ
//! ```
//!
//! generalises QBF by annotating each existential variable with an explicit
//! *dependency set* `D_y ⊆ {x₁,…,xₙ}`; deciding DQBF is NEXPTIME-complete.
//! HQS decides a DQBF by:
//!
//! 1. **CNF preprocessing** (§III-C): unit propagation, universal
//!    reduction, equivalent-variable substitution and Tseitin gate
//!    detection ([`preprocess`]).
//! 2. Building an **AIG** for the matrix and composing detected gates back
//!    in ([`build`]).
//! 3. Computing the **dependency graph** (Definition 4) and, via a partial
//!    **MaxSAT** problem (Equations 1–2), a *minimum* set of universal
//!    variables whose elimination linearises the prefix ([`depgraph`],
//!    [`elimset`]).
//! 4. A main loop that interleaves syntactic **unit/pure elimination**
//!    (Theorems 5–6), **existential elimination** (Theorem 2) and
//!    **universal elimination** (Theorem 1) until the dependency graph is
//!    acyclic ([`solver`], [`elim`]).
//! 5. Handing the remaining **QBF** — still an AIG — to the
//!    elimination-based QBF solver of [`hqs_qbf`] (the AIGSOLVE role).
//!
//! # Examples
//!
//! ```
//! use hqs_core::{Dqbf, Outcome, Session};
//! use hqs_base::Lit;
//!
//! // ∀x₁∀x₂ ∃y₁(x₁) ∃y₂(x₂) : (y₁↔x₁) ∧ (y₂↔x₂)   — satisfiable.
//! let mut dqbf = Dqbf::new();
//! let x1 = dqbf.add_universal();
//! let x2 = dqbf.add_universal();
//! let y1 = dqbf.add_existential([x1]);
//! let y2 = dqbf.add_existential([x2]);
//! for (x, y) in [(x1, y1), (x2, y2)] {
//!     dqbf.add_clause([Lit::positive(x), Lit::negative(y)]);
//!     dqbf.add_clause([Lit::negative(x), Lit::positive(y)]);
//! }
//! let mut session = Session::builder().build().expect("default config is valid");
//! assert_eq!(session.solve(&dqbf), Outcome::Sat);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
mod check;
mod config;
pub mod depgraph;
mod dqbf;
pub mod elim;
pub mod elimset;
pub mod expand;
mod outcome;
pub mod preprocess;
pub mod random;
pub mod refute;
mod session;
pub mod skolem;
pub mod solver;
mod warm;

pub use config::{ConfigError, HqsConfigBuilder};
pub use dqbf::Dqbf;
pub use hqs_base::InvariantViolation;
pub use outcome::Outcome;
pub use refute::{extract_refutation, InstanceBinding, RefutationCertificate};
pub use session::{Session, SessionBuilder};
pub use skolem::{extract_skolem, SkolemCertificate, SkolemFunction};
#[cfg(test)]
pub(crate) use solver::HqsSolver;
pub use solver::{
    CertifiedOutcome, CertifyError, DqbfResult, ElimStrategy, HqsConfig, HqsStats, QbfBackend,
};
pub use warm::{canonical_formula_hash, WarmCache};
