//! Dependency graphs (Definition 4) and prefix linearisation (Theorem 3).
//!
//! The dependency graph `G_ψ` has the existential variables as vertices and
//! an edge `y_i → y_ℓ` iff `D_{y_i} ⊄ D_{y_ℓ}` — `y_i` depends on some
//! universal `y_ℓ` does not. Theorem 3: a DQBF has an equivalent QBF prefix
//! iff `G_ψ` is acyclic, and by Theorem 4 acyclicity reduces to checking
//! that all dependency sets are pairwise ⊆-comparable.

use hqs_base::{Var, VarSet};
use hqs_cnf::Quantifier;
use hqs_qbf::Prefix;

/// The dependency graph of a DQBF prefix.
///
/// Construct one with [`DepGraph::new`] from the existential variables and
/// their dependency sets.
///
/// # Examples
///
/// ```
/// use hqs_base::{Var, VarSet};
/// use hqs_core::depgraph::DepGraph;
///
/// // Example 1/3 of the paper: D_{y1} = {x1}, D_{y2} = {x2} — a 2-cycle.
/// let x1 = Var::new(0);
/// let x2 = Var::new(1);
/// let deps = vec![
///     (Var::new(2), [x1].into_iter().collect::<VarSet>()),
///     (Var::new(3), [x2].into_iter().collect::<VarSet>()),
/// ];
/// let graph = DepGraph::new(&deps);
/// assert!(graph.is_cyclic());
/// assert_eq!(graph.binary_cycles().len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct DepGraph {
    vars: Vec<Var>,
    deps: Vec<VarSet>,
}

impl DepGraph {
    /// Builds the graph for the given `(existential, dependency set)`
    /// pairs.
    #[must_use]
    pub fn new(existentials: &[(Var, VarSet)]) -> Self {
        DepGraph {
            vars: existentials.iter().map(|(v, _)| *v).collect(),
            deps: existentials.iter().map(|(_, d)| d.clone()).collect(),
        }
    }

    /// Returns the edge relation: `y_i → y_j` iff `D_{y_i} ⊄ D_{y_j}`.
    #[must_use]
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        from != to && !self.deps[from].is_subset(&self.deps[to])
    }

    /// Theorem 4: the graph is cyclic iff two dependency sets are
    /// ⊆-incomparable.
    #[must_use]
    pub fn is_cyclic(&self) -> bool {
        for i in 0..self.deps.len() {
            for j in (i + 1)..self.deps.len() {
                if !self.deps[i].is_subset(&self.deps[j]) && !self.deps[j].is_subset(&self.deps[i])
                {
                    return true;
                }
            }
        }
        false
    }

    /// The set `C_ψ` of binary cycles (Eq. 1): unordered pairs of
    /// existentials with ⊆-incomparable dependency sets, returned with
    /// their difference sets `(D_y \ D_y', D_y' \ D_y)`.
    #[must_use]
    pub fn binary_cycles(&self) -> Vec<BinaryCycle> {
        let mut cycles = Vec::new();
        for i in 0..self.deps.len() {
            for j in (i + 1)..self.deps.len() {
                if !self.deps[i].is_subset(&self.deps[j]) && !self.deps[j].is_subset(&self.deps[i])
                {
                    cycles.push(BinaryCycle {
                        first: self.vars[i],
                        second: self.vars[j],
                        first_only: self.deps[i].difference(&self.deps[j]),
                        second_only: self.deps[j].difference(&self.deps[i]),
                    });
                }
            }
        }
        cycles
    }
}

/// One binary cycle of the dependency graph: a pair of existentials with
/// incomparable dependency sets and their set differences.
#[derive(Clone, Debug)]
pub struct BinaryCycle {
    /// The first existential of the pair.
    pub first: Var,
    /// The second existential of the pair.
    pub second: Var,
    /// `D_first \ D_second`.
    pub first_only: VarSet,
    /// `D_second \ D_first`.
    pub second_only: VarSet,
}

/// Builds an equivalent QBF prefix for an acyclic DQBF prefix, following
/// the constructive proof of Theorem 3.
///
/// Existentials are grouped into blocks `Y_1, Y_2, …` of equal dependency
/// sets in ⊆-ascending order; universal blocks `X_i` interleave so that the
/// variables of `Y_i` see exactly their dependency set on the left.
/// Universals in no dependency set form a final innermost universal block.
///
/// Returns `None` if the dependency sets are not pairwise comparable
/// (i.e. the graph is cyclic and no equivalent QBF prefix exists).
#[must_use]
pub fn linearise(universals: &[Var], existentials: &[(Var, VarSet)]) -> Option<Prefix> {
    let graph = DepGraph::new(existentials);
    if graph.is_cyclic() {
        return None;
    }
    // Sort existentials by dependency-set size; equal sets are adjacent.
    // Pairwise comparability makes size order a linearisation of ⊆.
    let mut order: Vec<usize> = (0..existentials.len()).collect();
    order.sort_by_key(|&i| existentials[i].1.len());

    let mut prefix = Prefix::new();
    let mut placed = VarSet::new();
    let mut index = 0;
    while index < order.len() {
        let deps = &existentials[order[index]].1;
        // Universals required before this block and not placed yet.
        let new_universals: Vec<Var> = deps.difference(&placed).iter().collect();
        placed.union_with(deps);
        prefix.push_block(Quantifier::Universal, new_universals);
        let mut block_vars = Vec::new();
        while index < order.len() && existentials[order[index]].1 == *deps {
            block_vars.push(existentials[order[index]].0);
            index += 1;
        }
        prefix.push_block(Quantifier::Existential, block_vars);
    }
    // Trailing universals nobody depends on.
    let rest: Vec<Var> = universals
        .iter()
        .copied()
        .filter(|&x| !placed.contains(x))
        .collect();
    prefix.push_block(Quantifier::Universal, rest);
    Some(prefix)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(vars: &[u32]) -> VarSet {
        vars.iter().map(|&i| Var::new(i)).collect()
    }

    /// Example 3 / Fig. 2: D_{y1}={x1}, D_{y2}={x2} has a cycle.
    #[test]
    fn paper_example_3_cycle() {
        let deps = vec![(Var::new(2), set(&[0])), (Var::new(3), set(&[1]))];
        let g = DepGraph::new(&deps);
        assert!(g.is_cyclic());
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        let cycles = g.binary_cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].first_only, set(&[0]));
        assert_eq!(cycles[0].second_only, set(&[1]));
        assert!(linearise(&[Var::new(0), Var::new(1)], &deps).is_none());
    }

    #[test]
    fn nested_dependencies_are_acyclic() {
        let deps = vec![
            (Var::new(3), set(&[0])),
            (Var::new(4), set(&[0, 1])),
            (Var::new(5), set(&[0, 1, 2])),
        ];
        let g = DepGraph::new(&deps);
        assert!(!g.is_cyclic());
        assert!(g.binary_cycles().is_empty());
        // y5 → y4 → y3 edges exist (superset direction), but no cycle.
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(1, 2));
    }

    #[test]
    fn linearise_builds_interleaved_prefix() {
        let universals = [Var::new(0), Var::new(1), Var::new(2)];
        let existentials = vec![(Var::new(3), set(&[0])), (Var::new(4), set(&[0, 1]))];
        let prefix = linearise(&universals, &existentials).unwrap();
        // Expected: ∀x0 ∃y3 ∀x1 ∃y4 ∀x2.
        let blocks = prefix.blocks();
        assert_eq!(blocks.len(), 5);
        assert_eq!(blocks[0].quantifier, Quantifier::Universal);
        assert_eq!(blocks[0].vars, vec![Var::new(0)]);
        assert_eq!(blocks[1].vars, vec![Var::new(3)]);
        assert_eq!(blocks[2].vars, vec![Var::new(1)]);
        assert_eq!(blocks[3].vars, vec![Var::new(4)]);
        assert_eq!(blocks[4].vars, vec![Var::new(2)]);
    }

    #[test]
    fn equal_dependency_sets_share_a_block() {
        let universals = [Var::new(0)];
        let existentials = vec![(Var::new(1), set(&[0])), (Var::new(2), set(&[0]))];
        let prefix = linearise(&universals, &existentials).unwrap();
        assert_eq!(prefix.num_blocks(), 2);
        assert_eq!(prefix.blocks()[1].vars.len(), 2);
    }

    #[test]
    fn empty_dependency_block_is_outermost() {
        let universals = [Var::new(0)];
        let existentials = vec![(Var::new(1), VarSet::new()), (Var::new(2), set(&[0]))];
        let prefix = linearise(&universals, &existentials).unwrap();
        let blocks = prefix.blocks();
        assert_eq!(blocks[0].quantifier, Quantifier::Existential);
        assert_eq!(blocks[0].vars, vec![Var::new(1)]);
    }

    #[test]
    fn no_existentials_linearises_to_universal_block() {
        let prefix = linearise(&[Var::new(0), Var::new(1)], &[]).unwrap();
        assert_eq!(prefix.num_blocks(), 1);
        assert_eq!(prefix.blocks()[0].quantifier, Quantifier::Universal);
    }

    /// Property: linearise succeeds iff the graph is acyclic, and when it
    /// succeeds every existential sees exactly its dependency set to the
    /// left.
    #[test]
    fn linearisation_respects_dependencies() {
        use hqs_base::Rng;
        let mut rng = Rng::seed_from_u64(33);
        for _ in 0..300 {
            let nu = rng.gen_range(1..=5u32);
            let ne = rng.gen_range(1..=4usize);
            let universals: Vec<Var> = (0..nu).map(Var::new).collect();
            let existentials: Vec<(Var, VarSet)> = (0..ne)
                .map(|i| {
                    let deps: VarSet = universals
                        .iter()
                        .copied()
                        .filter(|_| rng.gen_bool(0.5))
                        .collect();
                    (Var::new(nu + i as u32), deps)
                })
                .collect();
            let graph = DepGraph::new(&existentials);
            match linearise(&universals, &existentials) {
                None => assert!(graph.is_cyclic()),
                Some(prefix) => {
                    assert!(!graph.is_cyclic());
                    // Walk the prefix, tracking universals seen so far.
                    let mut seen = VarSet::new();
                    for block in prefix.blocks() {
                        match block.quantifier {
                            Quantifier::Universal => {
                                seen.extend(block.vars.iter().copied());
                            }
                            Quantifier::Existential => {
                                for &y in &block.vars {
                                    let deps =
                                        &existentials.iter().find(|(v, _)| *v == y).unwrap().1;
                                    assert_eq!(
                                        *deps, seen,
                                        "existential {y} must see exactly its deps"
                                    );
                                }
                            }
                        }
                    }
                    // All universals placed exactly once.
                    let placed: Vec<Var> = prefix
                        .iter_vars()
                        .filter(|&(_, q)| q == Quantifier::Universal)
                        .map(|(v, _)| v)
                        .collect();
                    assert_eq!(placed.len(), universals.len());
                }
            }
        }
    }
}
