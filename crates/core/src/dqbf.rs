//! The DQBF data model (Definitions 1–2 of the paper).

use hqs_base::{Lit, Var, VarSet};
use hqs_cnf::{Clause, Cnf, DqdimacsFile};
use std::collections::HashMap;
use std::fmt;

/// A dependency quantified Boolean formula
/// `∀x₁…∀xₙ ∃y₁(D_{y₁})…∃yₘ(D_{yₘ}) : φ` with a CNF matrix.
///
/// Variables are allocated through [`add_universal`](Dqbf::add_universal)
/// and [`add_existential`](Dqbf::add_existential); the matrix may also
/// mention *free* variables, which are implicitly treated as existentials
/// with empty dependency sets (the DQDIMACS convention).
///
/// # Examples
///
/// ```
/// use hqs_base::Lit;
/// use hqs_core::Dqbf;
///
/// // Example 1 of the paper: ∀x₁∀x₂ ∃y₁(x₁) ∃y₂(x₂) : φ
/// let mut dqbf = Dqbf::new();
/// let x1 = dqbf.add_universal();
/// let x2 = dqbf.add_universal();
/// let y1 = dqbf.add_existential([x1]);
/// let _y2 = dqbf.add_existential([x2]);
/// dqbf.add_clause([Lit::positive(y1), Lit::positive(x2)]);
/// assert_eq!(dqbf.universals().len(), 2);
/// assert!(dqbf.dependencies(y1).unwrap().contains(x1));
/// ```
#[derive(Clone, Default)]
pub struct Dqbf {
    pub(crate) num_vars: u32,
    pub(crate) universals: Vec<Var>,
    pub(crate) universal_set: VarSet,
    pub(crate) existentials: Vec<Var>,
    pub(crate) deps: HashMap<Var, VarSet>,
    pub(crate) matrix: Cnf,
}

impl Dqbf {
    /// Creates an empty DQBF (no variables, empty — trivially true —
    /// matrix).
    #[must_use]
    pub fn new() -> Self {
        Dqbf::default()
    }

    /// Allocates a fresh universal variable.
    pub fn add_universal(&mut self) -> Var {
        let var = self.fresh_var();
        self.universals.push(var);
        self.universal_set.insert(var);
        var
    }

    /// Allocates a fresh existential variable with dependency set `deps`.
    ///
    /// # Panics
    ///
    /// Panics if some dependency is not a universal variable of this
    /// formula.
    pub fn add_existential<I: IntoIterator<Item = Var>>(&mut self, deps: I) -> Var {
        let deps: VarSet = deps.into_iter().collect();
        assert!(
            deps.is_subset(&self.universal_set),
            "dependencies must be universal variables"
        );
        let var = self.fresh_var();
        self.existentials.push(var);
        self.deps.insert(var, deps);
        var
    }

    /// Allocates a fresh existential depending on **all** current
    /// universals (the QBF-style innermost existential).
    pub fn add_existential_innermost(&mut self) -> Var {
        let deps = self.universal_set.clone();
        let var = self.fresh_var();
        self.existentials.push(var);
        self.deps.insert(var, deps);
        var
    }

    fn fresh_var(&mut self) -> Var {
        let var = Var::new(self.num_vars);
        self.num_vars += 1;
        self.matrix.ensure_num_vars(self.num_vars);
        var
    }

    /// Adds a clause to the matrix.
    ///
    /// Free variables (never quantified) are allowed and treated as
    /// empty-dependency existentials by the solvers.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        self.matrix.add_clause(Clause::from_lits(lits));
        self.num_vars = self.num_vars.max(self.matrix.num_vars());
    }

    /// Returns the number of allocated variables (quantified or free).
    #[must_use]
    pub fn num_vars(&self) -> u32 {
        self.num_vars.max(self.matrix.num_vars())
    }

    /// The universal variables, in prefix order.
    #[must_use]
    pub fn universals(&self) -> &[Var] {
        &self.universals
    }

    /// The existential variables, in prefix order.
    #[must_use]
    pub fn existentials(&self) -> &[Var] {
        &self.existentials
    }

    /// Returns `true` if `var` is universal.
    #[must_use]
    pub fn is_universal(&self, var: Var) -> bool {
        self.universal_set.contains(var)
    }

    /// Returns `true` if `var` is existential.
    #[must_use]
    pub fn is_existential(&self, var: Var) -> bool {
        self.deps.contains_key(&var)
    }

    /// The dependency set `D_y` of existential `y`, or `None` if `y` is not
    /// existential.
    #[must_use]
    pub fn dependencies(&self, y: Var) -> Option<&VarSet> {
        self.deps.get(&y)
    }

    /// The matrix.
    #[must_use]
    pub fn matrix(&self) -> &Cnf {
        &self.matrix
    }

    /// Mutable access to the matrix (used by preprocessing).
    pub fn matrix_mut(&mut self) -> &mut Cnf {
        &mut self.matrix
    }

    /// Free variables: in the matrix support but not quantified.
    #[must_use]
    pub fn free_vars(&self) -> Vec<Var> {
        self.matrix
            .support()
            .iter()
            .filter(|&v| !self.is_universal(v) && !self.is_existential(v))
            .collect()
    }

    /// Promotes every free variable to an existential with empty
    /// dependency set (the DQDIMACS convention); returns how many were
    /// promoted.
    pub fn bind_free_vars(&mut self) -> usize {
        let free = self.free_vars();
        for &v in &free {
            self.existentials.push(v);
            self.deps.insert(v, VarSet::new());
        }
        self.debug_audit("after bind_free_vars");
        free.len()
    }

    /// `E_x`: the existential variables depending on universal `x`
    /// (Theorem 1).
    #[must_use]
    pub fn depending_on(&self, x: Var) -> Vec<Var> {
        self.existentials
            .iter()
            .copied()
            .filter(|y| self.deps[y].contains(x))
            .collect()
    }

    /// Builds a DQBF from a parsed DQDIMACS file. Free matrix variables are
    /// bound as empty-dependency existentials.
    #[must_use]
    pub fn from_file(file: &DqdimacsFile) -> Self {
        let mut dqbf = Dqbf {
            num_vars: file.matrix.num_vars(),
            universals: file.universals.clone(),
            universal_set: file.universals.iter().copied().collect(),
            existentials: file.existentials.iter().map(|&(v, _)| v).collect(),
            deps: file.existentials.iter().cloned().collect(),
            matrix: file.matrix.clone(),
        };
        dqbf.bind_free_vars();
        dqbf.debug_audit("after from_file");
        dqbf
    }

    /// Builds a DQBF from raw parts **without** binding free matrix
    /// variables (the preprocessor uses this: detected gate outputs stay
    /// free until they are composed into the AIG).
    pub(crate) fn from_parts_raw(
        universals: Vec<Var>,
        existentials: Vec<(Var, VarSet)>,
        matrix: Cnf,
    ) -> Self {
        let universal_set: VarSet = universals.iter().copied().collect();
        let max_quantified = universals
            .iter()
            .map(|v| v.index())
            .chain(existentials.iter().map(|(v, _)| v.index()))
            .max()
            .map_or(0, |i| i + 1);
        Dqbf {
            num_vars: matrix.num_vars().max(max_quantified),
            universals,
            universal_set,
            existentials: existentials.iter().map(|&(v, _)| v).collect(),
            deps: existentials.into_iter().collect(),
            matrix,
        }
    }

    /// Renders this DQBF as a DQDIMACS file structure.
    #[must_use]
    pub fn to_file(&self) -> DqdimacsFile {
        DqdimacsFile {
            universals: self.universals.clone(),
            existentials: self
                .existentials
                .iter()
                .map(|&y| (y, self.deps[&y].clone()))
                .collect(),
            matrix: self.matrix.clone(),
        }
    }

    /// Returns `true` if every existential depends on every universal
    /// (i.e. the formula is a plain ∀∃ QBF).
    #[must_use]
    pub fn has_total_dependencies(&self) -> bool {
        self.existentials
            .iter()
            .all(|y| self.deps[y] == self.universal_set)
    }

    /// Returns `true` if the dependency sets are pairwise ⊆-comparable —
    /// i.e. an equivalent linearly ordered QBF prefix exists (Theorem 3).
    #[must_use]
    pub fn is_qbf_expressible(&self) -> bool {
        let deps: Vec<(Var, VarSet)> = self
            .existentials
            .iter()
            .map(|&y| (y, self.deps[&y].clone()))
            .collect();
        !crate::depgraph::DepGraph::new(&deps).is_cyclic()
    }

    /// Builds the equivalent QDIMACS file when the prefix linearises
    /// (Theorem 3); returns `None` for genuinely non-linear dependencies.
    ///
    /// Free matrix variables become outermost existentials, matching the
    /// QDIMACS convention.
    #[must_use]
    pub fn linearised_qbf(&self) -> Option<hqs_cnf::QdimacsFile> {
        let mut bound = self.clone();
        bound.bind_free_vars();
        let deps: Vec<(Var, VarSet)> = bound
            .existentials
            .iter()
            .map(|&y| (y, bound.deps[&y].clone()))
            .collect();
        let prefix = crate::depgraph::linearise(&bound.universals, &deps)?;
        Some(hqs_cnf::QdimacsFile {
            blocks: prefix.blocks().to_vec(),
            matrix: bound.matrix.clone(),
        })
    }
}

impl fmt::Debug for Dqbf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "∀{{")?;
        for (i, x) in self.universals.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, "}} ")?;
        for y in &self.existentials {
            write!(f, "∃{y}({:?}) ", self.deps[y])?;
        }
        write!(f, ": {} clauses", self.matrix.clauses().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqs_cnf::dimacs;

    #[test]
    fn construction_and_queries() {
        let mut d = Dqbf::new();
        let x1 = d.add_universal();
        let x2 = d.add_universal();
        let y1 = d.add_existential([x1]);
        let y2 = d.add_existential_innermost();
        assert!(d.is_universal(x1) && !d.is_existential(x1));
        assert!(d.is_existential(y1) && !d.is_universal(y1));
        assert_eq!(d.dependencies(y1).unwrap().len(), 1);
        assert_eq!(d.dependencies(y2).unwrap().len(), 2);
        assert_eq!(d.depending_on(x1), vec![y1, y2]);
        assert_eq!(d.depending_on(x2), vec![y2]);
        assert!(!d.has_total_dependencies());
    }

    #[test]
    #[should_panic(expected = "dependencies must be universal")]
    fn dependency_on_existential_panics() {
        let mut d = Dqbf::new();
        let x = d.add_universal();
        let y = d.add_existential([x]);
        let _ = d.add_existential([y]);
    }

    #[test]
    fn free_vars_are_bound() {
        let mut d = Dqbf::new();
        let x = d.add_universal();
        d.add_clause([Lit::positive(x), Lit::positive(Var::new(5))]);
        assert_eq!(d.free_vars(), vec![Var::new(5)]);
        assert_eq!(d.bind_free_vars(), 1);
        assert!(d.is_existential(Var::new(5)));
        assert!(d.dependencies(Var::new(5)).unwrap().is_empty());
        assert!(d.free_vars().is_empty());
    }

    #[test]
    fn file_roundtrip() {
        let text = "p cnf 4 2\na 1 2 0\nd 3 1 0\nd 4 2 0\n3 1 0\n-4 2 0\n";
        let file = dimacs::parse_dqdimacs(text).unwrap();
        let dqbf = Dqbf::from_file(&file);
        assert_eq!(dqbf.universals().len(), 2);
        assert_eq!(dqbf.existentials().len(), 2);
        let back = dqbf.to_file();
        let rendered = dimacs::write_dqdimacs(&back);
        let reparsed = dimacs::parse_dqdimacs(&rendered).unwrap();
        assert_eq!(reparsed.universals, file.universals);
        assert_eq!(reparsed.existentials, file.existentials);
    }

    #[test]
    fn qbf_expressibility_and_linearisation() {
        // Example 1: cyclic, not expressible.
        let mut d = Dqbf::new();
        let x1 = d.add_universal();
        let x2 = d.add_universal();
        let _y1 = d.add_existential([x1]);
        let _y2 = d.add_existential([x2]);
        assert!(!d.is_qbf_expressible());
        assert!(d.linearised_qbf().is_none());
        // Nested dependencies: expressible.
        let mut d = Dqbf::new();
        let x1 = d.add_universal();
        let x2 = d.add_universal();
        let y1 = d.add_existential([x1]);
        let _y2 = d.add_existential([x1, x2]);
        d.add_clause([Lit::positive(y1), Lit::positive(x2)]);
        assert!(d.is_qbf_expressible());
        let file = d.linearised_qbf().expect("expressible");
        assert!(file.blocks.len() >= 3);
        // The linearised QBF has the same truth value.
        let qbf_result = hqs_qbf::QbfSolver::new().solve_file(&file);
        let dqbf_result = crate::HqsSolver::new().run(&d);
        assert_eq!(
            matches!(qbf_result, hqs_qbf::QbfResult::Sat),
            matches!(dqbf_result, crate::DqbfResult::Sat)
        );
    }

    #[test]
    fn total_dependencies_detection() {
        let mut d = Dqbf::new();
        let x1 = d.add_universal();
        let x2 = d.add_universal();
        let _y = d.add_existential([x1, x2]);
        assert!(d.has_total_dependencies());
        let _z = d.add_existential([x1]);
        assert!(!d.has_total_dependencies());
    }
}
