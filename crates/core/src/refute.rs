//! Refutation certificates for unsatisfiable DQBFs.
//!
//! The SAT side of certification returns Skolem functions
//! ([`crate::skolem`]); this module supplies the UNSAT side. A DQBF is
//! unsatisfied iff its full universal expansion
//! ([`expand_to_cnf`]) is propositionally
//! unsatisfiable, so a refutation certificate consists of
//!
//! 1. the **expansion trace**: which instance variable stands for which
//!    `(existential, dependency-restriction)` pair, making the expansion
//!    CNF reproducible and auditable, and
//! 2. a **DRAT proof** of that CNF's unsatisfiability, emitted by the
//!    proof-logging CDCL solver (`hqs-sat`) and accepted by the
//!    *independent* checker in `hqs-proof`.
//!
//! [`RefutationCertificate::verify`] mirrors
//! [`SkolemCertificate::verify`](crate::skolem::SkolemCertificate::verify):
//! it recomputes the expansion from the formula alone, validates the trace
//! against it, and runs the DRAT proof through `hqs-proof`'s backward
//! checker — at no point trusting the solver that produced the verdict.

use crate::expand::{expand_to_cnf, MAX_EXPANSION_UNIVERSALS};
use crate::Dqbf;
use hqs_base::Var;
use hqs_proof::{check_proof, parse_text_drat, CheckMode};
use hqs_sat::{ProofBuffer, SolveResult, Solver, TextDratLogger};

/// One row of the expansion trace: the instance variable standing for an
/// existential under a restriction of its dependency set.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct InstanceBinding {
    /// The existential (or bound free) variable of the original formula.
    pub existential: Var,
    /// The restriction of the universal assignment to the dependency set,
    /// packed in dependency-iteration order (bit `i` = value of the `i`-th
    /// dependency).
    pub restriction: u64,
    /// The propositional variable representing this instance in the
    /// expansion CNF.
    pub instance: Var,
}

/// A machine-checkable refutation of a DQBF.
///
/// Produced by [`extract_refutation`]; validated by
/// [`RefutationCertificate::verify`], which depends only on the formula,
/// the certificate, and the independent `hqs-proof` checker.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RefutationCertificate {
    /// Number of universal variables of the (free-bound) formula — the
    /// expansion enumerates `2^num_universals` rows.
    pub num_universals: usize,
    /// The expansion trace, sorted by `(existential, restriction)`.
    pub bindings: Vec<InstanceBinding>,
    /// The DRAT refutation of the expansion CNF, in text format.
    pub drat: String,
}

impl RefutationCertificate {
    /// Verifies the certificate against `dqbf` without trusting the
    /// producing solver: recomputes the universal expansion, checks that
    /// the recorded trace matches it exactly, and validates the DRAT
    /// proof with the independent checker.
    #[must_use]
    pub fn verify(&self, dqbf: &Dqbf) -> bool {
        let mut bound = dqbf.clone();
        bound.bind_free_vars();
        if bound.universals().len() > MAX_EXPANSION_UNIVERSALS
            || bound.universals().len() != self.num_universals
        {
            return false;
        }
        let (cnf, instances) = expand_to_cnf(&bound);
        // The trace must be a faithful image of the expansion's instance
        // map: same size, and every row present with the same variable.
        if self.bindings.len() != instances.len() {
            return false;
        }
        for binding in &self.bindings {
            if instances.get(&(binding.existential, binding.restriction)) != Some(&binding.instance)
            {
                return false;
            }
        }
        let Ok(proof) = parse_text_drat(&self.drat) else {
            return false;
        };
        check_proof(&cnf, &proof, CheckMode::Backward).is_ok()
    }
}

/// Extracts a refutation certificate for an unsatisfiable DQBF by solving
/// its full universal expansion with proof logging; returns `None` when
/// the expansion is satisfiable (the formula is satisfied) or when the
/// emitted proof does not survive the independent checker.
///
/// # Panics
///
/// Panics on formulas beyond
/// [`MAX_EXPANSION_UNIVERSALS`]
/// universal variables, like the expansion itself.
#[must_use]
pub fn extract_refutation(dqbf: &Dqbf) -> Option<RefutationCertificate> {
    let mut bound = dqbf.clone();
    bound.bind_free_vars();
    let (cnf, instances) = expand_to_cnf(&bound);
    let buffer = ProofBuffer::new();
    let mut solver = Solver::builder()
        .proof_logger(Box::new(TextDratLogger::new(buffer.clone())))
        .build()
        .expect("default SAT configuration is valid");
    solver.ensure_vars(cnf.num_vars());
    solver.add_cnf(&cnf);
    if solver.solve(&[]) != SolveResult::Unsat || solver.proof_had_error() {
        return None;
    }
    let drat = String::from_utf8(buffer.contents()).ok()?;
    let mut bindings: Vec<InstanceBinding> = instances
        .iter()
        .map(|(&(existential, restriction), &instance)| InstanceBinding {
            existential,
            restriction,
            instance,
        })
        .collect();
    bindings.sort_unstable();
    let certificate = RefutationCertificate {
        num_universals: bound.universals().len(),
        bindings,
        drat,
    };
    // Self-check before handing the certificate out: a rejected proof
    // means a solver/logger bug, not an unsatisfiable formula.
    certificate.verify(dqbf).then_some(certificate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqs_base::Lit;

    /// ∀x₁∀x₂ ∃y(x₁) with matrix y↔x₂: classic dependency-mismatch UNSAT.
    fn wrong_dependency() -> Dqbf {
        let mut d = Dqbf::new();
        let _x1 = d.add_universal();
        let x2 = d.add_universal();
        let y = d.add_existential([Var::new(0)]);
        d.add_clause([Lit::positive(x2), Lit::negative(y)]);
        d.add_clause([Lit::negative(x2), Lit::positive(y)]);
        d
    }

    #[test]
    fn unsat_formula_yields_a_verifying_certificate() {
        let d = wrong_dependency();
        let cert = extract_refutation(&d).expect("unsatisfiable");
        assert_eq!(cert.num_universals, 2);
        assert!(!cert.bindings.is_empty());
        assert!(cert.verify(&d));
    }

    #[test]
    fn sat_formula_has_no_refutation() {
        let mut d = Dqbf::new();
        let x = d.add_universal();
        let y = d.add_existential([x]);
        d.add_clause([Lit::positive(x), Lit::negative(y)]);
        d.add_clause([Lit::negative(x), Lit::positive(y)]);
        assert!(extract_refutation(&d).is_none());
    }

    #[test]
    fn tampered_trace_is_rejected() {
        let d = wrong_dependency();
        let cert = extract_refutation(&d).unwrap();
        // Flip the instance variable of one trace row.
        let mut tampered = cert.clone();
        let wrong = Var::new(tampered.bindings[0].instance.index() + 1000);
        tampered.bindings[0].instance = wrong;
        assert!(!tampered.verify(&d));
        // Drop a trace row.
        let mut tampered = cert.clone();
        tampered.bindings.pop();
        assert!(!tampered.verify(&d));
        // Claim a different universal count.
        let mut tampered = cert;
        tampered.num_universals = 1;
        assert!(!tampered.verify(&d));
    }

    #[test]
    fn gutted_proof_is_rejected() {
        // The expansion of wrong_dependency() collapses to conflicting
        // units, which the checker refutes with no proof steps at all; use
        // a formula whose expansion needs a real lemma instead:
        // ∃y∃z : (y∨z)(¬y∨z)(y∨¬z)(¬y∨¬z).
        let mut d = Dqbf::new();
        let y = d.add_existential([]);
        let z = d.add_existential([]);
        for (sy, sz) in [(true, true), (false, true), (true, false), (false, false)] {
            d.add_clause([Lit::new(y, !sy), Lit::new(z, !sz)]);
        }
        let cert = extract_refutation(&d).unwrap();
        // Keep only deletion lines: the refutation disappears.
        let mut tampered = cert.clone();
        tampered.drat = cert
            .drat
            .lines()
            .filter(|l| l.trim_start().starts_with('d'))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!tampered.verify(&d));
        // Unparseable proof text is rejected, not a panic.
        let mut tampered = cert;
        tampered.drat = "not a proof".to_string();
        assert!(!tampered.verify(&d));
    }

    #[test]
    fn certificate_against_the_wrong_formula_is_rejected() {
        let d = wrong_dependency();
        let cert = extract_refutation(&d).unwrap();
        // A formula with the right dependencies (SAT) must reject it.
        let mut d2 = Dqbf::new();
        let _x1 = d2.add_universal();
        let x2 = d2.add_universal();
        let y = d2.add_existential([x2]);
        d2.add_clause([Lit::positive(x2), Lit::negative(y)]);
        d2.add_clause([Lit::negative(x2), Lit::positive(y)]);
        assert!(!cert.verify(&d2));
    }

    #[test]
    fn empty_expansion_clause_needs_no_proof_steps() {
        // ∀x: x — the expansion contains the empty clause directly.
        let mut d = Dqbf::new();
        let x = d.add_universal();
        d.add_clause([Lit::positive(x)]);
        let cert = extract_refutation(&d).expect("unsatisfiable");
        assert!(cert.verify(&d));
    }
}
