//! The unified solver verdict.
//!
//! Every layer of the stack used to map its own result enum
//! ([`DqbfResult`], [`CertifiedOutcome`], the engine's job outcomes)
//! to exit codes and display strings independently. [`Outcome`] is the
//! single convergence point: all of them convert into it, and it alone
//! owns the QDIMACS exit-code convention.

use crate::solver::{CertifiedOutcome, DqbfResult};
use hqs_base::Exhaustion;
use std::fmt;

/// The verdict of a solve, independent of how it was produced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// The formula is satisfiable.
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
    /// No verdict: a resource limit or cancellation intervened.
    Unknown(Exhaustion),
}

impl Outcome {
    /// The process exit code for this verdict, following the QDIMACS
    /// convention the rest of the tooling (and the paper's evaluation
    /// scripts) expect: 10 = SAT, 20 = UNSAT, 30 = unknown.
    #[must_use]
    pub fn to_exit_code(self) -> i32 {
        match self {
            Outcome::Sat => 10,
            Outcome::Unsat => 20,
            Outcome::Unknown(_) => 30,
        }
    }

    /// The canonical lowercase answer word (`sat` / `unsat` /
    /// `unknown`), as printed in batch JSONL records.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Sat => "sat",
            Outcome::Unsat => "unsat",
            Outcome::Unknown(_) => "unknown",
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Sat => write!(f, "SATISFIABLE"),
            Outcome::Unsat => write!(f, "UNSATISFIABLE"),
            Outcome::Unknown(e) => write!(f, "UNKNOWN ({e})"),
        }
    }
}

impl From<DqbfResult> for Outcome {
    fn from(result: DqbfResult) -> Self {
        match result {
            DqbfResult::Sat => Outcome::Sat,
            DqbfResult::Unsat => Outcome::Unsat,
            DqbfResult::Limit(e) => Outcome::Unknown(e),
        }
    }
}

impl From<&CertifiedOutcome> for Outcome {
    fn from(outcome: &CertifiedOutcome) -> Self {
        match outcome {
            CertifiedOutcome::Sat(_) => Outcome::Sat,
            CertifiedOutcome::Unsat(_) => Outcome::Unsat,
            CertifiedOutcome::Limit(e) => Outcome::Unknown(*e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_qdimacs_convention() {
        assert_eq!(Outcome::Sat.to_exit_code(), 10);
        assert_eq!(Outcome::Unsat.to_exit_code(), 20);
        assert_eq!(Outcome::Unknown(Exhaustion::Timeout).to_exit_code(), 30);
    }

    #[test]
    fn conversions_preserve_the_verdict() {
        assert_eq!(Outcome::from(DqbfResult::Sat), Outcome::Sat);
        assert_eq!(Outcome::from(DqbfResult::Unsat), Outcome::Unsat);
        assert_eq!(
            Outcome::from(DqbfResult::Limit(Exhaustion::Memout)),
            Outcome::Unknown(Exhaustion::Memout)
        );
        assert_eq!(
            Outcome::from(&CertifiedOutcome::Limit(Exhaustion::Cancelled)),
            Outcome::Unknown(Exhaustion::Cancelled)
        );
    }

    #[test]
    fn display_and_answer_words() {
        assert_eq!(Outcome::Sat.to_string(), "SATISFIABLE");
        assert_eq!(Outcome::Unsat.as_str(), "unsat");
        assert_eq!(Outcome::Unknown(Exhaustion::Timeout).as_str(), "unknown");
    }
}
