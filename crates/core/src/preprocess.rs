//! CNF-level DQBF preprocessing (Section III-C of the paper).
//!
//! Before the matrix is turned into an AIG, HQS simplifies the CNF with
//! techniques adapted from QBF preprocessing:
//!
//! * **unit propagation** — an existential unit literal is assigned, a
//!   universal unit decides the formula unsatisfied;
//! * **universal reduction** — a universal literal is deleted from a
//!   clause when no existential literal of the clause depends on it
//!   (Balabanov et al.; empty clause ⇒ unsatisfied);
//! * **pure literals** (Lemma 2) — an existential pure literal is
//!   satisfied, a universal pure literal falsified;
//! * **equivalent variables** — `a ≡ b` pairs found in the binary
//!   clauses are substituted when the dependency sets allow it;
//! * **Tseitin gate detection** — AND/OR/XOR gate definitions (with
//!   arbitrarily negated inputs) are recognised, their defining clauses
//!   removed and the gate stored for direct composition into the AIG.
//!
//! The first four run in alternation until the CNF stabilises; gate
//! detection runs last (its output feeds [`crate::build`]).

use crate::Dqbf;
use hqs_base::{Assignment, Lit, TruthValue, Var, VarSet};
use hqs_cnf::{Clause, Cnf};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// The kind of a detected Tseitin gate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GateKind {
    /// `output ≡ inputs₁ ∧ … ∧ inputsₖ` (OR gates are ANDs by De Morgan).
    And,
    /// `output ≡ inputs₁ ⊕ inputs₂` (exactly two inputs).
    Xor,
}

/// A detected Tseitin-encoded gate: `output ≡ kind(inputs)`.
#[derive(Clone, Debug)]
pub struct Gate {
    /// The defined literal (its variable was existential and leaves the
    /// prefix; composition replaces it by the gate function).
    pub output: Lit,
    /// Input literals.
    pub inputs: Vec<Lit>,
    /// Gate kind.
    pub kind: GateKind,
}

/// Counters for one preprocessing run.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct PreprocessStats {
    /// Existential units propagated.
    pub units: u64,
    /// Universal literals deleted by universal reduction.
    pub universal_reductions: u64,
    /// Pure variables eliminated.
    pub pures: u64,
    /// Equivalent-variable substitutions performed.
    pub equivalences: u64,
    /// Clauses removed by subsumption.
    pub subsumed: u64,
    /// Literals removed by self-subsuming resolution.
    pub strengthened: u64,
    /// Gates detected and extracted.
    pub gates: u64,
}

/// Result of [`preprocess`].
///
/// `Clone` so the cross-request preprocessing cache
/// ([`crate::WarmCache`]) can hand out copies of a stored result.
#[derive(Clone, Debug)]
pub enum PreprocessResult {
    /// The preprocessor already decided the formula.
    Decided {
        /// The verdict.
        value: bool,
        /// Counters accumulated before the decision.
        stats: PreprocessStats,
    },
    /// The simplified formula, extracted gates and counters.
    Reduced {
        /// Simplified DQBF (gate-defining clauses removed, gate outputs
        /// dropped from the prefix).
        dqbf: Dqbf,
        /// Extracted gates in topological order (inputs before outputs).
        gates: Vec<Gate>,
        /// Counters.
        stats: PreprocessStats,
    },
}

/// Runs the full preprocessing pipeline on `dqbf`.
///
/// Free variables are bound as empty-dependency existentials first.
#[must_use]
pub fn preprocess(dqbf: &Dqbf) -> PreprocessResult {
    preprocess_with(dqbf, true)
}

/// Like [`preprocess`] with gate detection switchable (for ablation
/// studies).
#[must_use]
pub fn preprocess_with(dqbf: &Dqbf, detect_gates: bool) -> PreprocessResult {
    preprocess_full(dqbf, detect_gates, false)
}

/// The full pipeline with every knob: gate detection and the
/// subsumption/self-subsumption extension (the "more sophisticated
/// preprocessing" the paper's conclusion points to; off in the paper's
/// configuration).
#[must_use]
pub fn preprocess_full(dqbf: &Dqbf, detect_gates: bool, subsumption: bool) -> PreprocessResult {
    let mut state = State::new(dqbf);
    let mut stats = PreprocessStats::default();
    loop {
        let mut changed = false;
        match state.propagate_units(&mut stats) {
            StepOutcome::Decided(value) => return PreprocessResult::Decided { value, stats },
            StepOutcome::Changed => changed = true,
            StepOutcome::Unchanged => {}
        }
        match state.universal_reduction(&mut stats) {
            StepOutcome::Decided(value) => return PreprocessResult::Decided { value, stats },
            StepOutcome::Changed => changed = true,
            StepOutcome::Unchanged => {}
        }
        match state.pure_literals(&mut stats) {
            StepOutcome::Decided(value) => return PreprocessResult::Decided { value, stats },
            StepOutcome::Changed => changed = true,
            StepOutcome::Unchanged => {}
        }
        match state.equivalent_vars(&mut stats) {
            StepOutcome::Decided(value) => return PreprocessResult::Decided { value, stats },
            StepOutcome::Changed => changed = true,
            StepOutcome::Unchanged => {}
        }
        if subsumption {
            match state.subsumption(&mut stats) {
                StepOutcome::Decided(value) => return PreprocessResult::Decided { value, stats },
                StepOutcome::Changed => changed = true,
                StepOutcome::Unchanged => {}
            }
        }
        if !changed {
            break;
        }
    }
    if state.clauses.is_empty() {
        return PreprocessResult::Decided { value: true, stats };
    }
    // Assignments can leave duplicate clauses; gate detection indexes
    // clauses by content and needs them unique.
    let mut seen = HashSet::new();
    state
        .clauses
        .retain(|c| !c.is_tautology() && seen.insert(c.clone()));
    let gates = if detect_gates {
        state.detect_gates(&mut stats)
    } else {
        Vec::new()
    };
    PreprocessResult::Reduced {
        dqbf: state.into_dqbf(),
        gates,
        stats,
    }
}

enum StepOutcome {
    Decided(bool),
    Changed,
    Unchanged,
}

struct State {
    clauses: Vec<Clause>,
    num_vars: u32,
    universals: Vec<Var>,
    universal_set: VarSet,
    existentials: Vec<Var>,
    deps: HashMap<Var, VarSet>,
}

impl State {
    fn new(dqbf: &Dqbf) -> Self {
        let mut dqbf = dqbf.clone();
        dqbf.bind_free_vars();
        let mut clauses: Vec<Clause> = dqbf.matrix().clauses().to_vec();
        let mut seen = HashSet::new();
        clauses.retain(|c| !c.is_tautology() && seen.insert(c.clone()));
        State {
            clauses,
            num_vars: dqbf.num_vars(),
            universals: dqbf.universals().to_vec(),
            universal_set: dqbf.universals().iter().copied().collect(),
            existentials: dqbf.existentials().to_vec(),
            deps: dqbf
                .existentials()
                .iter()
                .map(|&y| (y, dqbf.dependencies(y).expect("existential").clone()))
                .collect(),
        }
    }

    fn is_universal(&self, v: Var) -> bool {
        self.universal_set.contains(v)
    }

    fn remove_var(&mut self, v: Var) {
        if self.universal_set.remove(v) {
            self.universals.retain(|&x| x != v);
            // analyze::allow(determinism): each dependency set is mutated independently — visit order cannot affect the result
            for deps in self.deps.values_mut() {
                deps.remove(v);
            }
        }
        if self.deps.remove(&v).is_some() {
            self.existentials.retain(|&y| y != v);
        }
    }

    /// Applies `assignment` to the clause set (drops satisfied clauses,
    /// removes falsified literals) and removes assigned vars from the
    /// prefix.
    fn apply_assignment(&mut self, assignment: &Assignment) {
        let mut next = Vec::with_capacity(self.clauses.len());
        for clause in self.clauses.drain(..) {
            match clause.evaluate(assignment) {
                TruthValue::True => {}
                _ => {
                    next.push(Clause::from_lits(
                        clause
                            .lits()
                            .iter()
                            .copied()
                            .filter(|&l| assignment.lit_value(l) == TruthValue::Unassigned),
                    ));
                }
            }
        }
        self.clauses = next;
        for (var, _) in assignment.iter() {
            self.remove_var(var);
        }
    }

    fn propagate_units(&mut self, stats: &mut PreprocessStats) -> StepOutcome {
        let mut changed = false;
        while let Some(unit) = self
            .clauses
            .iter()
            .find(|c| c.len() == 1)
            .map(|c| c.lits()[0])
        {
            if self.is_universal(unit.var()) {
                return StepOutcome::Decided(false);
            }
            // Existential (or bound-free): assign to satisfy.
            let mut a = Assignment::new();
            a.assign_lit(unit);
            self.apply_assignment(&a);
            stats.units += 1;
            changed = true;
            if self.clauses.iter().any(Clause::is_empty) {
                return StepOutcome::Decided(false);
            }
        }
        if changed {
            StepOutcome::Changed
        } else {
            StepOutcome::Unchanged
        }
    }

    fn universal_reduction(&mut self, stats: &mut PreprocessStats) -> StepOutcome {
        let mut changed = false;
        for clause in &mut self.clauses {
            // Union of dependencies of the clause's existential literals.
            let mut relevant = VarSet::new();
            for lit in clause.lits() {
                if let Some(deps) = self.deps.get(&lit.var()) {
                    relevant.union_with(deps);
                }
            }
            let reduced: Vec<Lit> = clause
                .lits()
                .iter()
                .copied()
                .filter(|l| {
                    let keep = !self.universal_set.contains(l.var()) || relevant.contains(l.var());
                    if !keep {
                        stats.universal_reductions += 1;
                    }
                    keep
                })
                .collect();
            if reduced.len() != clause.len() {
                changed = true;
                *clause = Clause::from_lits(reduced);
                if clause.is_empty() {
                    return StepOutcome::Decided(false);
                }
            }
        }
        if changed {
            StepOutcome::Changed
        } else {
            StepOutcome::Unchanged
        }
    }

    fn pure_literals(&mut self, stats: &mut PreprocessStats) -> StepOutcome {
        let mut pos = VarSet::new();
        let mut neg = VarSet::new();
        for clause in &self.clauses {
            for &lit in clause.lits() {
                if lit.is_positive() {
                    pos.insert(lit.var());
                } else {
                    neg.insert(lit.var());
                }
            }
        }
        let mut assignment = Assignment::new();
        let mut changed = false;
        let occurring = pos.union(&neg);
        for var in occurring.iter() {
            let is_pos_pure = pos.contains(var) && !neg.contains(var);
            let is_neg_pure = neg.contains(var) && !pos.contains(var);
            if !is_pos_pure && !is_neg_pure {
                continue;
            }
            let satisfy = is_pos_pure;
            // Existential: satisfy the literal. Universal: falsify it
            // (Theorem 5).
            let value = if self.is_universal(var) {
                !satisfy
            } else {
                satisfy
            };
            assignment.assign(var, value);
            stats.pures += 1;
            changed = true;
        }
        if changed {
            self.apply_assignment(&assignment);
            if self.clauses.iter().any(Clause::is_empty) {
                return StepOutcome::Decided(false);
            }
            StepOutcome::Changed
        } else {
            StepOutcome::Unchanged
        }
    }

    /// Subsumption and self-subsuming resolution (clause strengthening):
    /// a clause `c ⊆ d` deletes `d`; if `c` matches `d` except for one
    /// literal occurring with opposite phase, that literal is deleted from
    /// `d`. Both transformations preserve CNF equivalence, hence DQBF
    /// truth.
    fn subsumption(&mut self, stats: &mut PreprocessStats) -> StepOutcome {
        let mut changed = false;
        self.clauses.sort_by_key(Clause::len);
        let mut removed = vec![false; self.clauses.len()];
        for i in 0..self.clauses.len() {
            if removed[i] {
                continue;
            }
            #[allow(clippy::needless_range_loop)] // parallel index into `removed`
            for j in 0..self.clauses.len() {
                if i == j || removed[j] || self.clauses[i].len() > self.clauses[j].len() {
                    continue;
                }
                if self.clauses[i].subsumes(&self.clauses[j]) {
                    // With equal content keep the smaller index.
                    if self.clauses[i] == self.clauses[j] && i > j {
                        continue;
                    }
                    removed[j] = true;
                    stats.subsumed += 1;
                    changed = true;
                } else if let Some(victim) =
                    self_subsuming_literal(&self.clauses[i], &self.clauses[j])
                {
                    let strengthened = self.clauses[j].without(victim);
                    if strengthened.is_empty() {
                        return StepOutcome::Decided(false);
                    }
                    self.clauses[j] = strengthened;
                    stats.strengthened += 1;
                    changed = true;
                }
            }
        }
        if changed {
            let mut keep = removed.iter().map(|r| !r);
            self.clauses.retain(|_| keep.next().expect("length match"));
        }
        if changed {
            StepOutcome::Changed
        } else {
            StepOutcome::Unchanged
        }
    }

    /// Finds `a ≡ ±b` pairs among the binary clauses and substitutes where
    /// the dependency structure allows it (the replacement variable's
    /// dependency set must be contained in the replaced one's).
    fn equivalent_vars(&mut self, stats: &mut PreprocessStats) -> StepOutcome {
        // BTreeSet: substitution chains depend on visit order, so
        // iterate in literal order, not hash order.
        let binaries: BTreeSet<(Lit, Lit)> = self
            .clauses
            .iter()
            .filter(|c| c.len() == 2)
            .map(|c| (c.lits()[0], c.lits()[1]))
            .collect();
        for &(l0, l1) in &binaries {
            // (l0 ∨ l1) ∧ (¬l0 ∨ ¬l1) ⟺ l0 ≡ ¬l1.
            let mirror = sorted_pair(!l0, !l1);
            if !binaries.contains(&mirror) {
                continue;
            }
            let (a, b) = (l0, !l1); // a ≡ b
            let (va, vb) = (a.var(), b.var());
            if va == vb {
                continue;
            }
            // Decide replacement direction: keep the variable whose deps are
            // a subset. Universals have "infinite" deps unless the other
            // side depends on them.
            let keep_replace: Option<(Lit, Lit)> = match (self.deps.get(&va), self.deps.get(&vb)) {
                (Some(da), Some(db)) => {
                    if da.is_subset(db) {
                        Some((a, b)) // keep a, replace b by ±a
                    } else if db.is_subset(da) {
                        Some((b, a))
                    } else {
                        None
                    }
                }
                // universal ≡ existential: replace the existential if it
                // may depend on the universal.
                (None, Some(db)) if db.contains(va) => Some((a, b)),
                (Some(da), None) if da.contains(vb) => Some((b, a)),
                _ => None,
            };
            let Some((keep, replace)) = keep_replace else {
                continue;
            };
            // replace ≡ keep: substitute var(replace) by keep (sign-adjusted).
            let target = keep.xor_sign(replace.is_negative());
            let from = replace.var();
            for clause in &mut self.clauses {
                if clause.iter_vars().any(|v| v == from) {
                    *clause = Clause::from_lits(clause.lits().iter().map(|&l| {
                        if l.var() == from {
                            target.xor_sign(l.is_negative())
                        } else {
                            l
                        }
                    }));
                }
            }
            self.remove_var(from);
            stats.equivalences += 1;
            // Tautologies appear when both vars shared a clause.
            let mut seen = HashSet::new();
            self.clauses
                .retain(|c| !c.is_tautology() && seen.insert(c.clone()));
            if self.clauses.iter().any(Clause::is_empty) {
                return StepOutcome::Decided(false);
            }
            return StepOutcome::Changed; // binary index is stale; restart
        }
        StepOutcome::Unchanged
    }

    /// Detects Tseitin AND/OR/XOR definitions; returns accepted gates in
    /// topological order and removes their defining clauses.
    fn detect_gates(&mut self, stats: &mut PreprocessStats) -> Vec<Gate> {
        let clause_set: HashMap<Clause, usize> = self
            .clauses
            .iter()
            .enumerate()
            .map(|(i, c)| (c.clone(), i))
            .collect();
        let mut candidates: Vec<(Gate, Vec<usize>)> = Vec::new();
        let mut outputs_taken: HashSet<Var> = HashSet::new();

        // AND gates: clause (o ∨ ¬l₁ ∨ … ∨ ¬lₖ) + binaries (¬o ∨ lᵢ).
        for (i, clause) in self.clauses.iter().enumerate() {
            if clause.len() < 3 {
                continue;
            }
            for &o in clause.lits() {
                let var_o = o.var();
                if outputs_taken.contains(&var_o) || !self.gate_output_ok(var_o) {
                    continue;
                }
                let inputs: Vec<Lit> = clause
                    .lits()
                    .iter()
                    .copied()
                    .filter(|&l| l != o)
                    .map(|l| !l)
                    .collect();
                if !self.gate_inputs_ok(var_o, &inputs) {
                    continue;
                }
                let mut defining = vec![i];
                let mut all_present = true;
                for &input in &inputs {
                    match clause_set.get(&Clause::binary(!o, input)) {
                        Some(&idx) => defining.push(idx),
                        None => {
                            all_present = false;
                            break;
                        }
                    }
                }
                if all_present {
                    outputs_taken.insert(var_o);
                    candidates.push((
                        Gate {
                            output: o,
                            inputs,
                            kind: GateKind::And,
                        },
                        defining,
                    ));
                    break;
                }
            }
        }

        // XOR gates: 4 ternary clauses over a variable triple with equal
        // positive-literal parity.
        // BTreeMap: gate candidates can overlap, so acceptance order
        // must be the variable-triple order, not hash order.
        let mut triples: BTreeMap<[Var; 3], Vec<usize>> = BTreeMap::new();
        for (i, clause) in self.clauses.iter().enumerate() {
            if clause.len() == 3 && !clause.is_tautology() {
                let mut vars: Vec<Var> = clause.iter_vars().collect();
                vars.sort_unstable();
                triples
                    .entry([vars[0], vars[1], vars[2]])
                    .or_default()
                    .push(i);
            }
        }
        for (vars, indices) in &triples {
            if indices.len() < 4 {
                continue;
            }
            for parity in [0usize, 1] {
                let group: Vec<usize> = indices
                    .iter()
                    .copied()
                    .filter(|&i| {
                        self.clauses[i]
                            .lits()
                            .iter()
                            .filter(|l| l.is_positive())
                            .count()
                            % 2
                            == parity
                    })
                    .collect();
                if group.len() != 4 {
                    continue;
                }
                // Deduplicate identical clauses.
                let distinct: HashSet<&Clause> = group.iter().map(|&i| &self.clauses[i]).collect();
                if distinct.len() != 4 {
                    continue;
                }
                // o ≡ a ⊕ b (⊕ 1 when parity odd): pick an eligible output.
                for &vo in vars {
                    if outputs_taken.contains(&vo) || !self.gate_output_ok(vo) {
                        continue;
                    }
                    let others: Vec<Var> = vars.iter().copied().filter(|&v| v != vo).collect();
                    // All-even positive parity ⇔ forbidden rows have an odd
                    // number of ones ⇔ o⊕a⊕b = 0 ⇔ o ≡ a⊕b; all-odd parity
                    // encodes o ≡ ¬(a⊕b) = ¬a⊕b.
                    let inputs = vec![Lit::new(others[0], parity == 1), Lit::positive(others[1])];
                    if !self.gate_inputs_ok(vo, &inputs) {
                        continue;
                    }
                    outputs_taken.insert(vo);
                    candidates.push((
                        Gate {
                            output: Lit::positive(vo),
                            inputs,
                            kind: GateKind::Xor,
                        },
                        group.clone(),
                    ));
                    break;
                }
            }
        }

        // Topological acceptance: a gate is accepted once none of its
        // inputs is the output of a not-yet-accepted gate; cyclic
        // definitions are dropped. Also drop gates whose defining clauses
        // were consumed by an earlier accepted gate.
        let mut consumed: BTreeSet<usize> = BTreeSet::new();
        let mut accepted: Vec<Gate> = Vec::new();
        let mut pending = candidates;
        let mut accepted_outputs: HashSet<Var> = HashSet::new();
        loop {
            let mut progressed = false;
            let mut still_pending = Vec::new();
            let pending_outputs: HashSet<Var> =
                pending.iter().map(|(g, _)| g.output.var()).collect();
            for (gate, clauses) in pending {
                let inputs_ready = gate.inputs.iter().all(|l| {
                    !pending_outputs.contains(&l.var()) || accepted_outputs.contains(&l.var())
                });
                let clauses_free = clauses.iter().all(|i| !consumed.contains(i));
                if inputs_ready && clauses_free {
                    consumed.extend(clauses.iter().copied());
                    accepted_outputs.insert(gate.output.var());
                    accepted.push(gate);
                    progressed = true;
                } else if clauses_free {
                    still_pending.push((gate, clauses));
                }
            }
            pending = still_pending;
            if !progressed || pending.is_empty() {
                break;
            }
        }
        // Remove defining clauses and gate outputs from state.
        let mut keep = vec![true; self.clauses.len()];
        for &i in &consumed {
            keep[i] = false;
        }
        let mut iter = keep.iter();
        self.clauses.retain(|_| *iter.next().expect("length match"));
        for gate in &accepted {
            self.remove_var(gate.output.var());
        }
        stats.gates += accepted.len() as u64;
        accepted
    }

    /// A gate output must be existential.
    fn gate_output_ok(&self, v: Var) -> bool {
        self.deps.contains_key(&v)
    }

    /// Dependency condition for composing the gate into the matrix: every
    /// universal input must be in `D_out`, every existential input's
    /// dependency set contained in `D_out`; the output must not be its own
    /// input.
    fn gate_inputs_ok(&self, out: Var, inputs: &[Lit]) -> bool {
        let out_deps = &self.deps[&out];
        inputs.iter().all(|l| {
            let v = l.var();
            if v == out {
                return false;
            }
            if self.universal_set.contains(v) {
                out_deps.contains(v)
            } else if let Some(dv) = self.deps.get(&v) {
                dv.is_subset(out_deps)
            } else {
                false
            }
        })
    }

    fn into_dqbf(self) -> Dqbf {
        let mut matrix = Cnf::new(self.num_vars);
        for clause in self.clauses {
            matrix.add_clause(clause);
        }
        // Gate-output variables may still occur in the matrix; they stay
        // *free* (not re-bound) until `build_aig` composes them away.
        Dqbf::from_parts_raw(
            self.universals.clone(),
            self.existentials
                .iter()
                .map(|&y| (y, self.deps[&y].clone()))
                .collect(),
            matrix,
        )
    }
}

/// If `c` would subsume `d` after flipping exactly one literal `l ∈ c`
/// (i.e. `¬l ∈ d` and `c \ {l} ⊆ d`), returns `¬l` — the literal
/// self-subsuming resolution deletes from `d`.
fn self_subsuming_literal(c: &Clause, d: &Clause) -> Option<Lit> {
    let mut victim: Option<Lit> = None;
    for &l in c.lits() {
        if d.contains(l) {
            continue;
        }
        if d.contains(!l) {
            if victim.is_some() {
                return None; // two flipped literals: not self-subsuming
            }
            victim = Some(!l);
        } else {
            return None; // literal of c missing from d entirely
        }
    }
    victim
}

fn sorted_pair(a: Lit, b: Lit) -> (Lit, Lit) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::is_satisfiable_by_expansion;

    fn reduced(result: PreprocessResult) -> (Dqbf, Vec<Gate>, PreprocessStats) {
        match result {
            PreprocessResult::Reduced { dqbf, gates, stats } => (dqbf, gates, stats),
            PreprocessResult::Decided { value, .. } => panic!("unexpectedly decided: {value}"),
        }
    }

    #[test]
    fn universal_unit_decides_unsat() {
        let mut d = Dqbf::new();
        let x = d.add_universal();
        d.add_clause([Lit::positive(x)]);
        assert!(matches!(
            preprocess(&d),
            PreprocessResult::Decided { value: false, .. }
        ));
    }

    #[test]
    fn existential_units_propagate() {
        let mut d = Dqbf::new();
        let x = d.add_universal();
        let y = d.add_existential([x]);
        let z = d.add_existential([x]);
        d.add_clause([Lit::positive(y)]);
        d.add_clause([Lit::negative(y), Lit::positive(z), Lit::positive(x)]);
        // After y:=1, the clause (z ∨ x) remains; z is then pure and the
        // whole formula collapses to true.
        assert!(matches!(
            preprocess(&d),
            PreprocessResult::Decided { value: true, .. }
        ));
    }

    #[test]
    fn unit_conflict_decides_unsat() {
        let mut d = Dqbf::new();
        let y = d.add_existential([]);
        d.add_clause([Lit::positive(y)]);
        d.add_clause([Lit::negative(y)]);
        assert!(matches!(
            preprocess(&d),
            PreprocessResult::Decided { value: false, .. }
        ));
    }

    #[test]
    fn universal_reduction_removes_independent_literals() {
        // Clause (x ∨ y) where y does NOT depend on x: x is deleted, y
        // becomes unit.
        let mut d = Dqbf::new();
        let x = d.add_universal();
        let _ = x;
        let y = d.add_existential([]);
        d.add_clause([Lit::positive(x), Lit::positive(y)]);
        match preprocess(&d) {
            // y := 1 satisfies everything.
            PreprocessResult::Decided { value, .. } => assert!(value),
            PreprocessResult::Reduced { dqbf, .. } => {
                assert!(dqbf.matrix().is_empty());
            }
        }
    }

    #[test]
    fn universal_reduction_to_empty_clause_unsat() {
        // Clause (x1 ∨ x2), no existential: both deleted ⇒ empty ⇒ UNSAT.
        let mut d = Dqbf::new();
        let x1 = d.add_universal();
        let x2 = d.add_universal();
        d.add_clause([Lit::positive(x1), Lit::positive(x2)]);
        assert!(matches!(
            preprocess(&d),
            PreprocessResult::Decided { value: false, .. }
        ));
    }

    #[test]
    fn pure_existential_satisfied() {
        let mut d = Dqbf::new();
        let x = d.add_universal();
        let y = d.add_existential([x]);
        d.add_clause([Lit::positive(y), Lit::positive(x)]);
        d.add_clause([Lit::positive(y), Lit::negative(x)]);
        assert!(matches!(
            preprocess(&d),
            PreprocessResult::Decided { value: true, .. }
        ));
    }

    #[test]
    fn equivalence_substitution_respects_dependencies() {
        // y1(x1) ≡ y2(x1,x2): y2 replaced by y1 (D_{y1} ⊆ D_{y2}).
        let mut d = Dqbf::new();
        let x1 = d.add_universal();
        let x2 = d.add_universal();
        let y1 = d.add_existential([x1]);
        let y2 = d.add_existential([x1, x2]);
        d.add_clause([Lit::positive(y1), Lit::negative(y2)]);
        d.add_clause([Lit::negative(y1), Lit::positive(y2)]);
        // extra constraint so the formula is not trivially true:
        d.add_clause([Lit::positive(y2), Lit::positive(x1)]);
        d.add_clause([Lit::negative(y1), Lit::negative(x1), Lit::positive(x2)]);
        let before = is_satisfiable_by_expansion(&d);
        match preprocess(&d) {
            PreprocessResult::Decided { value, .. } => assert_eq!(value, before),
            PreprocessResult::Reduced { dqbf, stats, .. } => {
                assert!(stats.equivalences >= 1 || stats.pures > 0);
                assert_eq!(is_satisfiable_by_expansion(&dqbf), before);
            }
        }
    }

    #[test]
    fn and_gate_detection() {
        // t ≡ x1 ∧ y1, plus a use of t.
        let mut d = Dqbf::new();
        let x1 = d.add_universal();
        let x2 = d.add_universal();
        let y1 = d.add_existential([x1, x2]);
        let t = d.add_existential([x1, x2]);
        let u = d.add_existential([x1]);
        d.add_clause([Lit::negative(t), Lit::positive(x1)]);
        d.add_clause([Lit::negative(t), Lit::positive(y1)]);
        d.add_clause([Lit::positive(t), Lit::negative(x1), Lit::negative(y1)]);
        // Uses of t and a side constraint to prevent trivial collapse:
        d.add_clause([Lit::positive(t), Lit::positive(u), Lit::negative(x2)]);
        d.add_clause([Lit::negative(u), Lit::positive(x2), Lit::positive(y1)]);
        let (out, gates, stats) = reduced(preprocess(&d));
        assert_eq!(stats.gates, 1);
        assert_eq!(gates.len(), 1);
        assert_eq!(gates[0].kind, GateKind::And);
        assert_eq!(gates[0].output.var(), t);
        assert!(!out.is_existential(t), "gate output leaves the prefix");
    }

    #[test]
    fn xor_gate_detection() {
        // t ≡ x1 ⊕ y1 plus uses.
        let mut d = Dqbf::new();
        let x1 = d.add_universal();
        let x2 = d.add_universal();
        let y1 = d.add_existential([x1, x2]);
        let t = d.add_existential([x1, x2]);
        let u = d.add_existential([x2]);
        d.add_clause([Lit::negative(t), Lit::positive(x1), Lit::positive(y1)]);
        d.add_clause([Lit::negative(t), Lit::negative(x1), Lit::negative(y1)]);
        d.add_clause([Lit::positive(t), Lit::negative(x1), Lit::positive(y1)]);
        d.add_clause([Lit::positive(t), Lit::positive(x1), Lit::negative(y1)]);
        d.add_clause([Lit::positive(t), Lit::positive(u), Lit::positive(x2)]);
        d.add_clause([Lit::negative(u), Lit::negative(x2), Lit::positive(y1)]);
        let before = is_satisfiable_by_expansion(&d);
        let (out, gates, stats) = reduced(preprocess(&d));
        assert_eq!(stats.gates, 1, "gates: {gates:?}");
        assert_eq!(gates[0].kind, GateKind::Xor);
        let _ = out;
        let _ = before;
    }

    #[test]
    fn gate_not_extracted_when_dependencies_insufficient() {
        // t ≡ x1 ∧ x2 but D_t = {x1}: extraction must be refused.
        let mut d = Dqbf::new();
        let x1 = d.add_universal();
        let x2 = d.add_universal();
        let t = d.add_existential([x1]);
        let w = d.add_existential([x1, x2]);
        d.add_clause([Lit::negative(t), Lit::positive(x1)]);
        d.add_clause([Lit::negative(t), Lit::positive(x2)]);
        d.add_clause([Lit::positive(t), Lit::negative(x1), Lit::negative(x2)]);
        d.add_clause([Lit::positive(t), Lit::positive(w)]);
        d.add_clause([Lit::negative(w), Lit::positive(x1), Lit::positive(x2)]);
        let before = is_satisfiable_by_expansion(&d);
        match preprocess(&d) {
            PreprocessResult::Decided { value, .. } => assert_eq!(value, before),
            PreprocessResult::Reduced { dqbf, gates, .. } => {
                assert!(gates.iter().all(|g| g.output.var() != t));
                assert_eq!(is_satisfiable_by_expansion(&dqbf), before);
            }
        }
    }

    #[test]
    fn subsumption_removes_and_strengthens() {
        // (y) subsumes (y ∨ x); (¬y ∨ z) + (y ∨ z) self-subsume to (z).
        let mut d = Dqbf::new();
        let x = d.add_universal();
        let y = d.add_existential([x]);
        let z = d.add_existential([x]);
        let w = d.add_existential([x]);
        // Avoid units/pures deciding everything: tie w in both phases.
        d.add_clause([Lit::positive(y), Lit::positive(x), Lit::positive(w)]);
        d.add_clause([Lit::positive(y), Lit::positive(x)]); // subsumes above
        d.add_clause([Lit::negative(y), Lit::positive(z), Lit::negative(w)]);
        d.add_clause([Lit::positive(y), Lit::positive(z), Lit::negative(w)]);
        let before = is_satisfiable_by_expansion(&d);
        match preprocess_full(&d, false, true) {
            PreprocessResult::Decided { value, stats } => {
                assert_eq!(value, before);
                assert!(stats.subsumed + stats.strengthened > 0);
            }
            PreprocessResult::Reduced { dqbf, stats, .. } => {
                assert!(stats.subsumed >= 1, "{stats:?}");
                assert!(stats.strengthened >= 1, "{stats:?}");
                assert_eq!(is_satisfiable_by_expansion(&dqbf), before);
            }
        }
    }

    /// Subsumption never changes the truth value on random instances.
    #[test]
    fn subsumption_preserves_truth() {
        use hqs_base::Rng;
        let mut rng = Rng::seed_from_u64(2626);
        for round in 0..80 {
            let mut d = Dqbf::new();
            let nu = rng.gen_range(1..=3u32);
            let xs: Vec<Var> = (0..nu).map(|_| d.add_universal()).collect();
            let mut all: Vec<Var> = xs.clone();
            for _ in 0..rng.gen_range(1..=3u32) {
                let deps: Vec<Var> = xs.iter().copied().filter(|_| rng.gen_bool(0.5)).collect();
                all.push(d.add_existential(deps));
            }
            for _ in 0..rng.gen_range(2..=8usize) {
                let len = rng.gen_range(1..=3usize);
                let lits: Vec<Lit> = (0..len)
                    .map(|_| Lit::new(all[rng.gen_range(0..all.len())], rng.gen_bool(0.5)))
                    .collect();
                d.add_clause(lits);
            }
            let expected = is_satisfiable_by_expansion(&d);
            match preprocess_full(&d, true, true) {
                PreprocessResult::Decided { value, .. } => {
                    assert_eq!(value, expected, "round {round}: {d:?}");
                }
                PreprocessResult::Reduced { dqbf, gates, .. } => {
                    let mut full = dqbf.clone();
                    reencode_gates(&mut full, &gates);
                    assert_eq!(
                        is_satisfiable_by_expansion(&full),
                        expected,
                        "round {round}: {d:?}"
                    );
                }
            }
        }
    }

    /// Soundness sweep: preprocessing never changes the truth value of
    /// random small DQBFs (gates re-encoded as a matrix for the oracle).
    #[test]
    fn preprocessing_preserves_truth_on_random_instances() {
        use hqs_base::Rng;
        let mut rng = Rng::seed_from_u64(1414);
        for round in 0..120 {
            let mut d = Dqbf::new();
            let nu = rng.gen_range(1..=3u32);
            let ne = rng.gen_range(1..=3u32);
            let xs: Vec<Var> = (0..nu).map(|_| d.add_universal()).collect();
            let mut all: Vec<Var> = xs.clone();
            for _ in 0..ne {
                let deps: Vec<Var> = xs.iter().copied().filter(|_| rng.gen_bool(0.5)).collect();
                all.push(d.add_existential(deps));
            }
            for _ in 0..rng.gen_range(1..=7usize) {
                let len = rng.gen_range(1..=3usize);
                let lits: Vec<Lit> = (0..len)
                    .map(|_| Lit::new(all[rng.gen_range(0..all.len())], rng.gen_bool(0.5)))
                    .collect();
                d.add_clause(lits);
            }
            let expected = is_satisfiable_by_expansion(&d);
            match preprocess(&d) {
                PreprocessResult::Decided { value, .. } => {
                    assert_eq!(value, expected, "round {round}: {d:?}");
                }
                PreprocessResult::Reduced { dqbf, gates, .. } => {
                    // Re-encode gates as clauses for the oracle.
                    let mut full = dqbf.clone();
                    reencode_gates(&mut full, &gates);
                    assert_eq!(
                        is_satisfiable_by_expansion(&full),
                        expected,
                        "round {round}: {d:?}"
                    );
                }
            }
        }
    }

    /// Re-adds gate definitions as clauses and re-binds outputs as
    /// existentials (test helper; the solver composes gates into the AIG
    /// instead).
    fn reencode_gates(dqbf: &mut Dqbf, gates: &[Gate]) {
        for gate in gates {
            // The output variable is free in `dqbf` (it was removed from
            // the prefix); clauses will re-bind it via bind_free_vars with
            // empty deps — NOT correct in general. Instead, declare it as
            // depending on everything, which is sound here because its
            // value is a function of its inputs.
            match gate.kind {
                GateKind::And => {
                    for &input in &gate.inputs {
                        dqbf.add_clause([!gate.output, input]);
                    }
                    let mut long = vec![gate.output];
                    long.extend(gate.inputs.iter().map(|&l| !l));
                    dqbf.add_clause(long);
                }
                GateKind::Xor => {
                    let (a, b) = (gate.inputs[0], gate.inputs[1]);
                    let o = gate.output;
                    dqbf.add_clause([!o, a, b]);
                    dqbf.add_clause([!o, !a, !b]);
                    dqbf.add_clause([o, !a, b]);
                    dqbf.add_clause([o, a, !b]);
                }
            }
        }
        // Bind gate outputs with full dependencies (sound: outputs are
        // functions of their inputs).
        let universals: Vec<Var> = dqbf.universals().to_vec();
        for gate in gates {
            let v = gate.output.var();
            if !dqbf.is_existential(v) && !dqbf.is_universal(v) {
                // add_existential allocates fresh vars; emulate explicit
                // binding through the file interface instead.
                let mut file = dqbf.to_file();
                file.existentials
                    .push((v, universals.iter().copied().collect()));
                *dqbf = Dqbf::from_file(&file);
            }
        }
    }
}
