//! Runtime structural-invariant audit of the DQBF data model and the
//! AIG-based elimination state.
//!
//! The elimination rules of Theorems 1 and 2 rewrite the prefix and the
//! matrix together; their soundness rests on bookkeeping invariants the
//! type system cannot express: the universal/existential partition is
//! disjoint and duplicate-free, every dependency set is a subset of the
//! *declared* universals, and after each elimination no dependency set
//! retains the eliminated variable (the residue matches the dependency
//! graph the MaxSAT selection is computed from). [`Dqbf::check_invariants`]
//! audits the CNF-level model, [`AigDqbf::check_invariants`] the working
//! state — including a full audit of the underlying AIG manager.
//!
//! The elimination operations re-run the audit under `debug_assert!`;
//! the `paranoid` solver option re-runs it in release builds after every
//! main-loop step.

use crate::elim::AigDqbf;
use crate::Dqbf;
use hqs_base::{InvariantViolation, Var, VarSet};
use std::collections::HashMap;

/// Shared prefix audit: partition disjointness, duplicate freedom,
/// dependency-set closure. `max_var` bounds the allocated index space.
fn check_prefix(
    universals: &[Var],
    universal_set: &VarSet,
    existentials: &[Var],
    deps: &HashMap<Var, VarSet>,
    max_var: u32,
) -> Result<(), InvariantViolation> {
    let err = |component, detail| Err(InvariantViolation::new(component, detail));
    let mut seen = VarSet::new();
    for &x in universals {
        if x.index() >= max_var {
            return err(
                "prefix",
                format!("universal {x} beyond allocated variables ({max_var})"),
            );
        }
        if seen.contains(x) {
            return err("prefix", format!("universal {x} declared twice"));
        }
        seen.insert(x);
        if !universal_set.contains(x) {
            return err(
                "prefix",
                format!("universal {x} missing from the universal set"),
            );
        }
    }
    if universal_set.len() != universals.len() {
        return err(
            "prefix",
            format!(
                "universal set holds {} variables but the prefix lists {}",
                universal_set.len(),
                universals.len()
            ),
        );
    }
    for &y in existentials {
        if y.index() >= max_var {
            return err(
                "prefix",
                format!("existential {y} beyond allocated variables ({max_var})"),
            );
        }
        if seen.contains(y) {
            return err(
                "prefix",
                format!("existential {y} declared twice or also declared universal"),
            );
        }
        seen.insert(y);
        let Some(dep) = deps.get(&y) else {
            return err("deps", format!("existential {y} has no dependency set"));
        };
        if !dep.is_subset(universal_set) {
            return err(
                "deps",
                format!(
                    "dependency set of {y} mentions non-universal variables: {:?}",
                    dep.difference(universal_set)
                ),
            );
        }
    }
    if deps.len() != existentials.len() {
        return err(
            "deps",
            format!(
                "{} dependency sets recorded for {} existentials (orphaned residue)",
                deps.len(),
                existentials.len()
            ),
        );
    }
    Ok(())
}

impl Dqbf {
    /// Audits the structural invariants of the DQBF model.
    ///
    /// Checked:
    ///
    /// 1. **prefix** — universals and existentials are duplicate-free and
    ///    disjoint, within the allocated variable range, and the cached
    ///    universal set mirrors the prefix order exactly.
    /// 2. **deps** — every existential has a dependency set, every
    ///    dependency set is a subset of the declared universals, and no
    ///    dependency set survives without its existential.
    ///
    /// Returns the first violation found.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        check_prefix(
            &self.universals,
            &self.universal_set,
            &self.existentials,
            &self.deps,
            self.num_vars(),
        )
    }

    /// Panics with the violation if the audit fails.
    pub fn assert_invariants(&self, context: &str) {
        if let Err(violation) = self.check_invariants() {
            panic!("DQBF invariant violated {context}: {violation}");
        }
    }

    /// Audit compiled to a no-op unless debug assertions are on.
    pub(crate) fn debug_audit(&self, context: &str) {
        if cfg!(debug_assertions) {
            self.assert_invariants(context);
        }
    }
}

impl AigDqbf {
    /// Audits the structural invariants of the elimination state.
    ///
    /// Checked:
    ///
    /// 1. the underlying AIG manager
    ///    ([`Aig::check_invariants`](hqs_aig::Aig::check_invariants));
    /// 2. **prefix** / **deps** — as for [`Dqbf::check_invariants`]; in
    ///    particular, after [`eliminate_universal`] no dependency set may
    ///    retain the eliminated variable, so the residue always matches
    ///    the dependency graph the elimination sets are computed from;
    /// 3. **vars** — the fresh-variable counter stays above every
    ///    allocated prefix variable, so existential copies never collide.
    ///
    /// Returns the first violation found.
    ///
    /// [`eliminate_universal`]: AigDqbf::eliminate_universal
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        self.aig.check_invariants()?;
        check_prefix(
            &self.universals,
            &self.universal_set,
            &self.existentials,
            &self.deps,
            self.next_var,
        )?;
        Ok(())
    }

    /// Panics with the violation if the audit fails; the `paranoid`
    /// solver option calls this after every main-loop step.
    pub fn assert_invariants(&self, context: &str) {
        if let Err(violation) = self.check_invariants() {
            panic!("elimination-state invariant violated {context}: {violation}");
        }
    }

    /// Audit compiled to a no-op unless debug assertions are on; called
    /// after every elimination step.
    pub(crate) fn debug_audit(&self, context: &str) {
        if cfg!(debug_assertions) {
            self.assert_invariants(context);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqs_base::Lit;

    fn sample_dqbf() -> Dqbf {
        let mut d = Dqbf::new();
        let x1 = d.add_universal();
        let x2 = d.add_universal();
        let y1 = d.add_existential([x1]);
        let y2 = d.add_existential([x2]);
        d.add_clause([Lit::positive(y1), Lit::negative(y2), Lit::positive(x1)]);
        d
    }

    #[test]
    fn healthy_dqbf_passes() {
        assert_eq!(sample_dqbf().check_invariants(), Ok(()));
        assert_eq!(Dqbf::new().check_invariants(), Ok(()));
    }

    #[test]
    fn duplicate_universal_is_caught() {
        let mut d = sample_dqbf();
        let x = d.universals[0];
        d.universals.push(x);
        let violation = d.check_invariants().expect_err("duplicate undetected");
        assert_eq!(violation.component(), "prefix");
    }

    #[test]
    fn dependency_outside_universals_is_caught() {
        let mut d = sample_dqbf();
        let y = d.existentials[0];
        let rogue = Var::new(d.num_vars() + 5);
        d.num_vars = rogue.index() + 1;
        d.deps.get_mut(&y).unwrap().insert(rogue);
        let violation = d
            .check_invariants()
            .expect_err("rogue dependency undetected");
        assert_eq!(violation.component(), "deps");
    }

    #[test]
    fn orphaned_dependency_set_is_caught() {
        let mut d = sample_dqbf();
        let y = d.existentials.pop().unwrap();
        // The dependency set of the removed existential lingers.
        assert!(d.deps.contains_key(&y));
        let violation = d.check_invariants().expect_err("orphan undetected");
        assert_eq!(violation.component(), "deps");
    }

    #[test]
    fn stale_universal_set_is_caught() {
        let mut d = sample_dqbf();
        let x = d.universals[0];
        d.universal_set.remove(x);
        let violation = d.check_invariants().expect_err("stale set undetected");
        assert_eq!(violation.component(), "prefix");
    }

    #[test]
    fn elimination_state_residue_is_checked() {
        let d = sample_dqbf();
        let mut state = AigDqbf::from_dqbf(&d);
        assert_eq!(state.check_invariants(), Ok(()));
        let x = state.universals()[0];
        state.eliminate_universal(x);
        assert_eq!(state.check_invariants(), Ok(()));
        // Re-insert the eliminated universal into one dependency set: the
        // residue no longer matches the dependency graph.
        let y = state.existentials()[0];
        state.deps.get_mut(&y).unwrap().insert(x);
        let violation = state.check_invariants().expect_err("residue undetected");
        assert_eq!(violation.component(), "deps");
    }

    #[test]
    fn next_var_collision_is_caught() {
        let d = sample_dqbf();
        let mut state = AigDqbf::from_dqbf(&d);
        state.next_var = 1; // below the allocated prefix variables
        let violation = state.check_invariants().expect_err("collision undetected");
        assert_eq!(violation.component(), "prefix");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "DQBF invariant violated")]
    fn assert_invariants_panics_on_corruption() {
        let mut d = sample_dqbf();
        let x = d.universals[0];
        d.universal_set.remove(x);
        d.assert_invariants("in test");
    }
}
