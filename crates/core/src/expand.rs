//! Universal expansion of a DQBF into propositional SAT.
//!
//! A DQBF is satisfied iff its *full universal expansion* is: for every
//! assignment `ω` of the universal variables, instantiate the matrix with
//! `ω` and replace each existential `y` by an instance variable keyed by
//! `(y, ω|D_y)` — the restriction of `ω` to `y`'s dependency set. Two
//! instances agree exactly when the Skolem function `s_y` must produce the
//! same value, so the expansion is satisfiable iff Skolem functions exist.
//!
//! The expansion is exponential in the number of universals; it serves as
//! the exact reference oracle for the solver tests and as the conceptual
//! basis of the instantiation-based iDQ baseline (which builds it lazily).

use crate::Dqbf;
use hqs_base::{Lit, Var};
use hqs_cnf::{Clause, Cnf};
use std::collections::HashMap;

/// Hard cap on the number of universal variables accepted by
/// [`expand_to_cnf`]; beyond this the expansion would not fit in memory
/// anyway.
pub const MAX_EXPANSION_UNIVERSALS: usize = 24;

/// Builds the full universal expansion of `dqbf` as a propositional CNF.
///
/// Returns the CNF together with the mapping from `(existential, packed
/// restriction)` to instance variable, which callers can use to read back
/// Skolem function tables from a model.
///
/// # Panics
///
/// Panics if the formula has more than [`MAX_EXPANSION_UNIVERSALS`]
/// universal variables, or an existential with more than 64 dependencies.
#[must_use]
pub fn expand_to_cnf(dqbf: &Dqbf) -> (Cnf, HashMap<(Var, u64), Var>) {
    let universals = dqbf.universals();
    assert!(
        universals.len() <= MAX_EXPANSION_UNIVERSALS,
        "expansion limited to {MAX_EXPANSION_UNIVERSALS} universals"
    );
    let mut cnf = Cnf::new(0);
    let mut instances: HashMap<(Var, u64), Var> = HashMap::new();
    let position: HashMap<Var, usize> = universals
        .iter()
        .enumerate()
        .map(|(i, &x)| (x, i))
        .collect();

    // Treat free variables as empty-dependency existentials on the fly.
    let mut scratch = dqbf.clone();
    scratch.bind_free_vars();

    for omega in 0u64..(1u64 << universals.len()) {
        'clauses: for clause in scratch.matrix().clauses() {
            let mut lits: Vec<Lit> = Vec::with_capacity(clause.len());
            for &lit in clause.lits() {
                let var = lit.var();
                if let Some(&pos) = position.get(&var) {
                    let value = omega >> pos & 1 == 1;
                    if value != lit.is_negative() {
                        continue 'clauses; // satisfied under ω
                    }
                    // falsified literal: drop
                } else {
                    let deps = scratch.dependencies(var).expect("free vars were bound");
                    assert!(deps.len() <= 64, "dependency sets limited to 64");
                    let mut key = 0u64;
                    for (i, dep) in deps.iter().enumerate() {
                        if omega >> position[&dep] & 1 == 1 {
                            key |= 1 << i;
                        }
                    }
                    let next_index = instances.len() as u32;
                    let instance = *instances
                        .entry((var, key))
                        .or_insert_with(|| Var::new(next_index));
                    lits.push(Lit::new(instance, lit.is_negative()));
                }
            }
            cnf.add_clause(Clause::from_lits(lits));
        }
    }
    cnf.ensure_num_vars(instances.len() as u32);
    (cnf, instances)
}

/// Decides `dqbf` exactly by full expansion plus one CDCL call.
///
/// The exact reference oracle used throughout the test suite. Exponential
/// in the universal count; see [`MAX_EXPANSION_UNIVERSALS`].
#[must_use]
pub fn is_satisfiable_by_expansion(dqbf: &Dqbf) -> bool {
    let (cnf, _) = expand_to_cnf(dqbf);
    if cnf.has_empty_clause() {
        return false;
    }
    let mut solver = hqs_sat::Solver::new();
    solver.add_cnf(&cnf);
    solver.solve(&[]) == hqs_sat::SolveResult::Sat
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Example 1-style instance: ∀x₁∀x₂ ∃y₁(x₁) ∃y₂(x₂) with matrix
    /// (y₁↔x₁) ∧ (y₂↔x₂): satisfiable.
    #[test]
    fn copy_functions_are_satisfiable() {
        let mut d = Dqbf::new();
        let x1 = d.add_universal();
        let x2 = d.add_universal();
        let y1 = d.add_existential([x1]);
        let y2 = d.add_existential([x2]);
        for (x, y) in [(x1, y1), (x2, y2)] {
            d.add_clause([Lit::positive(x), Lit::negative(y)]);
            d.add_clause([Lit::negative(x), Lit::positive(y)]);
        }
        assert!(is_satisfiable_by_expansion(&d));
    }

    /// ∀x₁∀x₂ ∃y(x₁) with matrix y↔x₂: y cannot see x₂, unsatisfiable.
    #[test]
    fn wrong_dependency_is_unsatisfiable() {
        let mut d = Dqbf::new();
        let x1 = d.add_universal();
        let x2 = d.add_universal();
        let y = d.add_existential([x1]);
        d.add_clause([Lit::positive(x2), Lit::negative(y)]);
        d.add_clause([Lit::negative(x2), Lit::positive(y)]);
        assert!(!is_satisfiable_by_expansion(&d));
        // The same matrix with the right dependency is satisfiable.
        let mut d2 = Dqbf::new();
        let _x1 = d2.add_universal();
        let x2 = d2.add_universal();
        let y = d2.add_existential([x2]);
        d2.add_clause([Lit::positive(x2), Lit::negative(y)]);
        d2.add_clause([Lit::negative(x2), Lit::positive(y)]);
        assert!(is_satisfiable_by_expansion(&d2));
    }

    /// Instance variables are shared between expansion rows that agree on
    /// the dependency set — the defining difference from plain QBF
    /// expansion.
    #[test]
    fn instances_are_shared_across_rows() {
        let mut d = Dqbf::new();
        let x1 = d.add_universal();
        let _x2 = d.add_universal();
        let y = d.add_existential([x1]);
        d.add_clause([Lit::positive(y)]);
        let (_, instances) = expand_to_cnf(&d);
        // y has 1 dependency ⇒ exactly 2 instances despite 4 rows.
        assert_eq!(instances.len(), 2);
    }

    #[test]
    fn no_universals_reduces_to_sat() {
        let mut d = Dqbf::new();
        let y = d.add_existential([]);
        d.add_clause([Lit::positive(y)]);
        assert!(is_satisfiable_by_expansion(&d));
        d.add_clause([Lit::negative(y)]);
        assert!(!is_satisfiable_by_expansion(&d));
    }

    #[test]
    fn free_variables_act_as_existentials() {
        let mut d = Dqbf::new();
        let x = d.add_universal();
        // Free variable v2 (index 1 never allocated as quantified).
        d.add_clause([Lit::positive(Var::new(1)), Lit::positive(x)]);
        // Needs v1 = true when x = 0; free var has empty deps but constant
        // true works.
        assert!(is_satisfiable_by_expansion(&d));
    }

    /// Universal unit clause makes the formula unsatisfied.
    #[test]
    fn universal_unit_clause_unsat() {
        let mut d = Dqbf::new();
        let x = d.add_universal();
        d.add_clause([Lit::positive(x)]);
        assert!(!is_satisfiable_by_expansion(&d));
    }
}
