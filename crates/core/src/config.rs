//! Validated construction and fingerprinting of [`HqsConfig`].
//!
//! [`HqsConfig`] keeps its public fields (struct-update syntax is how
//! the ablation tooling sweeps configurations), but the blessed way to
//! assemble one is [`HqsConfig::builder`]: the builder rejects
//! nonsensical flag combinations at `build()` time instead of letting
//! them silently degrade a solve. [`HqsConfig::fingerprint`] gives every
//! config a stable hash so batch records can say *which* configuration
//! produced them.

use crate::solver::{ElimStrategy, HqsConfig, QbfBackend};
use hqs_base::Budget;
use std::fmt;

/// A flag combination [`HqsConfigBuilder::build`] refuses to produce.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// `gate_detection` without `preprocess`: gate detection runs *inside*
    /// the preprocessing pipeline, so the flag would silently do nothing.
    GatesWithoutPreprocess,
    /// `subsumption` without `preprocess`: subsumption is a preprocessing
    /// rule, so the flag would silently do nothing.
    SubsumptionWithoutPreprocess,
    /// `dynamic_order` under [`ElimStrategy::AllUniversals`]: the baseline
    /// strategy has no elimination-set choice to re-derive, so the flag
    /// would silently do nothing.
    DynamicOrderWithoutMaxSat,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::GatesWithoutPreprocess => {
                write!(f, "gate_detection requires preprocess (it runs inside the pipeline)")
            }
            ConfigError::SubsumptionWithoutPreprocess => {
                write!(f, "subsumption requires preprocess (it is a preprocessing rule)")
            }
            ConfigError::DynamicOrderWithoutMaxSat => write!(
                f,
                "dynamic_order requires the MaxSAT-minimal strategy (all-universals has no set to reorder)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`HqsConfig`]; obtain via [`HqsConfig::builder`].
///
/// Starts from [`HqsConfig::default`] (the paper's configuration); each
/// setter overrides one field, and [`build`](HqsConfigBuilder::build)
/// validates the combination.
///
/// # Examples
///
/// ```
/// use hqs_core::{ConfigError, HqsConfig};
///
/// let config = HqsConfig::builder()
///     .dynamic_order(true)
///     .fraig_threshold(1000)
///     .build()
///     .expect("valid combination");
/// assert!(config.dynamic_order);
///
/// let err = HqsConfig::builder()
///     .preprocess(false)
///     .gate_detection(true)
///     .build()
///     .unwrap_err();
/// assert_eq!(err, ConfigError::GatesWithoutPreprocess);
/// ```
#[derive(Clone, Debug, Default)]
#[must_use]
pub struct HqsConfigBuilder {
    config: HqsConfig,
}

macro_rules! setters {
    ($(($field:ident, $ty:ty, $doc:literal)),+ $(,)?) => {
        $(
            #[doc = $doc]
            pub fn $field(mut self, value: $ty) -> Self {
                self.config.$field = value;
                self
            }
        )+
    };
}

impl HqsConfigBuilder {
    setters! {
        (budget, Budget, "Sets the resource budget (wall clock, nodes, cancellation)."),
        (preprocess, bool, "Enables the CNF preprocessing pipeline (§III-C)."),
        (gate_detection, bool, "Enables Tseitin gate detection (requires `preprocess`)."),
        (initial_sat_check, bool, "Enables the up-front plain SAT call on the matrix."),
        (unit_pure, bool, "Enables Theorem-5/6 unit-pure elimination in the main loop."),
        (strategy, ElimStrategy, "Chooses the universal-elimination strategy."),
        (fraig_threshold, usize, "SAT-sweeps cones larger than this many AND nodes (0 = off)."),
        (subsumption, bool, "Enables (self-)subsumption in preprocessing (requires `preprocess`)."),
        (dynamic_order, bool,
            "Recomputes the elimination set after every elimination (MaxSAT strategy only)."),
        (qbf_backend, QbfBackend, "Chooses the QBF backend for the linearised remainder."),
        (paranoid, bool, "Audits all solver-state invariants after every main-loop step."),
        (certify, bool, "Proof-logs internal SAT calls and prefers certified entry points."),
    }

    /// Validates the combination and produces the config.
    ///
    /// # Errors
    ///
    /// A [`ConfigError`] naming the first nonsensical flag combination.
    pub fn build(self) -> Result<HqsConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

impl HqsConfig {
    /// A validating builder starting from the paper's defaults.
    pub fn builder() -> HqsConfigBuilder {
        HqsConfigBuilder::default()
    }

    /// Checks the flag combination; [`HqsConfigBuilder::build`] and
    /// [`Session::builder`](crate::Session::builder) call this, and
    /// hand-assembled configs (struct-update syntax) can too.
    ///
    /// # Errors
    ///
    /// A [`ConfigError`] naming the first nonsensical flag combination.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.gate_detection && !self.preprocess {
            return Err(ConfigError::GatesWithoutPreprocess);
        }
        if self.subsumption && !self.preprocess {
            return Err(ConfigError::SubsumptionWithoutPreprocess);
        }
        if self.dynamic_order && self.strategy != ElimStrategy::MaxSatMinimal {
            return Err(ConfigError::DynamicOrderWithoutMaxSat);
        }
        Ok(())
    }

    /// A stable 64-bit fingerprint of every *algorithmic* field — the
    /// budget is deliberately excluded, so the same strategy under a
    /// different timeout hashes identically. Batch records carry this
    /// (hex-encoded) so result rows are attributable to a configuration
    /// even when deck names change across versions.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over a canonical byte encoding; no dependence on
        // std::hash, whose output is not stable across releases.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let strategy = match self.strategy {
            ElimStrategy::MaxSatMinimal => 0u8,
            ElimStrategy::AllUniversals => 1,
        };
        let backend = match self.qbf_backend {
            QbfBackend::Elimination => 0u8,
            QbfBackend::Search => 1,
        };
        let bytes: Vec<u8> = [
            u8::from(self.preprocess),
            u8::from(self.gate_detection),
            u8::from(self.initial_sat_check),
            u8::from(self.unit_pure),
            strategy,
            u8::from(self.subsumption),
            u8::from(self.dynamic_order),
            backend,
            u8::from(self.paranoid),
            u8::from(self.certify),
        ]
        .into_iter()
        .chain(self.fraig_threshold.to_le_bytes())
        .collect();
        let mut hash = OFFSET;
        for byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_default() {
        let built = HqsConfig::builder().build().expect("defaults are valid");
        assert_eq!(built.fingerprint(), HqsConfig::default().fingerprint());
    }

    #[test]
    fn builder_rejects_nonsense() {
        assert_eq!(
            HqsConfig::builder().preprocess(false).build().unwrap_err(),
            ConfigError::GatesWithoutPreprocess,
            "defaults have gate_detection on, so preprocess(false) alone must fail"
        );
        assert_eq!(
            HqsConfig::builder()
                .preprocess(false)
                .gate_detection(false)
                .subsumption(true)
                .build()
                .unwrap_err(),
            ConfigError::SubsumptionWithoutPreprocess
        );
        assert_eq!(
            HqsConfig::builder()
                .strategy(ElimStrategy::AllUniversals)
                .dynamic_order(true)
                .build()
                .unwrap_err(),
            ConfigError::DynamicOrderWithoutMaxSat
        );
        assert!(HqsConfig::builder()
            .preprocess(false)
            .gate_detection(false)
            .build()
            .is_ok());
    }

    #[test]
    fn fingerprint_ignores_budget_but_not_flags() {
        let base = HqsConfig::default();
        let budgeted = HqsConfig {
            budget: Budget::new().with_node_limit(7),
            ..HqsConfig::default()
        };
        assert_eq!(base.fingerprint(), budgeted.fingerprint());
        let flipped = HqsConfig {
            dynamic_order: true,
            ..HqsConfig::default()
        };
        assert_ne!(base.fingerprint(), flipped.fingerprint());
        let sized = HqsConfig {
            fraig_threshold: 500,
            ..HqsConfig::default()
        };
        assert_ne!(base.fingerprint(), sized.fingerprint());
    }
}
