//! Randomised tests of the DQBF layer: solver-vs-oracle agreement,
//! elimination soundness, preprocessing soundness and monotonicity laws.

use hqs_base::{Lit, Rng, Var, VarSet};
use hqs_core::elim::AigDqbf;
use hqs_core::expand::is_satisfiable_by_expansion;
use hqs_core::{Dqbf, ElimStrategy, HqsConfig, Outcome, Session};

const MAX_UNIVERSALS: u32 = 4;
const MAX_EXISTENTIALS: u32 = 3;
const CASES: u64 = 96;

#[derive(Clone, Debug)]
struct RandomDqbf {
    dep_masks: Vec<u8>,
    clauses: Vec<Vec<(u8, bool)>>,
}

fn random_spec(rng: &mut Rng) -> RandomDqbf {
    let dep_masks = (0..rng.gen_range(1..=MAX_EXISTENTIALS as usize))
        .map(|_| rng.gen_range(0..=255u8))
        .collect();
    let clauses = (0..rng.gen_range(1..10usize))
        .map(|_| {
            (0..rng.gen_range(1..4usize))
                .map(|_| (rng.gen_range(0..=255u8), rng.gen_bool(0.5)))
                .collect()
        })
        .collect();
    RandomDqbf { dep_masks, clauses }
}

fn build(spec: &RandomDqbf) -> Dqbf {
    let mut d = Dqbf::new();
    let xs: Vec<Var> = (0..MAX_UNIVERSALS).map(|_| d.add_universal()).collect();
    let mut all = xs.clone();
    for &mask in &spec.dep_masks {
        let deps: Vec<Var> = xs
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &x)| x)
            .collect();
        all.push(d.add_existential(deps));
    }
    for clause in &spec.clauses {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&(pick, neg)| Lit::new(all[pick as usize % all.len()], neg))
            .collect();
        d.add_clause(lits);
    }
    d
}

/// HQS agrees with the expansion oracle in every configuration.
#[test]
fn hqs_matches_oracle() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let d = build(&random_spec(&mut rng));
        let expected = if is_satisfiable_by_expansion(&d) {
            Outcome::Sat
        } else {
            Outcome::Unsat
        };
        let mut session = Session::builder().build().expect("defaults are valid");
        assert_eq!(session.solve(&d), expected, "seed {seed}");
        let no_opt = HqsConfig {
            preprocess: false,
            gate_detection: false,
            unit_pure: false,
            strategy: ElimStrategy::AllUniversals,
            ..HqsConfig::default()
        };
        let mut session = Session::builder()
            .config(no_opt)
            .build()
            .expect("no-opt config is valid");
        assert_eq!(session.solve(&d), expected, "seed {seed}");
    }
}

/// Theorem 1 (universal elimination) preserves the truth value.
#[test]
fn universal_elimination_is_sound() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x1000 + seed);
        let d = build(&random_spec(&mut rng));
        let pick = rng.gen_range(0..MAX_UNIVERSALS);
        let expected = is_satisfiable_by_expansion(&d);
        let mut state = AigDqbf::from_dqbf(&d);
        let x = state.universals()[pick as usize];
        state.eliminate_universal(x);
        assert_eq!(
            is_satisfiable_by_expansion(&state.to_dqbf()),
            expected,
            "seed {seed}"
        );
    }
}

/// Theorem 2 (existential elimination of total-dependency variables)
/// preserves the truth value.
#[test]
fn existential_elimination_is_sound() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x2000 + seed);
        let d = build(&random_spec(&mut rng));
        let expected = is_satisfiable_by_expansion(&d);
        let mut state = AigDqbf::from_dqbf(&d);
        state.eliminate_total_existentials();
        assert_eq!(
            is_satisfiable_by_expansion(&state.to_dqbf()),
            expected,
            "seed {seed}"
        );
    }
}

/// Unit/pure rounds (Theorems 5/6) preserve the truth value; an
/// `Unsat` verdict is always confirmed by the oracle.
#[test]
fn unit_pure_is_sound() {
    'outer: for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x3000 + seed);
        let d = build(&random_spec(&mut rng));
        let expected = is_satisfiable_by_expansion(&d);
        let mut state = AigDqbf::from_dqbf(&d);
        loop {
            match state.apply_unit_pure() {
                Some(false) => {
                    assert!(!expected, "seed {seed}: unit/pure declared Unsat wrongly");
                    continue 'outer;
                }
                Some(true) => {}
                None => break,
            }
        }
        assert_eq!(
            is_satisfiable_by_expansion(&state.to_dqbf()),
            expected,
            "seed {seed}"
        );
    }
}

/// Growing a dependency set is monotone: if ψ is satisfiable, letting
/// an existential observe more universals keeps it satisfiable.
#[test]
fn dependency_growth_is_monotone() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x4000 + seed);
        let spec = random_spec(&mut rng);
        let d = build(&spec);
        if !is_satisfiable_by_expansion(&d) {
            continue;
        }
        let mut widened = spec.clone();
        let idx = rng.gen_range(0..widened.dep_masks.len());
        widened.dep_masks[idx] = 0xFF; // depend on everything
        let w = build(&widened);
        assert!(
            is_satisfiable_by_expansion(&w),
            "seed {seed}: widening dependencies lost satisfiability"
        );
        let mut session = Session::builder().build().expect("defaults are valid");
        assert_eq!(session.solve(&w), Outcome::Sat, "seed {seed}");
    }
}

/// Skolem extraction succeeds exactly on satisfiable instances and its
/// certificates verify.
#[test]
fn skolem_certificates_verify() {
    use hqs_core::skolem::extract_skolem;
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5000 + seed);
        let d = build(&random_spec(&mut rng));
        match extract_skolem(&d) {
            Some(cert) => {
                assert!(cert.verify(&d), "seed {seed}");
                let mut session = Session::builder().build().expect("defaults are valid");
                assert_eq!(session.solve(&d), Outcome::Sat, "seed {seed}");
            }
            None => {
                let mut session = Session::builder().build().expect("defaults are valid");
                assert_eq!(session.solve(&d), Outcome::Unsat, "seed {seed}");
            }
        }
    }
}

/// The dependency graph APIs are mutually consistent: cyclic ⇔ some
/// binary cycle ⇔ linearise fails.
#[test]
fn depgraph_consistency() {
    use hqs_core::depgraph::{linearise, DepGraph};
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x6000 + seed);
        let d = build(&random_spec(&mut rng));
        let deps: Vec<(Var, VarSet)> = d
            .existentials()
            .iter()
            .map(|&y| {
                let set = d.dependencies(y).expect("declared existential").clone();
                (y, set)
            })
            .collect();
        let graph = DepGraph::new(&deps);
        let cyclic = graph.is_cyclic();
        assert_eq!(cyclic, !graph.binary_cycles().is_empty(), "seed {seed}");
        assert_eq!(
            cyclic,
            linearise(d.universals(), &deps).is_none(),
            "seed {seed}"
        );
    }
}
