//! Property-based tests of the DQBF layer: solver-vs-oracle agreement,
//! elimination soundness, preprocessing soundness and monotonicity laws.

use hqs_base::{Lit, Var, VarSet};
use hqs_core::elim::AigDqbf;
use hqs_core::expand::is_satisfiable_by_expansion;
use hqs_core::{Dqbf, DqbfResult, ElimStrategy, HqsConfig, HqsSolver};
use proptest::prelude::*;

const MAX_UNIVERSALS: u32 = 4;
const MAX_EXISTENTIALS: u32 = 3;

#[derive(Clone, Debug)]
struct RandomDqbf {
    dep_masks: Vec<u8>,
    clauses: Vec<Vec<(u8, bool)>>,
}

fn arb_dqbf() -> impl Strategy<Value = RandomDqbf> {
    (
        prop::collection::vec(any::<u8>(), 1..=MAX_EXISTENTIALS as usize),
        prop::collection::vec(
            prop::collection::vec((any::<u8>(), any::<bool>()), 1..4),
            1..10,
        ),
    )
        .prop_map(|(dep_masks, clauses)| RandomDqbf { dep_masks, clauses })
}

fn build(spec: &RandomDqbf) -> Dqbf {
    let mut d = Dqbf::new();
    let xs: Vec<Var> = (0..MAX_UNIVERSALS).map(|_| d.add_universal()).collect();
    let mut all = xs.clone();
    for &mask in &spec.dep_masks {
        let deps: Vec<Var> = xs
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &x)| x)
            .collect();
        all.push(d.add_existential(deps));
    }
    for clause in &spec.clauses {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&(pick, neg)| Lit::new(all[pick as usize % all.len()], neg))
            .collect();
        d.add_clause(lits);
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// HQS agrees with the expansion oracle in every configuration.
    #[test]
    fn hqs_matches_oracle(spec in arb_dqbf()) {
        let d = build(&spec);
        let expected = if is_satisfiable_by_expansion(&d) {
            DqbfResult::Sat
        } else {
            DqbfResult::Unsat
        };
        prop_assert_eq!(HqsSolver::new().solve(&d), expected);
        let no_opt = HqsConfig {
            preprocess: false,
            gate_detection: false,
            unit_pure: false,
            strategy: ElimStrategy::AllUniversals,
            ..HqsConfig::default()
        };
        prop_assert_eq!(HqsSolver::with_config(no_opt).solve(&d), expected);
    }

    /// Theorem 1 (universal elimination) preserves the truth value.
    #[test]
    fn universal_elimination_is_sound(spec in arb_dqbf(), pick in 0..MAX_UNIVERSALS) {
        let d = build(&spec);
        let expected = is_satisfiable_by_expansion(&d);
        let mut state = AigDqbf::from_dqbf(&d);
        let x = state.universals()[pick as usize];
        state.eliminate_universal(x);
        prop_assert_eq!(is_satisfiable_by_expansion(&state.to_dqbf()), expected);
    }

    /// Theorem 2 (existential elimination of total-dependency variables)
    /// preserves the truth value.
    #[test]
    fn existential_elimination_is_sound(spec in arb_dqbf()) {
        let d = build(&spec);
        let expected = is_satisfiable_by_expansion(&d);
        let mut state = AigDqbf::from_dqbf(&d);
        state.eliminate_total_existentials();
        prop_assert_eq!(is_satisfiable_by_expansion(&state.to_dqbf()), expected);
    }

    /// Unit/pure rounds (Theorems 5/6) preserve the truth value; an
    /// `Unsat` verdict is always confirmed by the oracle.
    #[test]
    fn unit_pure_is_sound(spec in arb_dqbf()) {
        let d = build(&spec);
        let expected = is_satisfiable_by_expansion(&d);
        let mut state = AigDqbf::from_dqbf(&d);
        loop {
            match state.apply_unit_pure() {
                Some(false) => {
                    prop_assert!(!expected, "unit/pure declared Unsat wrongly");
                    return Ok(());
                }
                Some(true) => {}
                None => break,
            }
        }
        prop_assert_eq!(is_satisfiable_by_expansion(&state.to_dqbf()), expected);
    }

    /// Growing a dependency set is monotone: if ψ is satisfiable, letting
    /// an existential observe more universals keeps it satisfiable.
    #[test]
    fn dependency_growth_is_monotone(spec in arb_dqbf(), which in 0..MAX_EXISTENTIALS) {
        let d = build(&spec);
        if !is_satisfiable_by_expansion(&d) {
            return Ok(());
        }
        let mut widened = spec.clone();
        let idx = which as usize % widened.dep_masks.len();
        widened.dep_masks[idx] = 0xFF; // depend on everything
        let w = build(&widened);
        prop_assert!(is_satisfiable_by_expansion(&w),
            "widening dependencies lost satisfiability");
        prop_assert_eq!(HqsSolver::new().solve(&w), DqbfResult::Sat);
    }

    /// Preprocessing preserves the truth value even with gate re-encoding
    /// (gates are only extracted when dependency-safe, so composing them
    /// back with full dependencies is equivalent).
    #[test]
    fn skolem_certificates_verify(spec in arb_dqbf()) {
        use hqs_core::skolem::extract_skolem;
        let d = build(&spec);
        match extract_skolem(&d) {
            Some(cert) => {
                prop_assert!(cert.verify(&d));
                prop_assert_eq!(HqsSolver::new().solve(&d), DqbfResult::Sat);
            }
            None => {
                prop_assert_eq!(HqsSolver::new().solve(&d), DqbfResult::Unsat);
            }
        }
    }

    /// The dependency graph APIs are mutually consistent: cyclic ⇔ some
    /// binary cycle ⇔ linearise fails.
    #[test]
    fn depgraph_consistency(spec in arb_dqbf()) {
        use hqs_core::depgraph::{linearise, DepGraph};
        let d = build(&spec);
        let deps: Vec<(Var, VarSet)> = d
            .existentials()
            .iter()
            .map(|&y| (y, d.dependencies(y).unwrap().clone()))
            .collect();
        let graph = DepGraph::new(&deps);
        let cyclic = graph.is_cyclic();
        prop_assert_eq!(cyclic, !graph.binary_cycles().is_empty());
        prop_assert_eq!(cyclic, linearise(d.universals(), &deps).is_none());
    }
}
