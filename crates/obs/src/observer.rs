//! The `Observer` trait and the cheap `Obs` handle the solvers hold.

use crate::metric::{Metric, Phase};
use std::cell::Cell;
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;

/// A sink for solver events.
///
/// All methods default to no-ops so implementations only override what
/// they store; [`NoopObserver`] overrides nothing and is the "attached
/// but inert" observer used to verify instrumentation cannot perturb a
/// solve. The standard implementation is
/// [`MetricsObserver`](crate::MetricsObserver).
///
/// Implementations must be `Send + Sync`: the portfolio engine shares
/// one observer between racing workers, and the batch scheduler calls in
/// from worker threads.
pub trait Observer: Send + Sync {
    /// Adds `delta` to a counter metric.
    fn counter_add(&self, metric: Metric, delta: u64) {
        let _ = (metric, delta);
    }

    /// Raises a gauge metric to at least `value`.
    fn gauge_max(&self, metric: Metric, value: u64) {
        let _ = (metric, value);
    }

    /// Records a finished phase span.
    ///
    /// `start`/`end` are monotonic timestamps; `tid` is a stable per
    /// OS-thread identifier and `depth` the span-nesting depth on that
    /// thread (0 = outermost), from which exporters rebuild the tree.
    fn span_record(&self, phase: Phase, start: Instant, end: Instant, tid: u64, depth: u32) {
        let _ = (phase, start, end, tid, depth);
    }
}

/// An observer that stores nothing.
///
/// Attaching it exercises the *enabled* instrumentation path (clock
/// reads, depth tracking) without any storage, which is what the
/// "observer must not perturb the solve" tests race against.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {}

thread_local! {
    /// Span-nesting depth of the current thread (enabled handles only).
    static SPAN_DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Cached per-thread identifier (hash of [`std::thread::ThreadId`]);
    /// `u64::MAX` means "not yet computed".
    static THREAD_TAG: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// A stable small identifier for the current OS thread.
fn thread_tag() -> u64 {
    THREAD_TAG.with(|tag| {
        let cached = tag.get();
        if cached != u64::MAX {
            return cached;
        }
        let mut hasher = DefaultHasher::new();
        // analyze::allow(determinism): trace-row labels only — the tag never reaches a verdict or certificate
        std::thread::current().id().hash(&mut hasher);
        // Reserve the sentinel; collisions merely merge two trace rows.
        let fresh = hasher.finish() & (u64::MAX >> 1);
        tag.set(fresh);
        fresh
    })
}

/// The handle every instrumented component holds.
///
/// `Obs` is either *disabled* (the default — every emit is a branch on
/// `None`, with no allocation, atomics or clock reads) or *attached* to
/// a shared [`Observer`]. Cloning shares the observer, so one handle
/// fans out through a whole solver pipeline.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<dyn Observer>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Obs {
    /// The disabled handle: every emit is a no-op branch.
    #[must_use]
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// A handle attached to `observer`.
    #[must_use]
    pub fn attached(observer: Arc<dyn Observer>) -> Self {
        Obs {
            inner: Some(observer),
        }
    }

    /// Whether an observer is attached.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The attached observer, if any — for re-attaching the same sink
    /// through a builder (the engine hands its shared observer to every
    /// worker session this way).
    #[must_use]
    pub fn observer(&self) -> Option<Arc<dyn Observer>> {
        self.inner.clone()
    }

    /// Adds `delta` to a counter metric. No-op when disabled.
    #[inline]
    pub fn add(&self, metric: Metric, delta: u64) {
        if let Some(observer) = &self.inner {
            observer.counter_add(metric, delta);
        }
    }

    /// Raises a gauge to at least `value`. No-op when disabled.
    #[inline]
    pub fn gauge_max(&self, metric: Metric, value: u64) {
        if let Some(observer) = &self.inner {
            observer.gauge_max(metric, value);
        }
    }

    /// Opens a phase span, closed (and recorded) when the guard drops.
    ///
    /// Disabled handles return an inert guard without reading the clock.
    #[must_use]
    pub fn span(&self, phase: Phase) -> SpanGuard {
        match &self.inner {
            None => SpanGuard { active: None },
            Some(observer) => {
                let depth = SPAN_DEPTH.with(|d| {
                    let depth = d.get();
                    d.set(depth.saturating_add(1));
                    depth
                });
                SpanGuard {
                    active: Some(ActiveSpan {
                        observer: Arc::clone(observer),
                        phase,
                        // analyze::allow(determinism): span timing is observability metadata, never part of solver output
                        start: Instant::now(),
                        tid: thread_tag(),
                        depth,
                    }),
                }
            }
        }
    }
}

/// The live state of an open span (enabled handles only).
struct ActiveSpan {
    observer: Arc<dyn Observer>,
    phase: Phase,
    start: Instant,
    tid: u64,
    depth: u32,
}

/// An RAII guard that records its phase span when dropped.
///
/// Returned by [`Obs::span`]; hold it for the duration of the phase
/// (`let _guard = obs.span(…)`).
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Closes the span *without* recording it.
    ///
    /// For probe-style phases that may turn out to be no-ops (e.g. "try
    /// one existential elimination"): open the span, and cancel it on
    /// the path where nothing happened so traces only show real work.
    pub fn cancel(mut self) {
        if self.active.take().is_some() {
            SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(span) = self.active.take() {
            SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            span.observer
                .span_record(span.phase, span.start, Instant::now(), span.tid, span.depth);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Recording {
        counters: Mutex<Vec<(Metric, u64)>>,
        spans: Mutex<Vec<(Phase, u32)>>,
    }

    impl Observer for Recording {
        fn counter_add(&self, metric: Metric, delta: u64) {
            if let Ok(mut log) = self.counters.lock() {
                log.push((metric, delta));
            }
        }

        fn span_record(&self, phase: Phase, _s: Instant, _e: Instant, _tid: u64, depth: u32) {
            if let Ok(mut log) = self.spans.lock() {
                log.push((phase, depth));
            }
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.add(Metric::SatConflicts, 1);
        obs.gauge_max(Metric::AigPeakNodes, 1);
        drop(obs.span(Phase::Total));
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let recording = Arc::new(Recording::default());
        let obs = Obs::attached(recording.clone());
        {
            let _outer = obs.span(Phase::Total);
            {
                let _inner = obs.span(Phase::Preprocess);
            }
            obs.add(Metric::SatCalls, 2);
        }
        let spans = recording.spans.lock().expect("span log");
        // Inner closes first, outer second; depths reflect nesting.
        assert_eq!(
            spans.as_slice(),
            &[(Phase::Preprocess, 1), (Phase::Total, 0)]
        );
        let counters = recording.counters.lock().expect("counter log");
        assert_eq!(counters.as_slice(), &[(Metric::SatCalls, 2)]);
    }

    #[test]
    fn noop_observer_accepts_everything() {
        let obs = Obs::attached(Arc::new(NoopObserver));
        assert!(obs.is_enabled());
        obs.add(Metric::SatConflicts, 3);
        let _g = obs.span(Phase::ElimLoop);
    }
}
