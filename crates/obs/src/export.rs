//! Exporters: human summary table, stable JSON, Chrome trace-event JSON.
//!
//! All three read a [`MetricsSnapshot`]; none of them touch live solver
//! state. The JSON exporters emit keys in a fixed order (schema order
//! for metrics, record order for spans) so output is byte-stable for a
//! given snapshot — the golden tests rely on that.

use crate::metric::{Metric, MetricKind};
use crate::registry::{MetricsSnapshot, SCHEMA_VERSION};
use std::fmt::Write as _;

/// Formats a nanosecond duration as seconds with millisecond precision.
fn secs(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e9)
}

/// Formats a nanosecond offset as fractional microseconds (the unit of
/// Chrome trace-event timestamps).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

impl MetricsSnapshot {
    /// Renders the human-readable summary: nonzero metrics grouped as
    /// counters and gauges, followed by the phase tree with total and
    /// self times per span.
    #[must_use]
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        let width = Metric::ALL
            .iter()
            .map(|m| m.name().len())
            .max()
            .unwrap_or(0);
        let _ = writeln!(out, "metrics:");
        let mut any = false;
        for (metric, value) in &self.values {
            if *value == 0 {
                continue;
            }
            any = true;
            let tag = match metric.kind() {
                MetricKind::Counter => " ",
                MetricKind::Gauge => "^",
            };
            let _ = writeln!(out, "  {:width$} {tag} {value}", metric.name());
        }
        if !any {
            let _ = writeln!(out, "  (all zero)");
        }
        let tree = self.phase_tree();
        if !tree.is_empty() {
            let _ = writeln!(out, "phases (total / self, seconds):");
            for node in &tree {
                let indent = "  ".repeat(node.span.depth as usize + 1);
                let _ = writeln!(
                    out,
                    "{indent}{:16} {:>9} / {:>9}",
                    node.span.phase.name(),
                    secs(node.span.dur_ns),
                    secs(node.self_ns),
                );
            }
        }
        out
    }

    /// Serialises the snapshot under the stable [`SCHEMA_VERSION`]
    /// schema.
    ///
    /// Shape (key order fixed):
    ///
    /// ```json
    /// {"schema":"hqs-metrics/1","epoch_unix_ns":0,
    ///  "counters":{"sat_calls":0,...},"gauges":{"elim_set_size":0,...},
    ///  "spans":[{"phase":"total","start_ns":0,"dur_ns":0,"tid":0,"depth":0}]}
    /// ```
    ///
    /// Every counter and gauge appears even when zero, so consumers can
    /// index by name without existence checks.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"{SCHEMA_VERSION}\",\"epoch_unix_ns\":{}",
            self.epoch_unix_ns
        );
        for (label, kind) in [
            ("counters", MetricKind::Counter),
            ("gauges", MetricKind::Gauge),
        ] {
            let _ = write!(out, ",\"{label}\":{{");
            let mut first = true;
            for (metric, value) in &self.values {
                if metric.kind() != kind {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\"{}\":{value}", metric.name());
            }
            out.push('}');
        }
        out.push_str(",\"spans\":[");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"phase\":\"{}\",\"start_ns\":{},\"dur_ns\":{},\"tid\":{},\"depth\":{}}}",
                span.phase.name(),
                span.start_ns,
                span.dur_ns,
                span.tid,
                span.depth,
            );
        }
        out.push_str("]}");
        out
    }

    /// Serialises only the *nonzero* metrics as one flat JSON object
    /// (`{"sat_calls":3,...}`), smallest useful form for embedding into
    /// per-job JSONL records. Returns `{}` when nothing was recorded.
    ///
    /// Unlike [`to_json`](MetricsSnapshot::to_json) this is *not* under
    /// the schema-stability promise — zero metrics are elided, so keys
    /// come and go with the workload.
    #[must_use]
    pub fn to_json_compact(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (metric, value) in &self.values {
            if *value == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{value}", metric.name());
        }
        out.push('}');
        out
    }

    /// Serialises the spans as Chrome trace-event JSON.
    ///
    /// Each span becomes a complete event (`"ph":"X"`) with
    /// microsecond timestamps relative to the epoch; counters and gauges
    /// ride along as a single metadata-style counter event stream is
    /// deliberately *not* emitted — the JSON schema covers them, the
    /// trace covers time. Load the output in `chrome://tracing` or
    /// [Perfetto](https://ui.perfetto.dev).
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"hqs\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{}}}",
                span.phase.name(),
                micros(span.start_ns),
                micros(span.dur_ns),
                span.tid,
            );
        }
        out.push_str("]}");
        out
    }
}

/// A tiny structural validator for the exporters' output, shared with
/// the golden tests and the CI smoke job via `hqs_obs`.
///
/// This is not a JSON parser: it checks balanced braces/brackets outside
/// strings and that the required top-level keys appear, which is enough
/// to catch a broken writer without pulling in a parsing dependency.
#[must_use]
pub fn looks_like_valid_export(json: &str, required_keys: &[&str]) -> bool {
    let mut depth: i64 = 0;
    let mut in_string = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0
        && !in_string
        && required_keys
            .iter()
            .all(|k| json.contains(&format!("\"{k}\":")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Phase;
    use crate::registry::SpanRecord;

    fn sample() -> MetricsSnapshot {
        let mut values: Vec<(Metric, u64)> = Metric::ALL.iter().map(|&m| (m, 0)).collect();
        for slot in &mut values {
            if slot.0 == Metric::SatConflicts {
                slot.1 = 7;
            }
            if slot.0 == Metric::AigPeakNodes {
                slot.1 = 123;
            }
        }
        MetricsSnapshot {
            epoch_unix_ns: 42,
            values,
            spans: vec![
                SpanRecord {
                    phase: Phase::Total,
                    start_ns: 0,
                    dur_ns: 2_000_000,
                    tid: 9,
                    depth: 0,
                },
                SpanRecord {
                    phase: Phase::Preprocess,
                    start_ns: 500_000,
                    dur_ns: 1_000_000,
                    tid: 9,
                    depth: 1,
                },
            ],
        }
    }

    #[test]
    fn json_has_schema_and_every_metric() {
        let json = sample().to_json();
        assert!(json.starts_with("{\"schema\":\"hqs-metrics/1\""));
        for m in Metric::ALL {
            assert!(
                json.contains(&format!("\"{}\":", m.name())),
                "missing {}",
                m.name()
            );
        }
        assert!(looks_like_valid_export(
            &json,
            &["schema", "epoch_unix_ns", "counters", "gauges", "spans"]
        ));
    }

    #[test]
    fn chrome_trace_is_complete_events() {
        let trace = sample().to_chrome_trace();
        assert!(trace.contains("\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"name\":\"preprocess\""));
        // 500_000 ns = 500 µs.
        assert!(trace.contains("\"ts\":500.000"));
        assert!(looks_like_valid_export(
            &trace,
            &["displayTimeUnit", "traceEvents"]
        ));
    }

    #[test]
    fn summary_lists_nonzero_metrics_and_phase_tree() {
        let summary = sample().render_summary();
        assert!(summary.contains("sat_conflicts"));
        assert!(summary.contains("aig_peak_nodes"));
        assert!(
            !summary.contains("maxsat_calls"),
            "zero metric leaked: {summary}"
        );
        assert!(summary.contains("total"));
        assert!(summary.contains("preprocess"));
    }

    #[test]
    fn validator_rejects_truncated_json() {
        assert!(!looks_like_valid_export("{\"a\":[1,2", &["a"]));
        assert!(!looks_like_valid_export("{\"a\":1}", &["b"]));
        assert!(looks_like_valid_export("{\"a\":1}", &["a"]));
    }
}
