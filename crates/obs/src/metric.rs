//! The closed vocabulary of metrics and phases.
//!
//! Both enums are deliberately *closed*: the JSON schema promises a
//! stable key set per schema version, so adding a metric or phase is an
//! interface change (extend the enum, the `ALL` table and the name — the
//! exhaustive matches below make it impossible to forget one).

/// How a metric aggregates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetricKind {
    /// A monotone sum; merged by addition.
    Counter,
    /// A high-water mark; merged by maximum.
    Gauge,
}

macro_rules! metrics {
    ($(($variant:ident, $name:literal, $kind:ident, $doc:literal)),+ $(,)?) => {
        /// A named measurement of the solver stack.
        ///
        /// The variant order is the order of the JSON schema and the
        /// summary table; it groups metrics by subsystem (SAT, MaxSAT,
        /// elimination loop, AIG rewriting, preprocessing, QBF backend,
        /// certification).
        #[derive(Clone, Copy, PartialEq, Eq, Debug)]
        pub enum Metric {
            $(#[doc = $doc] $variant,)+
        }

        impl Metric {
            /// Every metric, in schema order.
            pub const ALL: &'static [Metric] = &[$(Metric::$variant,)+];

            /// The number of metrics.
            pub const COUNT: usize = Metric::ALL.len();

            /// The stable snake_case name used in the JSON schema and the
            /// summary table.
            #[must_use]
            pub fn name(self) -> &'static str {
                match self {
                    $(Metric::$variant => $name,)+
                }
            }

            /// Whether the metric is a counter or a gauge.
            #[must_use]
            pub fn kind(self) -> MetricKind {
                match self {
                    $(Metric::$variant => MetricKind::$kind,)+
                }
            }

            /// The dense index of the metric (its position in
            /// [`Metric::ALL`]), used by the registry's flat arrays.
            #[must_use]
            pub fn index(self) -> usize {
                self as usize
            }
        }
    };
}

metrics! {
    // CDCL SAT substrate.
    (SatCalls, "sat_calls", Counter, "CDCL solve calls issued anywhere in the stack."),
    (SatConflicts, "sat_conflicts", Counter, "CDCL conflicts analysed."),
    (SatPropagations, "sat_propagations", Counter, "CDCL unit propagations."),
    (SatDecisions, "sat_decisions", Counter, "CDCL decisions."),
    (SatRestarts, "sat_restarts", Counter, "CDCL restarts."),
    (SatRestartSwitches, "sat_restart_switches", Counter,
        "Hybrid restart EMA↔Luby direction changes."),
    (SatChronoBacktracks, "sat_chrono_backtracks", Counter,
        "Conflicts resolved by chronological (one-level) backtracking."),
    (SatArenaGcs, "sat_arena_gcs", Counter, "Clause-arena garbage collections."),
    (SatArenaReclaimedWords, "sat_arena_reclaimed_words", Counter,
        "Arena words reclaimed by garbage collection."),
    (SatCoreClausesPeak, "sat_core_clauses_peak", Gauge,
        "Largest core (glue) learnt-clause tier observed."),
    (SatTier2ClausesPeak, "sat_tier2_clauses_peak", Gauge,
        "Largest tier2 learnt-clause tier observed."),
    (SatLocalClausesPeak, "sat_local_clauses_peak", Gauge,
        "Largest local learnt-clause tier observed."),
    // MaxSAT elimination-set selection.
    (MaxSatCalls, "maxsat_calls", Counter, "Partial-MaxSAT optimisations solved."),
    (MaxSatSoftClauses, "maxsat_soft_clauses", Counter, "Soft clauses across all MaxSAT calls."),
    (ElimSetsComputed, "elim_sets_computed", Counter, "Elimination-set (re)computations."),
    (ElimSetChosen, "elim_set_chosen", Counter,
        "Universals chosen for elimination, summed over all set computations."),
    (ElimSetSize, "elim_set_size", Gauge, "Largest single elimination set chosen."),
    // The DQBF main loop.
    (UniversalElims, "universal_elims", Counter, "Universal variables eliminated (Theorem 1)."),
    (ExistentialElims, "existential_elims", Counter,
        "Existential variables eliminated (Theorem 2)."),
    (UnitPureElims, "unit_pure_elims", Counter, "Unit/pure eliminations (Theorems 5/6)."),
    (ElimNodeGrowth, "elim_node_growth", Counter,
        "AIG nodes added across universal eliminations (sum of per-step growth)."),
    (AigPeakNodes, "aig_peak_nodes", Gauge, "Largest AIG node count observed."),
    (AigPeakLevel, "aig_peak_level", Gauge, "Deepest AIG (root cone depth) observed."),
    // AIG rewriting.
    (FraigSweeps, "fraig_sweeps", Counter, "FRAIG SAT-sweep passes."),
    (FraigMerges, "fraig_merges", Counter, "Nodes merged by proven FRAIG equivalences."),
    (CompactRuns, "compact_runs", Counter, "AIG garbage-collection compactions."),
    (CompactFreedNodes, "compact_freed_nodes", Counter, "Nodes reclaimed by compaction."),
    // CNF preprocessing rule hits.
    (PreprocessUnits, "preprocess_units", Counter, "Units propagated in preprocessing."),
    (PreprocessUniversalReductions, "preprocess_universal_reductions", Counter,
        "Universal reductions in preprocessing."),
    (PreprocessPures, "preprocess_pures", Counter, "Pure literals eliminated in preprocessing."),
    (PreprocessEquivalences, "preprocess_equivalences", Counter,
        "Equivalent variables substituted in preprocessing."),
    (PreprocessSubsumed, "preprocess_subsumed", Counter, "Clauses subsumed in preprocessing."),
    (PreprocessStrengthened, "preprocess_strengthened", Counter,
        "Clauses strengthened by self-subsumption in preprocessing."),
    (PreprocessGates, "preprocess_gates", Counter, "Tseitin gates detected in preprocessing."),
    // QBF backend (block-elimination finish).
    (QbfUniversalElims, "qbf_universal_elims", Counter,
        "Universal block-elimination steps in the QBF backend."),
    (QbfExistentialElims, "qbf_existential_elims", Counter,
        "Existential block-elimination steps in the QBF backend."),
    (QbfUnitPureElims, "qbf_unit_pure_elims", Counter,
        "Unit/pure eliminations in the QBF backend."),
    (QbfSatCalls, "qbf_sat_calls", Counter, "Final SAT checks issued by the QBF backend."),
    (QbfPeakNodes, "qbf_peak_nodes", Gauge, "Largest AIG seen inside the QBF backend."),
    // Cross-request warm caches (the serving architecture).
    (PreprocessCacheHits, "preprocess_cache_hits", Counter,
        "Preprocessing results served from the warm cache."),
    (PreprocessCacheMisses, "preprocess_cache_misses", Counter,
        "Preprocessing cache lookups that fell through to a cold run."),
    (FraigCacheHits, "fraig_cache_hits", Counter,
        "FRAIG sweeps replayed from a cached reduced cone."),
    (FraigCacheMisses, "fraig_cache_misses", Counter,
        "FRAIG cache lookups that fell through to a cold sweep."),
    (CacheEvictions, "cache_evictions", Counter,
        "Warm-cache entries evicted to stay inside the byte budgets."),
    // Certification.
    (CertifiedSatCalls, "certified_sat_calls", Counter,
        "Internal SAT calls whose DRAT proof passed the independent checker."),
}

macro_rules! phases {
    ($(($variant:ident, $name:literal, $doc:literal)),+ $(,)?) => {
        /// A named phase of the solve pipeline, used for span events.
        ///
        /// Phases nest: `Total` wraps the whole run, the elimination loop
        /// wraps the per-variable phases, and so on. The hierarchy is
        /// recovered from span nesting at export time, not hard-coded
        /// here.
        #[derive(Clone, Copy, PartialEq, Eq, Debug)]
        pub enum Phase {
            $(#[doc = $doc] $variant,)+
        }

        impl Phase {
            /// Every phase, in pipeline order.
            pub const ALL: &'static [Phase] = &[$(Phase::$variant,)+];

            /// The stable kebab-case name used by every exporter.
            #[must_use]
            pub fn name(self) -> &'static str {
                match self {
                    $(Phase::$variant => $name,)+
                }
            }
        }
    };
}

phases! {
    (Total, "total", "The whole run, from parse to verdict."),
    (Parse, "parse", "(DQ)DIMACS parsing."),
    (InitialSat, "initial-sat", "The optional up-front plain SAT call on the matrix."),
    (Preprocess, "preprocess", "The CNF preprocessing pipeline (paper §III-C)."),
    (BuildAig, "build-aig", "AIG construction and gate composition."),
    (ElimLoop, "elim-loop", "The DQBF main loop (universal/existential elimination)."),
    (ElimSet, "elim-set", "Dependency-graph analysis and MaxSAT elimination-set selection."),
    (ElimUniversal, "elim-universal", "One Theorem-1 universal elimination (plus reduction)."),
    (ElimExistential, "elim-existential", "One Theorem-2 existential elimination."),
    (QbfFinish, "qbf-finish", "Deciding the linearised remainder with the QBF backend."),
    (Certify, "certify", "Certificate extraction and verification."),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_indices_are_dense_and_names_unique() {
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Metric::COUNT);
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }

    #[test]
    fn phase_names_unique() {
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::ALL.len());
    }

    #[test]
    fn gauges_are_exactly_the_peaks() {
        for m in Metric::ALL {
            let is_gauge = m.kind() == MetricKind::Gauge;
            let name = m.name();
            assert_eq!(
                is_gauge,
                name.contains("peak") || name == "elim_set_size",
                "unexpected kind for {name}"
            );
        }
    }
}
