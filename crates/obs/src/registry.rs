//! The sharded metrics registry and the standard recording observer.

use crate::metric::{Metric, MetricKind, Phase};
use crate::observer::Observer;
use std::cell::Cell;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// The schema identifier stamped into every metrics JSON export.
///
/// The promise: within one schema version, the set of top-level keys,
/// the set of counter/gauge names and the span-object shape never
/// change. Additions bump the version.
pub const SCHEMA_VERSION: &str = "hqs-metrics/1";

/// Number of shards; a power of two so the pick is a mask.
const SHARDS: usize = 8;

thread_local! {
    /// Cached shard index of the current thread (`usize::MAX` = unset).
    static SHARD_PICK: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// One shard: a flat counter and gauge slot per metric.
struct Shard {
    counters: Vec<AtomicU64>,
    gauges: Vec<AtomicU64>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            counters: (0..Metric::COUNT).map(|_| AtomicU64::new(0)).collect(),
            gauges: (0..Metric::COUNT).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// A thread-safe store of counters and gauges.
///
/// Writes go to one of eight shards picked per thread, so
/// concurrent workers (the portfolio race, the batch scheduler) do not
/// contend on a cache line; reads ([`MetricsRegistry::counter`],
/// snapshots) sum or max over the shards. All operations are relaxed
/// atomics — metrics tolerate reordering, they only have to add up.
pub struct MetricsRegistry {
    shards: Vec<Shard>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

/// The shard the current thread writes to.
fn shard_pick() -> usize {
    SHARD_PICK.with(|pick| {
        let cached = pick.get();
        if cached != usize::MAX {
            return cached;
        }
        let mut hasher = DefaultHasher::new();
        // analyze::allow(determinism): shard choice only spreads contention — counters are summed over all shards at snapshot
        std::thread::current().id().hash(&mut hasher);
        let fresh = (hasher.finish() as usize) & (SHARDS - 1);
        pick.set(fresh);
        fresh
    })
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
        }
    }

    /// Adds `delta` to a counter. Allocation- and panic-free (hot-path
    /// ratcheted): a relaxed `fetch_add` on the calling thread's shard.
    #[inline]
    pub fn add(&self, metric: Metric, delta: u64) {
        if let Some(shard) = self.shards.get(shard_pick()) {
            if let Some(slot) = shard.counters.get(metric.index()) {
                slot.fetch_add(delta, Ordering::Relaxed);
            }
        }
    }

    /// Raises a gauge to at least `value`. Allocation- and panic-free
    /// (hot-path ratcheted): a relaxed `fetch_max` on the calling
    /// thread's shard.
    #[inline]
    pub fn gauge_max(&self, metric: Metric, value: u64) {
        if let Some(shard) = self.shards.get(shard_pick()) {
            if let Some(slot) = shard.gauges.get(metric.index()) {
                slot.fetch_max(value, Ordering::Relaxed);
            }
        }
    }

    /// The current value of `metric`, summed (counters) or maxed
    /// (gauges) over all shards.
    #[must_use]
    pub fn counter(&self, metric: Metric) -> u64 {
        let index = metric.index();
        match metric.kind() {
            MetricKind::Counter => self
                .shards
                .iter()
                .filter_map(|s| s.counters.get(index))
                .map(|slot| slot.load(Ordering::Relaxed))
                .sum(),
            MetricKind::Gauge => self
                .shards
                .iter()
                .filter_map(|s| s.gauges.get(index))
                .map(|slot| slot.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0),
        }
    }
}

/// One recorded phase span, in nanoseconds relative to the observer's
/// epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The phase the span measures.
    pub phase: Phase,
    /// Start offset from the observer's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration, in nanoseconds.
    pub dur_ns: u64,
    /// Stable per-thread identifier.
    pub tid: u64,
    /// Span-nesting depth on that thread (0 = outermost).
    pub depth: u32,
}

/// The standard [`Observer`]: counters and gauges in a
/// [`MetricsRegistry`], spans in a mutex-guarded log.
///
/// Span recording takes a lock, which is fine because spans are emitted
/// at *phase boundaries* (a few hundred per solve), never inside hot
/// loops — the hot-path ratchet keeps it that way.
pub struct MetricsObserver {
    registry: MetricsRegistry,
    spans: Mutex<Vec<SpanRecord>>,
    /// Monotonic epoch all span offsets are relative to.
    epoch: Instant,
    /// Wall-clock time of the epoch (nanoseconds since Unix epoch), so
    /// traces can be aligned with external logs.
    epoch_unix_ns: u64,
}

impl Default for MetricsObserver {
    fn default() -> Self {
        MetricsObserver::new()
    }
}

impl MetricsObserver {
    /// A fresh observer; its epoch is "now".
    #[must_use]
    pub fn new() -> Self {
        let epoch_unix_ns = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        MetricsObserver {
            registry: MetricsRegistry::new(),
            spans: Mutex::new(Vec::new()),
            epoch: Instant::now(),
            epoch_unix_ns,
        }
    }

    /// Direct access to the registry (e.g. for merging).
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// A point-in-time copy of everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let spans = match self.spans.lock() {
            Ok(spans) => spans.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        };
        let mut sorted = spans;
        sorted.sort_by_key(|s| (s.tid, s.start_ns, s.depth));
        MetricsSnapshot {
            epoch_unix_ns: self.epoch_unix_ns,
            values: Metric::ALL
                .iter()
                .map(|&m| (m, self.registry.counter(m)))
                .collect(),
            spans: sorted,
        }
    }
}

impl Observer for MetricsObserver {
    fn counter_add(&self, metric: Metric, delta: u64) {
        self.registry.add(metric, delta);
    }

    fn gauge_max(&self, metric: Metric, value: u64) {
        self.registry.gauge_max(metric, value);
    }

    fn span_record(&self, phase: Phase, start: Instant, end: Instant, tid: u64, depth: u32) {
        let start_ns = u64::try_from(start.saturating_duration_since(self.epoch).as_nanos())
            .unwrap_or(u64::MAX);
        let dur_ns =
            u64::try_from(end.saturating_duration_since(start).as_nanos()).unwrap_or(u64::MAX);
        let record = SpanRecord {
            phase,
            start_ns,
            dur_ns,
            tid,
            depth,
        };
        match self.spans.lock() {
            Ok(mut spans) => spans.push(record),
            Err(poisoned) => poisoned.into_inner().push(record),
        }
    }
}

/// A point-in-time copy of a [`MetricsObserver`]'s state, and the input
/// of every exporter.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Wall-clock time of the monotonic epoch (ns since Unix epoch).
    pub epoch_unix_ns: u64,
    /// Every metric with its value, in schema order ([`Metric::ALL`]).
    pub values: Vec<(Metric, u64)>,
    /// Recorded spans, sorted by `(tid, start_ns, depth)`.
    pub spans: Vec<SpanRecord>,
}

/// One node of the reconstructed phase tree
/// ([`MetricsSnapshot::phase_tree`]).
#[derive(Clone, Copy, Debug)]
pub struct PhaseNode {
    /// The span this node was built from.
    pub span: SpanRecord,
    /// Nanoseconds spent in this span *excluding* child spans on the
    /// same thread.
    pub self_ns: u64,
}

impl MetricsSnapshot {
    /// The value of `metric` in this snapshot.
    #[must_use]
    pub fn counter(&self, metric: Metric) -> u64 {
        self.values
            .iter()
            .find(|(m, _)| *m == metric)
            .map_or(0, |(_, v)| *v)
    }

    /// Merges `other` into `self`: counters add, gauges max, spans
    /// concatenate (still sorted). The epoch of `self` wins — merged
    /// snapshots are meant for same-process observers (per-worker
    /// registries), whose epochs differ by microseconds.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (slot, (metric, theirs)) in self.values.iter_mut().zip(&other.values) {
            debug_assert_eq!(slot.0, *metric);
            match metric.kind() {
                MetricKind::Counter => slot.1 += theirs,
                MetricKind::Gauge => slot.1 = slot.1.max(*theirs),
            }
        }
        self.spans.extend_from_slice(&other.spans);
        self.spans.sort_by_key(|s| (s.tid, s.start_ns, s.depth));
    }

    /// Rebuilds the span tree: depth-first order, each node carrying its
    /// self-time (duration minus child spans on the same thread).
    ///
    /// By construction the self-times of a thread's nodes sum to the
    /// total duration of its outermost spans, which is what makes the
    /// summary's "self" column add up to the wall time of the run.
    #[must_use]
    pub fn phase_tree(&self) -> Vec<PhaseNode> {
        self.spans
            .iter()
            .map(|span| {
                let end = span.start_ns.saturating_add(span.dur_ns);
                let child_ns: u64 = self
                    .spans
                    .iter()
                    .filter(|c| {
                        c.tid == span.tid
                            && c.depth == span.depth + 1
                            && c.start_ns >= span.start_ns
                            && c.start_ns.saturating_add(c.dur_ns) <= end
                    })
                    .map(|c| c.dur_ns)
                    .sum();
                PhaseNode {
                    span: *span,
                    self_ns: span.dur_ns.saturating_sub(child_ns),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_sums_over_shards() {
        let registry = MetricsRegistry::new();
        registry.add(Metric::SatConflicts, 3);
        registry.add(Metric::SatConflicts, 4);
        registry.gauge_max(Metric::AigPeakNodes, 10);
        registry.gauge_max(Metric::AigPeakNodes, 7);
        assert_eq!(registry.counter(Metric::SatConflicts), 7);
        assert_eq!(registry.counter(Metric::AigPeakNodes), 10);
    }

    #[test]
    fn registry_is_thread_safe_and_complete() {
        let registry = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        registry.add(Metric::SatPropagations, 1);
                        registry.gauge_max(Metric::QbfPeakNodes, 42);
                    }
                });
            }
        });
        assert_eq!(registry.counter(Metric::SatPropagations), 8000);
        assert_eq!(registry.counter(Metric::QbfPeakNodes), 42);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_maxes_gauges() {
        let a = MetricsObserver::new();
        a.counter_add(Metric::SatCalls, 2);
        a.gauge_max(Metric::AigPeakNodes, 5);
        let b = MetricsObserver::new();
        b.counter_add(Metric::SatCalls, 3);
        b.gauge_max(Metric::AigPeakNodes, 9);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter(Metric::SatCalls), 5);
        assert_eq!(merged.counter(Metric::AigPeakNodes), 9);
    }

    #[test]
    fn phase_tree_self_times_sum_to_root() {
        let snapshot = MetricsSnapshot {
            epoch_unix_ns: 0,
            values: Metric::ALL.iter().map(|&m| (m, 0)).collect(),
            spans: vec![
                SpanRecord {
                    phase: Phase::Total,
                    start_ns: 0,
                    dur_ns: 100,
                    tid: 1,
                    depth: 0,
                },
                SpanRecord {
                    phase: Phase::Preprocess,
                    start_ns: 10,
                    dur_ns: 30,
                    tid: 1,
                    depth: 1,
                },
                SpanRecord {
                    phase: Phase::QbfFinish,
                    start_ns: 50,
                    dur_ns: 40,
                    tid: 1,
                    depth: 1,
                },
            ],
        };
        let tree = snapshot.phase_tree();
        assert_eq!(tree.len(), 3);
        let root = tree
            .iter()
            .find(|n| n.span.phase == Phase::Total)
            .expect("root node");
        assert_eq!(root.self_ns, 30);
        let total_self: u64 = tree.iter().map(|n| n.self_ns).sum();
        assert_eq!(total_self, 100);
    }
}
