//! Structured observability for the HQS solver stack.
//!
//! The paper's evaluation hinges on *per-phase* behaviour — how many
//! universals the MaxSAT step chooses to eliminate, how large the AIG
//! grows per elimination, how long preprocessing takes compared to the
//! QBF finish — yet a solver verdict alone exposes none of it. This
//! crate provides the event model, the storage, and the exporters for
//! exactly those measurements, built from `std` only and depending only
//! on `hqs-base`.
//!
//! # Event model
//!
//! Three kinds of events cover everything the solver stack emits:
//!
//! * **Counters** — monotone sums (`sat_conflicts`, `maxsat_calls`,
//!   `universal_elims`, …), see [`Metric`].
//! * **Gauges** — high-water marks (`aig_peak_nodes`, `elim_set_size`),
//!   merged by maximum.
//! * **Spans** — hierarchical phase intervals
//!   (`total → preprocess → …  → qbf-finish`), see [`Phase`], carrying
//!   both monotonic duration and a wall-clock epoch so traces align with
//!   external logs.
//!
//! # Zero cost when disabled
//!
//! Every solver component holds an [`Obs`] handle. A disabled handle
//! (`Obs::default()` / [`Obs::disabled`]) is a `None` — each emit call
//! is a branch on an `Option`, with **no allocation, no atomics, no
//! clock reads**. The emit functions are registered in the
//! `analyze-hot-paths.toml` ratchet, so instrumentation can never grow
//! an allocation or panic path without failing CI.
//!
//! # Recording and exporting
//!
//! [`MetricsObserver`] is the standard [`Observer`]: counters and gauges
//! land in a [`MetricsRegistry`] (sharded atomics, wait-free for
//! practical purposes), spans in a mutex-guarded log (phase boundaries
//! only, never inner loops). A finished solve is summarised through
//! [`MetricsSnapshot`]:
//!
//! * [`MetricsSnapshot::render_summary`] — a human table plus the phase
//!   tree with self-times;
//! * [`MetricsSnapshot::to_json`] — a stable machine schema
//!   (`"hqs-metrics/1"`);
//! * [`MetricsSnapshot::to_chrome_trace`] — Chrome trace-event JSON
//!   loadable by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
//!
//! # Examples
//!
//! ```
//! use hqs_obs::{Metric, MetricsObserver, Obs, Phase};
//! use std::sync::Arc;
//!
//! let observer = Arc::new(MetricsObserver::new());
//! let obs = Obs::attached(observer.clone());
//! {
//!     let _solve = obs.span(Phase::Total);
//!     obs.add(Metric::SatConflicts, 42);
//!     obs.gauge_max(Metric::AigPeakNodes, 1000);
//! }
//! let snapshot = observer.snapshot();
//! assert_eq!(snapshot.counter(Metric::SatConflicts), 42);
//! assert!(snapshot.to_json().starts_with("{\"schema\":\"hqs-metrics/1\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod metric;
mod observer;
mod registry;

pub use export::looks_like_valid_export;
pub use metric::{Metric, MetricKind, Phase};
pub use observer::{NoopObserver, Obs, Observer, SpanGuard};
pub use registry::{
    MetricsObserver, MetricsRegistry, MetricsSnapshot, PhaseNode, SpanRecord, SCHEMA_VERSION,
};
