//! The elimination-based QBF decision procedure.

use crate::Prefix;
use hqs_aig::{Aig, AigEdge, VarStatus};
use hqs_base::{Budget, Exhaustion, Var};
use hqs_cnf::{QdimacsFile, Quantifier};
use hqs_obs::{Metric, Obs};

/// Result of a QBF solve.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QbfResult {
    /// The formula is true.
    Sat,
    /// The formula is false.
    Unsat,
    /// A resource limit was hit first.
    Limit(Exhaustion),
}

/// Counters describing one solve.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct QbfStats {
    /// Universal variables eliminated by ∀-quantification.
    pub universal_elims: u64,
    /// Existential variables eliminated by ∃-quantification.
    pub existential_elims: u64,
    /// Variables removed by unit/pure reduction (Theorems 5/6).
    pub unit_pure_elims: u64,
    /// CDCL calls issued (final SAT checks).
    pub sat_calls: u64,
    /// Largest AIG node count observed.
    pub peak_nodes: usize,
}

/// An AIG-based quantifier-elimination QBF solver (AIGSOLVE-style).
///
/// See the [crate docs](crate) for the algorithm and examples. The solver
/// is reusable; [`QbfStats`] accumulate per call and can be read with
/// [`stats`](QbfSolver::stats).
#[derive(Debug, Default)]
pub struct QbfSolver {
    budget: Budget,
    stats: QbfStats,
    /// SAT-sweep cones larger than this many AND nodes (0 disables).
    fraig_threshold: usize,
    obs: Obs,
}

impl QbfSolver {
    /// Creates a solver with an unlimited budget.
    #[must_use]
    pub fn new() -> Self {
        QbfSolver {
            budget: Budget::new(),
            stats: QbfStats::default(),
            fraig_threshold: 0,
            obs: Obs::disabled(),
        }
    }

    /// Sets the resource budget for subsequent calls.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Attaches an observability handle; `Qbf*` counters and the
    /// `QbfPeakNodes` gauge are flushed through it at the end of every
    /// [`solve`](QbfSolver::solve) call.
    pub fn set_observer(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Enables FRAIG sweeps on cones larger than `threshold` AND nodes
    /// (0 disables).
    pub fn set_fraig_threshold(&mut self, threshold: usize) {
        self.fraig_threshold = threshold;
    }

    /// Returns the accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> QbfStats {
        self.stats
    }

    /// Solves a parsed QDIMACS file. Free variables are treated as
    /// outermost existentials.
    pub fn solve_file(&mut self, file: &QdimacsFile) -> QbfResult {
        let mut aig = Aig::new();
        aig.set_observer(self.obs.clone());
        let root = aig.from_cnf(&file.matrix);
        let mut quantified: Vec<Var> = Vec::new();
        for block in &file.blocks {
            quantified.extend(block.vars.iter().copied());
        }
        let support = aig.support(root);
        let free: Vec<Var> = support.iter().filter(|v| !quantified.contains(v)).collect();
        let mut prefix = Prefix::new();
        prefix.push_block(Quantifier::Existential, free);
        for block in &file.blocks {
            prefix.push_block(block.quantifier, block.vars.clone());
        }
        self.solve(&mut aig, root, prefix)
    }

    /// Solves the QBF whose matrix is the cone of `root` in `aig` under
    /// `prefix`.
    ///
    /// Variables in the support of `root` but absent from `prefix` are
    /// treated as outermost existentials (they survive into the final SAT
    /// check).
    pub fn solve(&mut self, aig: &mut Aig, root: AigEdge, prefix: Prefix) -> QbfResult {
        let before = self.stats;
        let result = self.solve_inner(aig, root, prefix);
        self.flush_obs(before);
        result
    }

    /// Emits the [`QbfStats`] accumulated since `before` as counter deltas
    /// plus the peak-node gauge.
    fn flush_obs(&self, before: QbfStats) {
        if !self.obs.is_enabled() {
            return;
        }
        let s = self.stats;
        self.obs.add(
            Metric::QbfUniversalElims,
            s.universal_elims.saturating_sub(before.universal_elims),
        );
        self.obs.add(
            Metric::QbfExistentialElims,
            s.existential_elims.saturating_sub(before.existential_elims),
        );
        self.obs.add(
            Metric::QbfUnitPureElims,
            s.unit_pure_elims.saturating_sub(before.unit_pure_elims),
        );
        self.obs.add(
            Metric::QbfSatCalls,
            s.sat_calls.saturating_sub(before.sat_calls),
        );
        self.obs
            .gauge_max(Metric::QbfPeakNodes, s.peak_nodes as u64);
    }

    fn solve_inner(&mut self, aig: &mut Aig, root: AigEdge, prefix: Prefix) -> QbfResult {
        let mut root = root;
        let mut prefix = prefix;
        loop {
            if let Some(result) = constant_result(root) {
                return result;
            }
            self.stats.peak_nodes = self.stats.peak_nodes.max(aig.num_nodes());
            if let Some(e) = self.budget.check(aig.num_nodes()) {
                return QbfResult::Limit(e);
            }
            if let Some(verdict) = self.unit_pure_round(aig, &mut root, &mut prefix) {
                return verdict;
            }
            if root.is_constant() {
                continue;
            }
            prefix.retain_support(&aig.support(root));
            if !prefix.has_universal() {
                return self.final_sat(aig, root);
            }
            // Eliminate the cheapest variable of the innermost block.
            let block = prefix.innermost().expect("universal exists").clone();
            let costs = support_counts(aig, root, &block.vars);
            let (pos, _) = costs
                .iter()
                .enumerate()
                .min_by_key(|&(_, c)| *c)
                .expect("non-empty block");
            let var = block.vars[pos];
            root = match block.quantifier {
                Quantifier::Universal => {
                    self.stats.universal_elims += 1;
                    aig.forall(root, var)
                }
                Quantifier::Existential => {
                    self.stats.existential_elims += 1;
                    aig.exists(root, var)
                }
            };
            prefix.remove_var(var);
            root = self.reduce(aig, root);
        }
    }

    /// Applies Theorem 5 exhaustively using the Theorem-6 traversal.
    /// Returns a verdict when one is forced (universal unit ⇒ Unsat).
    fn unit_pure_round(
        &mut self,
        aig: &mut Aig,
        root: &mut AigEdge,
        prefix: &mut Prefix,
    ) -> Option<QbfResult> {
        loop {
            if root.is_constant() {
                return None;
            }
            let status = aig.unit_pure(*root);
            let mut applied = false;
            for (var, s) in status.classified() {
                let Some(quantifier) = prefix.quantifier_of(var) else {
                    continue;
                };
                match (quantifier, s) {
                    (Quantifier::Universal, VarStatus::PositiveUnit | VarStatus::NegativeUnit) => {
                        return Some(QbfResult::Unsat);
                    }
                    (
                        Quantifier::Existential,
                        VarStatus::PositiveUnit | VarStatus::PositivePure,
                    ) => {
                        *root = aig.cofactor(*root, var, true);
                    }
                    (
                        Quantifier::Existential,
                        VarStatus::NegativeUnit | VarStatus::NegativePure,
                    ) => {
                        *root = aig.cofactor(*root, var, false);
                    }
                    (Quantifier::Universal, VarStatus::PositivePure) => {
                        *root = aig.cofactor(*root, var, false);
                    }
                    (Quantifier::Universal, VarStatus::NegativePure) => {
                        *root = aig.cofactor(*root, var, true);
                    }
                    (_, VarStatus::Unknown) => continue,
                }
                self.stats.unit_pure_elims += 1;
                prefix.remove_var(var);
                applied = true;
                break; // classification is stale after a cofactor
            }
            if !applied {
                return None;
            }
        }
    }

    /// Final step: only existentials left, one CDCL call decides.
    fn final_sat(&mut self, aig: &mut Aig, root: AigEdge) -> QbfResult {
        if let Some(result) = constant_result(root) {
            return result;
        }
        self.stats.sat_calls += 1;
        let first_aux = aig
            .support(root)
            .iter()
            .map(|v| v.bound())
            .max()
            .unwrap_or(0);
        let (cnf, out) = aig.to_cnf(root, first_aux);
        let mut solver = hqs_sat::Solver::builder()
            .observer(self.obs.clone())
            .budget(self.budget.clone())
            .build()
            .expect("default SAT configuration is valid");
        solver.add_cnf(&cnf);
        solver.add_clause([out]);
        match solver.solve(&[]) {
            hqs_sat::SolveResult::Sat => QbfResult::Sat,
            hqs_sat::SolveResult::Unsat => QbfResult::Unsat,
            hqs_sat::SolveResult::Unknown => QbfResult::Limit(self.budget.stop_reason()),
        }
    }

    /// Keeps the manager small: garbage-collects when most nodes are dead
    /// and optionally SAT-sweeps large cones.
    fn reduce(&mut self, aig: &mut Aig, root: AigEdge) -> AigEdge {
        let mut root = root;
        if self.fraig_threshold > 0 && aig.cone_size(root) > self.fraig_threshold {
            root = aig.fraig(root, 0x5EED, 200);
        }
        let live = aig.cone_size(root);
        if aig.num_nodes() > 256 && aig.num_nodes() > 4 * live {
            root = aig.compact(&[root])[0];
        }
        root
    }
}

fn constant_result(root: AigEdge) -> Option<QbfResult> {
    if root == Aig::TRUE {
        Some(QbfResult::Sat)
    } else if root == Aig::FALSE {
        Some(QbfResult::Unsat)
    } else {
        None
    }
}

/// For each variable, the number of cone nodes whose support contains it —
/// the cofactor-cost estimate used to order eliminations (delegates to
/// [`Aig::occurrence_counts`]).
#[must_use]
pub(crate) fn support_counts(aig: &Aig, root: AigEdge, vars: &[Var]) -> Vec<usize> {
    aig.occurrence_counts(root, vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::eval_qdimacs;
    use hqs_cnf::dimacs::parse_qdimacs;

    fn solve_text(text: &str) -> QbfResult {
        let file = parse_qdimacs(text).unwrap();
        QbfSolver::new().solve_file(&file)
    }

    #[test]
    fn forall_exists_copy_is_sat() {
        assert_eq!(
            solve_text("p cnf 2 2\na 1 0\ne 2 0\n1 -2 0\n-1 2 0\n"),
            QbfResult::Sat
        );
    }

    #[test]
    fn exists_forall_copy_is_unsat() {
        assert_eq!(
            solve_text("p cnf 2 2\ne 2 0\na 1 0\n1 -2 0\n-1 2 0\n"),
            QbfResult::Unsat
        );
    }

    #[test]
    fn propositional_fallback() {
        assert_eq!(solve_text("p cnf 2 2\n1 2 0\n-1 2 0\n"), QbfResult::Sat);
        assert_eq!(solve_text("p cnf 1 2\n1 0\n-1 0\n"), QbfResult::Unsat);
    }

    #[test]
    fn universal_only_tautology_check() {
        // ∀x. (x ∨ ¬x) — true.
        assert_eq!(solve_text("p cnf 1 1\na 1 0\n1 -1 0\n"), QbfResult::Sat);
        // ∀x. x — false.
        assert_eq!(solve_text("p cnf 1 1\na 1 0\n1 0\n"), QbfResult::Unsat);
    }

    #[test]
    fn three_block_alternation() {
        // ∀x ∃y ∀z. (x⊕y⊕z is odd) is unsat; (y ↔ x) ∧ (z → z) is sat.
        // Use: ∀x ∃y ∀z. (x∨y∨z)(¬x∨¬y∨z)... craft: y must equal ¬x, then
        // clause (y∨x∨z)(…) — simpler known case:
        // ∀x ∃y ∀z. (x ∨ ¬y ∨ z) ∧ (¬x ∨ y) : pick y=x; z arbitrary:
        // x=0: (0∨¬0∨z)=1? y=0: c1=(0 ∨ 1 ∨ z)=1, c2=(1∨0)=1 ok.
        // x=1,y=1: c1=(1∨0∨z)=1, c2=(0∨1)=1. SAT.
        assert_eq!(
            solve_text("p cnf 3 2\na 1 0\ne 2 0\na 3 0\n1 -2 3 0\n-1 2 0\n"),
            QbfResult::Sat
        );
    }

    #[test]
    fn budget_memout_reported() {
        let file =
            parse_qdimacs("p cnf 4 3\na 1 2 0\ne 3 4 0\n1 2 3 0\n-1 -2 4 0\n1 -3 -4 0\n").unwrap();
        let mut solver = QbfSolver::new();
        solver.set_budget(Budget::new().with_node_limit(1));
        assert_eq!(
            solver.solve_file(&file),
            QbfResult::Limit(Exhaustion::Memout)
        );
    }

    #[test]
    fn agrees_with_brute_force_on_random_small_qbfs() {
        use hqs_base::Rng;
        let mut rng = Rng::seed_from_u64(2015);
        for round in 0..150 {
            let num_vars = rng.gen_range(2..=6u32);
            let num_clauses = rng.gen_range(1..=10usize);
            let mut text = format!("p cnf {num_vars} {num_clauses}\n");
            // Random prefix: each var universal or existential, grouped in
            // random alternating blocks by shuffling then chunking.
            let mut order: Vec<u32> = (1..=num_vars).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut pos = 0;
            let mut quantifier = if rng.gen_bool(0.5) { "a" } else { "e" };
            while pos < order.len() {
                let take = rng.gen_range(1..=order.len() - pos);
                let vars: Vec<String> = order[pos..pos + take].iter().map(u32::to_string).collect();
                text.push_str(&format!("{quantifier} {} 0\n", vars.join(" ")));
                quantifier = if quantifier == "a" { "e" } else { "a" };
                pos += take;
            }
            for _ in 0..num_clauses {
                let len = rng.gen_range(1..=3usize);
                let lits: Vec<String> = (0..len)
                    .map(|_| {
                        let v = rng.gen_range(1..=num_vars) as i64;
                        if rng.gen_bool(0.5) { v } else { -v }.to_string()
                    })
                    .collect();
                text.push_str(&format!("{} 0\n", lits.join(" ")));
            }
            let file = parse_qdimacs(&text).unwrap();
            let expected = if eval_qdimacs(&file) {
                QbfResult::Sat
            } else {
                QbfResult::Unsat
            };
            let got = QbfSolver::new().solve_file(&file);
            assert_eq!(got, expected, "round {round}:\n{text}");
        }
    }
}
