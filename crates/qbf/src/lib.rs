//! An AIG-based quantifier-elimination QBF solver.
//!
//! This crate reimplements the role AIGSOLVE (Pigorsch & Scholl) plays in
//! the HQS pipeline: once HQS has eliminated enough universal variables
//! that the DQBF prefix linearises, the remaining QBF — already available
//! as an AIG — is handed to this solver. The algorithm:
//!
//! 1. eliminate quantifier blocks innermost-first by AIG quantification
//!    (`∃` = or-of-cofactors, `∀` = and-of-cofactors), cheapest variable
//!    first,
//! 2. between eliminations, run the syntactic unit/pure detection of the
//!    paper's Theorem 6 and apply Theorem 5,
//! 3. stop early when the AIG collapses to a constant,
//! 4. once only the outermost existential block remains, finish with a
//!    single CDCL SAT call on the Tseitin encoding.
//!
//! # Examples
//!
//! ```
//! use hqs_cnf::dimacs::parse_qdimacs;
//! use hqs_qbf::{QbfResult, QbfSolver};
//!
//! // ∀x ∃y. (x ↔ y)  — satisfiable (y copies x).
//! let file = parse_qdimacs("p cnf 2 2\na 1 0\ne 2 0\n1 -2 0\n-1 2 0\n")?;
//! let mut solver = QbfSolver::new();
//! assert_eq!(solver.solve_file(&file), QbfResult::Sat);
//!
//! // ∃y ∀x. (x ↔ y)  — unsatisfiable.
//! let file = parse_qdimacs("p cnf 2 2\ne 2 0\na 1 0\n1 -2 0\n-1 2 0\n")?;
//! assert_eq!(solver.solve_file(&file), QbfResult::Unsat);
//! # Ok::<(), hqs_cnf::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod prefix;
pub mod reference;
pub mod search;
mod solver;

pub use prefix::Prefix;
pub use solver::{QbfResult, QbfSolver, QbfStats};
