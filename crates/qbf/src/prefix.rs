//! Linearly ordered QBF quantifier prefixes.

use hqs_base::{Var, VarSet};
use hqs_cnf::{QuantBlock, Quantifier};
use std::fmt;

/// A QBF prefix: a sequence of quantifier blocks, outermost first.
///
/// Invariant: adjacent blocks have different quantifiers and no variable
/// occurs twice (enforced by the constructors).
///
/// # Examples
///
/// ```
/// use hqs_base::Var;
/// use hqs_cnf::Quantifier;
/// use hqs_qbf::Prefix;
///
/// let mut prefix = Prefix::new();
/// prefix.push_block(Quantifier::Universal, vec![Var::new(0)]);
/// prefix.push_block(Quantifier::Existential, vec![Var::new(1)]);
/// assert_eq!(prefix.num_blocks(), 2);
/// assert_eq!(prefix.quantifier_of(Var::new(1)), Some(Quantifier::Existential));
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Prefix {
    blocks: Vec<QuantBlock>,
}

impl Prefix {
    /// Creates an empty prefix.
    #[must_use]
    pub fn new() -> Self {
        Prefix::default()
    }

    /// Builds a prefix from parsed QDIMACS blocks, merging adjacent blocks
    /// with equal quantifiers.
    #[must_use]
    pub fn from_blocks(blocks: &[QuantBlock]) -> Self {
        let mut prefix = Prefix::new();
        for block in blocks {
            prefix.push_block(block.quantifier, block.vars.clone());
        }
        prefix
    }

    /// Appends a block (innermost position). Merges with the current
    /// innermost block if the quantifier matches; empty `vars` are ignored.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if a variable is already quantified.
    pub fn push_block(&mut self, quantifier: Quantifier, vars: Vec<Var>) {
        if vars.is_empty() {
            return;
        }
        debug_assert!(
            vars.iter().all(|&v| self.quantifier_of(v).is_none()),
            "variable quantified twice"
        );
        match self.blocks.last_mut() {
            Some(last) if last.quantifier == quantifier => last.vars.extend(vars),
            _ => self.blocks.push(QuantBlock { quantifier, vars }),
        }
    }

    /// Returns the blocks, outermost first.
    #[must_use]
    pub fn blocks(&self) -> &[QuantBlock] {
        &self.blocks
    }

    /// Returns the number of blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` if no variable is quantified.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Returns the quantifier binding `var`, if any.
    #[must_use]
    pub fn quantifier_of(&self, var: Var) -> Option<Quantifier> {
        self.blocks
            .iter()
            .find(|b| b.vars.contains(&var))
            .map(|b| b.quantifier)
    }

    /// Returns the innermost block, if any.
    #[must_use]
    pub fn innermost(&self) -> Option<&QuantBlock> {
        self.blocks.last()
    }

    /// Removes and returns the variables of the innermost block.
    pub fn pop_innermost(&mut self) -> Option<QuantBlock> {
        self.blocks.pop()
    }

    /// Removes `var` wherever it occurs; drops emptied blocks and re-merges
    /// neighbours. Returns `true` if the variable was quantified.
    pub fn remove_var(&mut self, var: Var) -> bool {
        let mut found = false;
        for block in &mut self.blocks {
            let before = block.vars.len();
            block.vars.retain(|&v| v != var);
            found |= block.vars.len() != before;
        }
        if found {
            self.normalise();
        }
        found
    }

    /// Keeps only variables in `support`; drops emptied blocks.
    pub fn retain_support(&mut self, support: &VarSet) {
        for block in &mut self.blocks {
            block.vars.retain(|&v| support.contains(v));
        }
        self.normalise();
    }

    /// Returns `true` if some universal variable remains.
    #[must_use]
    pub fn has_universal(&self) -> bool {
        self.blocks
            .iter()
            .any(|b| b.quantifier == Quantifier::Universal)
    }

    /// Total number of quantified variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.blocks.iter().map(|b| b.vars.len()).sum()
    }

    /// Iterates over all quantified variables with their quantifier,
    /// outermost block first.
    pub fn iter_vars(&self) -> impl Iterator<Item = (Var, Quantifier)> + '_ {
        self.blocks
            .iter()
            .flat_map(|b| b.vars.iter().map(move |&v| (v, b.quantifier)))
    }

    fn normalise(&mut self) {
        let mut merged: Vec<QuantBlock> = Vec::with_capacity(self.blocks.len());
        for block in self.blocks.drain(..) {
            if block.vars.is_empty() {
                continue;
            }
            match merged.last_mut() {
                Some(last) if last.quantifier == block.quantifier => {
                    last.vars.extend(block.vars);
                }
                _ => merged.push(block),
            }
        }
        self.blocks = merged;
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for block in &self.blocks {
            let symbol = match block.quantifier {
                Quantifier::Universal => '∀',
                Quantifier::Existential => '∃',
            };
            write!(f, "{symbol}{{")?;
            for (i, v) in block.vars.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, "}} ")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn push_merges_equal_quantifiers() {
        let mut p = Prefix::new();
        p.push_block(Quantifier::Universal, vec![v(0)]);
        p.push_block(Quantifier::Universal, vec![v(1)]);
        p.push_block(Quantifier::Existential, vec![v(2)]);
        assert_eq!(p.num_blocks(), 2);
        assert_eq!(p.num_vars(), 3);
    }

    #[test]
    fn empty_blocks_ignored() {
        let mut p = Prefix::new();
        p.push_block(Quantifier::Universal, vec![]);
        assert!(p.is_empty());
    }

    #[test]
    fn remove_var_merges_neighbours() {
        let mut p = Prefix::new();
        p.push_block(Quantifier::Universal, vec![v(0)]);
        p.push_block(Quantifier::Existential, vec![v(1)]);
        p.push_block(Quantifier::Universal, vec![v(2)]);
        assert!(p.remove_var(v(1)));
        assert_eq!(p.num_blocks(), 1);
        assert_eq!(p.num_vars(), 2);
        assert!(!p.remove_var(v(1)));
    }

    #[test]
    fn retain_support_drops_unused() {
        let mut p = Prefix::new();
        p.push_block(Quantifier::Universal, vec![v(0), v(1)]);
        p.push_block(Quantifier::Existential, vec![v(2)]);
        let support: VarSet = [v(0)].into_iter().collect();
        p.retain_support(&support);
        assert_eq!(p.num_vars(), 1);
        assert_eq!(p.quantifier_of(v(0)), Some(Quantifier::Universal));
        assert_eq!(p.quantifier_of(v(2)), None);
    }

    #[test]
    fn innermost_and_pop() {
        let mut p = Prefix::new();
        p.push_block(Quantifier::Universal, vec![v(0)]);
        p.push_block(Quantifier::Existential, vec![v(1)]);
        assert_eq!(p.innermost().unwrap().quantifier, Quantifier::Existential);
        let popped = p.pop_innermost().unwrap();
        assert_eq!(popped.vars, vec![v(1)]);
        assert!(p.has_universal());
        p.pop_innermost();
        assert!(!p.has_universal());
    }
}
