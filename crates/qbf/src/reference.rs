//! Brute-force QBF evaluation, used as a test oracle.

use hqs_base::{Assignment, TruthValue, Var};
use hqs_cnf::{QdimacsFile, Quantifier};

/// Evaluates a QDIMACS file by exhaustive quantifier expansion.
///
/// Free variables are treated as outermost existentials (matching
/// [`QbfSolver::solve_file`](crate::QbfSolver::solve_file)). Exponential;
/// only feed it small instances.
///
/// # Examples
///
/// ```
/// use hqs_cnf::dimacs::parse_qdimacs;
/// use hqs_qbf::reference::eval_qdimacs;
///
/// let file = parse_qdimacs("p cnf 2 2\na 1 0\ne 2 0\n1 -2 0\n-1 2 0\n")?;
/// assert!(eval_qdimacs(&file));
/// # Ok::<(), hqs_cnf::ParseError>(())
/// ```
#[must_use]
pub fn eval_qdimacs(file: &QdimacsFile) -> bool {
    // Flatten prefix to a linear variable order with quantifiers;
    // prepend free variables existentially.
    let mut quantified: Vec<(Var, Quantifier)> = Vec::new();
    for block in &file.blocks {
        for &v in &block.vars {
            quantified.push((v, block.quantifier));
        }
    }
    let bound: Vec<Var> = quantified.iter().map(|&(v, _)| v).collect();
    let mut linear: Vec<(Var, Quantifier)> = file
        .matrix
        .support()
        .iter()
        .filter(|v| !bound.contains(v))
        .map(|v| (v, Quantifier::Existential))
        .collect();
    linear.extend(quantified);
    assert!(
        linear.len() <= 24,
        "brute-force QBF oracle limited to 24 variables"
    );
    let mut assignment = Assignment::with_num_vars(file.matrix.num_vars());
    eval_rec(file, &linear, 0, &mut assignment)
}

fn eval_rec(
    file: &QdimacsFile,
    order: &[(Var, Quantifier)],
    depth: usize,
    assignment: &mut Assignment,
) -> bool {
    // Early exit: fully decided matrix.
    match file.matrix.evaluate(assignment) {
        TruthValue::True => return true,
        TruthValue::False => return false,
        TruthValue::Unassigned => {}
    }
    let Some(&(var, quantifier)) = order.get(depth) else {
        // All quantified variables assigned but the matrix is undecided:
        // remaining vars are unconstrained... cannot happen since support
        // is covered; treat unassigned as false.
        return file.matrix.evaluate(assignment) == TruthValue::True;
    };
    let mut results = [false, false];
    for (i, value) in [false, true].into_iter().enumerate() {
        assignment.assign(var, value);
        results[i] = eval_rec(file, order, depth + 1, assignment);
        assignment.unassign(var);
        // Short-circuit.
        match quantifier {
            Quantifier::Existential if results[i] => return true,
            Quantifier::Universal if !results[i] => return false,
            _ => {}
        }
    }
    match quantifier {
        Quantifier::Existential => results[0] || results[1],
        Quantifier::Universal => results[0] && results[1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqs_cnf::dimacs::parse_qdimacs;

    #[test]
    fn known_instances() {
        // ∀x∃y. x↔y : true.
        assert!(eval_qdimacs(
            &parse_qdimacs("p cnf 2 2\na 1 0\ne 2 0\n1 -2 0\n-1 2 0\n").unwrap()
        ));
        // ∃y∀x. x↔y : false.
        assert!(!eval_qdimacs(
            &parse_qdimacs("p cnf 2 2\ne 2 0\na 1 0\n1 -2 0\n-1 2 0\n").unwrap()
        ));
        // Free variable: (v1) is satisfiable.
        assert!(eval_qdimacs(&parse_qdimacs("p cnf 1 1\n1 0\n").unwrap()));
        // Contradiction.
        assert!(!eval_qdimacs(
            &parse_qdimacs("p cnf 1 2\n1 0\n-1 0\n").unwrap()
        ));
    }
}
