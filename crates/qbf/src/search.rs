//! A search-based (QDPLL-style) QBF solver.
//!
//! The paper notes that efficient QBF solvers come in two flavours —
//! elimination-based (AIGSOLVE, the backend HQS uses) and search-based
//! (DepQBF). This module provides a compact representative of the second
//! class, used as an independent cross-check for the elimination engine
//! and as an alternative backend for experimentation:
//!
//! * depth-first search over the quantifier prefix, outermost first,
//! * QBF unit propagation with universal reduction under the current
//!   assignment (a clause whose unassigned literals are all universal and
//!   inner to every unassigned existential is falsified),
//! * pure-literal elimination (an existential occurring in one phase only
//!   is satisfied; a universal occurring in one phase only is falsified),
//! * chronological backtracking (no clause learning — the instances HQS
//!   hands over are small after elimination; learning belongs to a
//!   dedicated solver like DepQBF).

use crate::Prefix;
use hqs_base::{Assignment, Budget, Lit, TruthValue, Var};
use hqs_cnf::{Clause, Cnf, QdimacsFile, Quantifier};
use std::collections::{BTreeMap, HashMap};

/// Counters for one search run.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct SearchStats {
    /// Decision nodes visited.
    pub decisions: u64,
    /// Unit propagations applied.
    pub propagations: u64,
    /// Universal reductions applied during propagation.
    pub reductions: u64,
    /// Pure-literal assignments applied.
    pub pures: u64,
}

/// A search-based QBF solver (see the [module docs](self)).
///
/// # Examples
///
/// ```
/// use hqs_cnf::dimacs::parse_qdimacs;
/// use hqs_qbf::search::SearchSolver;
///
/// let file = parse_qdimacs("p cnf 2 2\na 1 0\ne 2 0\n1 -2 0\n-1 2 0\n")?;
/// assert!(SearchSolver::new().solve_file(&file));
/// # Ok::<(), hqs_cnf::ParseError>(())
/// ```
#[derive(Debug, Default)]
pub struct SearchSolver {
    stats: SearchStats,
    /// Quantifier and prefix depth per variable.
    quantifier: HashMap<Var, (Quantifier, usize)>,
    clauses: Vec<Clause>,
    order: Vec<Var>,
    budget: Budget,
    aborted: bool,
}

impl SearchSolver {
    /// Creates a solver.
    #[must_use]
    pub fn new() -> Self {
        SearchSolver::default()
    }

    /// Statistics of the most recent run.
    #[must_use]
    pub fn stats(&self) -> SearchStats {
        self.stats
    }

    /// Decides a parsed QDIMACS file (free variables become outermost
    /// existentials). Returns `true` iff the formula holds.
    pub fn solve_file(&mut self, file: &QdimacsFile) -> bool {
        let mut prefix = Prefix::from_blocks(&file.blocks);
        let support = file.matrix.support();
        let bound: Vec<Var> = prefix.iter_vars().map(|(v, _)| v).collect();
        let free: Vec<Var> = support.iter().filter(|v| !bound.contains(v)).collect();
        if !free.is_empty() {
            let mut with_free = Prefix::new();
            with_free.push_block(Quantifier::Existential, free);
            for block in prefix.blocks() {
                with_free.push_block(block.quantifier, block.vars.clone());
            }
            prefix = with_free;
        }
        self.solve(&prefix, &file.matrix)
    }

    /// Like [`solve`](SearchSolver::solve) under a wall-clock budget;
    /// `None` means the deadline passed first.
    pub fn solve_budgeted(
        &mut self,
        prefix: &Prefix,
        matrix: &Cnf,
        budget: Budget,
    ) -> Option<bool> {
        self.budget = budget;
        let verdict = self.solve(prefix, matrix);
        if self.aborted {
            None
        } else {
            Some(verdict)
        }
    }

    /// Decides the QBF `prefix : matrix`.
    pub fn solve(&mut self, prefix: &Prefix, matrix: &Cnf) -> bool {
        self.stats = SearchStats::default();
        self.aborted = false;
        self.quantifier.clear();
        self.order.clear();
        for (depth, (var, quantifier)) in prefix.iter_vars().enumerate() {
            self.quantifier.insert(var, (quantifier, depth));
            self.order.push(var);
        }
        self.clauses = matrix
            .clauses()
            .iter()
            .filter(|c| !c.is_tautology())
            .cloned()
            .collect();
        if self.clauses.iter().any(Clause::is_empty) {
            return false;
        }
        let mut assignment = Assignment::with_num_vars(matrix.num_vars());
        self.search(0, &mut assignment)
    }

    /// Recursive QDPLL over `self.order[depth..]`.
    fn search(&mut self, depth: usize, assignment: &mut Assignment) -> bool {
        if self.aborted
            || (self.stats.decisions.is_multiple_of(1024) && self.budget.stop_requested())
        {
            self.aborted = true;
            return false; // value is ignored once aborted
        }
        // Propagation to fixpoint: units (with universal reduction) and a
        // matrix status check.
        let mut trail: Vec<Var> = Vec::new();
        let verdict = loop {
            // analyze::allow(cancel): propagate_scan assigns a var per round, so at most |vars| rounds
            match self.propagate_scan(assignment, &mut trail) {
                Propagation::Conflict => break Some(false),
                Propagation::Satisfied => break Some(true),
                Propagation::Progress => {}
                Propagation::Fixpoint => break None,
            }
        };
        if let Some(result) = verdict {
            for var in trail {
                // analyze::allow(cancel): bounded unwind of the local trail
                assignment.unassign(var);
            }
            return result;
        }
        // Pure literals over the surviving clauses.
        self.assign_pures(assignment, &mut trail);

        // Next unassigned prefix variable at the outermost depth.
        let next = self.order[depth..]
            .iter()
            .copied()
            .find(|&v| assignment.value(v) == TruthValue::Unassigned);
        let result = match next {
            None => {
                // All prefix variables assigned; matrix undecided can only
                // mean leftover unassigned vars outside the prefix — they
                // do not exist by construction, so evaluate directly.
                self.clauses
                    .iter()
                    .all(|c| c.evaluate(assignment) == TruthValue::True)
            }
            Some(var) => {
                let (quantifier, _) = self.quantifier[&var];
                self.stats.decisions += 1;
                let next_depth = depth + 1;
                let mut outcome = quantifier == Quantifier::Universal;
                for value in [false, true] {
                    assignment.assign(var, value);
                    let sub = self.search(next_depth, assignment);
                    assignment.unassign(var);
                    match quantifier {
                        Quantifier::Existential if sub => {
                            outcome = true;
                            break;
                        }
                        Quantifier::Universal if !sub => {
                            outcome = false;
                            break;
                        }
                        _ => {}
                    }
                }
                outcome
            }
        };
        for var in trail {
            // analyze::allow(cancel): bounded unwind of the local trail
            assignment.unassign(var);
        }
        result
    }

    /// Pure-literal rule: a variable whose unassigned occurrences in
    /// non-satisfied clauses all share one phase is fixed — existentials
    /// to satisfy the phase, universals to falsify it (Theorem 5's QBF
    /// specialisation).
    fn assign_pures(&mut self, assignment: &mut Assignment, trail: &mut Vec<Var>) {
        // BTreeMaps so the pure-assignment order is the variable
        // order, not the per-process hash order.
        let mut pos: BTreeMap<Var, bool> = BTreeMap::new();
        let mut neg: BTreeMap<Var, bool> = BTreeMap::new();
        for clause in &self.clauses {
            let mut satisfied = false;
            for &lit in clause.lits() {
                if assignment.lit_value(lit) == TruthValue::True {
                    satisfied = true;
                    break;
                }
            }
            if satisfied {
                continue;
            }
            for &lit in clause.lits() {
                if assignment.lit_value(lit) == TruthValue::Unassigned {
                    if lit.is_positive() {
                        pos.insert(lit.var(), true);
                    } else {
                        neg.insert(lit.var(), true);
                    }
                }
            }
        }
        for (&var, _) in pos.iter().chain(neg.iter()) {
            if assignment.value(var) != TruthValue::Unassigned {
                continue;
            }
            let occurs_pos = pos.contains_key(&var);
            let occurs_neg = neg.contains_key(&var);
            if occurs_pos == occurs_neg {
                continue; // both phases (or raced with an earlier pure)
            }
            let Some(&(quantifier, _)) = self.quantifier.get(&var) else {
                continue;
            };
            let satisfy = occurs_pos;
            let value = match quantifier {
                Quantifier::Existential => satisfy,
                Quantifier::Universal => !satisfy,
            };
            assignment.assign(var, value);
            trail.push(var);
            self.stats.pures += 1;
        }
    }

    /// One full clause scan: applies every QBF unit found (recording the
    /// assigned variables on `trail`), detects falsified clauses and a
    /// satisfied matrix.
    fn propagate_scan(&mut self, assignment: &mut Assignment, trail: &mut Vec<Var>) -> Propagation {
        let mut all_true = true;
        let mut progress = false;
        for clause in &self.clauses {
            let mut satisfied = false;
            // Unassigned literals surviving universal reduction: a
            // universal literal counts only if some unassigned existential
            // literal of the clause is inner to it.
            let mut unassigned: Vec<Lit> = Vec::new();
            for &lit in clause.lits() {
                match assignment.lit_value(lit) {
                    TruthValue::True => {
                        satisfied = true;
                        break;
                    }
                    TruthValue::False => {}
                    TruthValue::Unassigned => unassigned.push(lit),
                }
            }
            if satisfied {
                continue;
            }
            all_true = false;
            // Universal reduction under the current assignment.
            let max_exist_depth = unassigned
                .iter()
                .filter(|l| self.quantifier[&l.var()].0 == Quantifier::Existential)
                .map(|l| self.quantifier[&l.var()].1)
                .max();
            let effective: Vec<Lit> = unassigned
                .iter()
                .copied()
                .filter(|l| {
                    let (q, d) = self.quantifier[&l.var()];
                    q == Quantifier::Existential || max_exist_depth.is_some_and(|m| d < m)
                })
                .collect();
            if effective.len() < unassigned.len() {
                self.stats.reductions += 1;
            }
            match effective.as_slice() {
                [] => return Propagation::Conflict,
                [single] => {
                    let (q, _) = self.quantifier[&single.var()];
                    if q == Quantifier::Existential {
                        // Apply immediately; later clauses see the value.
                        self.stats.propagations += 1;
                        assignment.assign_lit(*single);
                        trail.push(single.var());
                        progress = true;
                    } else {
                        // A unit universal literal after reduction means
                        // the adversary can falsify the clause.
                        return Propagation::Conflict;
                    }
                }
                _ => {}
            }
        }
        if all_true {
            return Propagation::Satisfied;
        }
        if progress {
            Propagation::Progress
        } else {
            Propagation::Fixpoint
        }
    }
}

enum Propagation {
    Conflict,
    Satisfied,
    Progress,
    Fixpoint,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::eval_qdimacs;
    use crate::{QbfResult, QbfSolver};
    use hqs_cnf::dimacs::parse_qdimacs;

    fn run(text: &str) -> bool {
        SearchSolver::new().solve_file(&parse_qdimacs(text).unwrap())
    }

    #[test]
    fn known_instances() {
        assert!(run("p cnf 2 2\na 1 0\ne 2 0\n1 -2 0\n-1 2 0\n"));
        assert!(!run("p cnf 2 2\ne 2 0\na 1 0\n1 -2 0\n-1 2 0\n"));
        assert!(run("p cnf 1 1\na 1 0\n1 -1 0\n"));
        assert!(!run("p cnf 1 1\na 1 0\n1 0\n"));
        assert!(run("p cnf 2 1\n1 2 0\n"));
        assert!(!run("p cnf 1 2\n1 0\n-1 0\n"));
    }

    #[test]
    fn propagation_counts() {
        let mut solver = SearchSolver::new();
        // x forced by unit, then y forced: no decisions needed.
        let file = parse_qdimacs("p cnf 2 2\ne 1 2 0\n1 0\n-1 2 0\n").unwrap();
        assert!(solver.solve_file(&file));
        assert!(solver.stats().propagations >= 2);
        assert_eq!(solver.stats().decisions, 0);
    }

    #[test]
    fn universal_reduction_detects_conflicts_early() {
        // ∃y ∀x. (x ∨ ¬y) ∧ (¬x ∨ ¬y) ∧ (y): the y-unit forces y, then both
        // clauses reduce to universal units ⇒ conflict without branching
        // over x.
        let mut solver = SearchSolver::new();
        let file = parse_qdimacs("p cnf 2 3\ne 2 0\na 1 0\n1 -2 0\n-1 -2 0\n2 0\n").unwrap();
        assert!(!solver.solve_file(&file));
        assert_eq!(solver.stats().decisions, 0);
    }

    #[test]
    fn agrees_with_oracle_and_elimination_solver() {
        use hqs_base::Rng;
        let mut rng = Rng::seed_from_u64(31337);
        for round in 0..120 {
            let num_vars = rng.gen_range(2..=6u32);
            let mut text = format!("p cnf {num_vars} 0\n");
            let mut order: Vec<u32> = (1..=num_vars).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut pos = 0;
            let mut q = if rng.gen_bool(0.5) { "a" } else { "e" };
            let mut prefix_lines = String::new();
            while pos < order.len() {
                let take = rng.gen_range(1..=order.len() - pos);
                let vars: Vec<String> = order[pos..pos + take].iter().map(u32::to_string).collect();
                prefix_lines.push_str(&format!("{q} {} 0\n", vars.join(" ")));
                q = if q == "a" { "e" } else { "a" };
                pos += take;
            }
            text.push_str(&prefix_lines);
            for _ in 0..rng.gen_range(1..=9usize) {
                let len = rng.gen_range(1..=3usize);
                let lits: Vec<String> = (0..len)
                    .map(|_| {
                        let v = rng.gen_range(1..=num_vars) as i64;
                        if rng.gen_bool(0.5) { v } else { -v }.to_string()
                    })
                    .collect();
                text.push_str(&format!("{} 0\n", lits.join(" ")));
            }
            let file = parse_qdimacs(&text).unwrap();
            let expected = eval_qdimacs(&file);
            let search = SearchSolver::new().solve_file(&file);
            assert_eq!(search, expected, "round {round}:\n{text}");
            let elimination = QbfSolver::new().solve_file(&file);
            assert_eq!(
                elimination == QbfResult::Sat,
                expected,
                "round {round}:\n{text}"
            );
        }
    }
}
