//! Randomised tests: the elimination-based QBF solver against the
//! brute-force expansion oracle on random prefixes and matrices.

use hqs_base::{Lit, Rng, Var};
use hqs_cnf::{Clause, Cnf, QdimacsFile, QuantBlock, Quantifier};
use hqs_qbf::{reference, QbfResult, QbfSolver};

const MAX_VARS: u32 = 6;
const CASES: u64 = 192;

fn random_qbf(rng: &mut Rng) -> QdimacsFile {
    // Random variable order, chunked into alternating quantifier blocks.
    let mut order: Vec<u32> = (0..MAX_VARS).collect();
    rng.shuffle(&mut order);
    let mut blocks: Vec<QuantBlock> = Vec::new();
    let mut quantifier = if rng.gen_bool(0.5) {
        Quantifier::Universal
    } else {
        Quantifier::Existential
    };
    let mut current: Vec<Var> = Vec::new();
    for (i, &var) in order.iter().enumerate() {
        current.push(Var::new(var));
        if rng.gen_bool(0.5) || i + 1 == order.len() {
            blocks.push(QuantBlock {
                quantifier,
                vars: std::mem::take(&mut current),
            });
            quantifier = quantifier.flipped();
        }
    }
    let mut matrix = Cnf::new(MAX_VARS);
    for _ in 0..rng.gen_range(1..10usize) {
        let len = rng.gen_range(1..4usize);
        let lits =
            (0..len).map(|_| Lit::new(Var::new(rng.gen_range(0..MAX_VARS)), rng.gen_bool(0.5)));
        matrix.add_clause(Clause::from_lits(lits));
    }
    QdimacsFile { blocks, matrix }
}

/// The solver agrees with brute-force expansion on random QBFs.
#[test]
fn solver_matches_oracle() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let file = random_qbf(&mut rng);
        let expected = if reference::eval_qdimacs(&file) {
            QbfResult::Sat
        } else {
            QbfResult::Unsat
        };
        let got = QbfSolver::new().solve_file(&file);
        assert_eq!(got, expected, "seed {seed}: {file:?}");
    }
}

/// FRAIG-enabled solving never changes the verdict.
#[test]
fn fraig_mode_agrees() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x1000 + seed);
        let file = random_qbf(&mut rng);
        let plain = QbfSolver::new().solve_file(&file);
        let mut sweeping = QbfSolver::new();
        sweeping.set_fraig_threshold(1);
        let swept = sweeping.solve_file(&file);
        assert_eq!(plain, swept, "seed {seed}");
    }
}

/// Adding a tautological clause never changes the verdict.
#[test]
fn tautologies_are_inert() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x2000 + seed);
        let file = random_qbf(&mut rng);
        let var = rng.gen_range(0..MAX_VARS);
        let before = QbfSolver::new().solve_file(&file);
        let mut extended = file.clone();
        extended.matrix.add_clause(Clause::from_lits([
            Lit::positive(Var::new(var)),
            Lit::negative(Var::new(var)),
        ]));
        let after = QbfSolver::new().solve_file(&extended);
        assert_eq!(before, after, "seed {seed}");
    }
}

/// Widening a dependency (moving an existential inward) can only help:
/// if the original is Sat, the widened prefix stays Sat.
#[test]
fn inward_existential_monotonicity() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x3000 + seed);
        let file = random_qbf(&mut rng);
        // Move the outermost existential block to the innermost position.
        let Some(pos) = file
            .blocks
            .iter()
            .position(|b| b.quantifier == Quantifier::Existential)
        else {
            continue;
        };
        let mut moved = file.clone();
        let block = moved.blocks.remove(pos);
        moved.blocks.push(block);
        let original = QbfSolver::new().solve_file(&file);
        let widened = QbfSolver::new().solve_file(&moved);
        if original == QbfResult::Sat {
            assert_eq!(widened, QbfResult::Sat, "seed {seed}");
        }
    }
}
