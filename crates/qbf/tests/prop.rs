//! Property-based tests: the elimination-based QBF solver against the
//! brute-force expansion oracle on random prefixes and matrices.

use hqs_base::{Lit, Var};
use hqs_cnf::{Clause, Cnf, QdimacsFile, QuantBlock, Quantifier};
use hqs_qbf::{reference, QbfResult, QbfSolver};
use proptest::prelude::*;

const MAX_VARS: u32 = 6;

#[derive(Clone, Debug)]
struct RandomQbf {
    file: QdimacsFile,
}

fn arb_qbf() -> impl Strategy<Value = RandomQbf> {
    (
        // Permutation seed for variable order, block split pattern,
        // quantifier of the first block, clauses.
        prop::collection::vec(0usize..100, MAX_VARS as usize),
        prop::collection::vec(any::<bool>(), MAX_VARS as usize),
        any::<bool>(),
        prop::collection::vec(
            prop::collection::vec(
                (0..MAX_VARS, any::<bool>()).prop_map(|(v, n)| Lit::new(Var::new(v), n)),
                1..4,
            ),
            1..10,
        ),
    )
        .prop_map(|(perm, splits, first_universal, clause_lits)| {
            // Build a permutation of 0..MAX_VARS.
            let mut order: Vec<u32> = (0..MAX_VARS).collect();
            for (i, &p) in perm.iter().enumerate() {
                let j = p % (i + 1);
                order.swap(i, j);
            }
            // Chunk into alternating blocks according to `splits`.
            let mut blocks: Vec<QuantBlock> = Vec::new();
            let mut quantifier = if first_universal {
                Quantifier::Universal
            } else {
                Quantifier::Existential
            };
            let mut current: Vec<Var> = Vec::new();
            for (i, &var) in order.iter().enumerate() {
                current.push(Var::new(var));
                if splits[i] || i + 1 == order.len() {
                    blocks.push(QuantBlock {
                        quantifier,
                        vars: std::mem::take(&mut current),
                    });
                    quantifier = quantifier.flipped();
                }
            }
            let mut matrix = Cnf::new(MAX_VARS);
            for lits in clause_lits {
                matrix.add_clause(Clause::from_lits(lits));
            }
            RandomQbf {
                file: QdimacsFile { blocks, matrix },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The solver agrees with brute-force expansion on random QBFs.
    #[test]
    fn solver_matches_oracle(qbf in arb_qbf()) {
        let expected = if reference::eval_qdimacs(&qbf.file) {
            QbfResult::Sat
        } else {
            QbfResult::Unsat
        };
        let got = QbfSolver::new().solve_file(&qbf.file);
        prop_assert_eq!(got, expected, "{:?}", qbf.file);
    }

    /// FRAIG-enabled solving never changes the verdict.
    #[test]
    fn fraig_mode_agrees(qbf in arb_qbf()) {
        let plain = QbfSolver::new().solve_file(&qbf.file);
        let mut sweeping = QbfSolver::new();
        sweeping.set_fraig_threshold(1);
        let swept = sweeping.solve_file(&qbf.file);
        prop_assert_eq!(plain, swept);
    }

    /// Adding a tautological clause never changes the verdict.
    #[test]
    fn tautologies_are_inert(qbf in arb_qbf(), var in 0..MAX_VARS) {
        let before = QbfSolver::new().solve_file(&qbf.file);
        let mut extended = qbf.file.clone();
        extended.matrix.add_clause(Clause::from_lits([
            Lit::positive(Var::new(var)),
            Lit::negative(Var::new(var)),
        ]));
        let after = QbfSolver::new().solve_file(&extended);
        prop_assert_eq!(before, after);
    }

    /// Widening a dependency (moving an existential inward) can only help:
    /// if the original is Sat, the widened prefix stays Sat.
    #[test]
    fn inward_existential_monotonicity(qbf in arb_qbf()) {
        // Move the outermost existential block to the innermost position.
        let Some(pos) = qbf
            .file
            .blocks
            .iter()
            .position(|b| b.quantifier == Quantifier::Existential)
        else {
            return Ok(());
        };
        let mut moved = qbf.file.clone();
        let block = moved.blocks.remove(pos);
        moved.blocks.push(block);
        let original = QbfSolver::new().solve_file(&qbf.file);
        let widened = QbfSolver::new().solve_file(&moved);
        if original == QbfResult::Sat {
            prop_assert_eq!(widened, QbfResult::Sat);
        }
    }
}
