//! Randomised tests: the MaxSAT solver against the brute-force optimum
//! on random partial instances.

use hqs_base::{Lit, Rng, Var};
use hqs_maxsat::{brute_force_optimum, MaxSatResult, MaxSatSolver};

const MAX_VARS: u32 = 6;

fn random_clauses(rng: &mut Rng, max_clauses: usize) -> Vec<Vec<Lit>> {
    (0..rng.gen_range(0..max_clauses))
        .map(|_| {
            (0..rng.gen_range(1..4usize))
                .map(|_| Lit::new(Var::new(rng.gen_range(0..MAX_VARS)), rng.gen_bool(0.5)))
                .collect()
        })
        .collect()
}

/// The solver's optimum equals the brute-force optimum, and the
/// returned model attains it.
#[test]
fn optimum_is_exact() {
    for seed in 0..192u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let hard = random_clauses(&mut rng, 8);
        let soft = random_clauses(&mut rng, 8);
        let expected = brute_force_optimum(MAX_VARS, &hard, &soft);
        let mut solver = MaxSatSolver::new();
        solver.ensure_vars(MAX_VARS);
        for clause in &hard {
            solver.add_hard(clause.iter().copied());
        }
        for clause in &soft {
            solver.add_soft(clause.iter().copied());
        }
        match solver.solve() {
            MaxSatResult::Optimum { cost, model } => {
                assert_eq!(Some(cost), expected, "seed {seed}");
                // The model satisfies all hard clauses and violates exactly
                // `cost` soft clauses.
                for clause in &hard {
                    assert!(clause.iter().any(|&l| model.satisfies(l)), "seed {seed}");
                }
                let violated = soft
                    .iter()
                    .filter(|c| !c.iter().any(|&l| model.satisfies(l)))
                    .count();
                assert_eq!(violated, cost, "seed {seed}");
            }
            MaxSatResult::Unsatisfiable => assert_eq!(expected, None, "seed {seed}"),
        }
    }
}

/// Adding a soft clause can increase the optimum by at most one.
#[test]
fn soft_clause_monotonicity() {
    for seed in 0..192u64 {
        let mut rng = Rng::seed_from_u64(0x1000 + seed);
        let hard = random_clauses(&mut rng, 6);
        let soft = random_clauses(&mut rng, 6);
        let extra: Vec<Lit> = (0..rng.gen_range(1..3usize))
            .map(|_| Lit::new(Var::new(rng.gen_range(0..MAX_VARS)), rng.gen_bool(0.5)))
            .collect();
        let solve = |softs: &[Vec<Lit>]| -> Option<usize> {
            let mut solver = MaxSatSolver::new();
            solver.ensure_vars(MAX_VARS);
            for clause in &hard {
                solver.add_hard(clause.iter().copied());
            }
            for clause in softs {
                solver.add_soft(clause.iter().copied());
            }
            match solver.solve() {
                MaxSatResult::Optimum { cost, .. } => Some(cost),
                MaxSatResult::Unsatisfiable => None,
            }
        };
        let base = solve(&soft);
        let mut extended = soft.clone();
        extended.push(extra);
        let more = solve(&extended);
        match (base, more) {
            (Some(b), Some(m)) => {
                assert!(m >= b && m <= b + 1, "seed {seed}: base {b}, extended {m}");
            }
            (None, None) => {}
            _ => panic!("seed {seed}: hard clauses unchanged, feasibility must match"),
        }
    }
}

/// The two engines — linear search with totalizer, and core-guided
/// Fu–Malik — compute the same optimum.
#[test]
fn engines_agree() {
    use hqs_maxsat::FuMalikSolver;
    for seed in 0..128u64 {
        let mut rng = Rng::seed_from_u64(0x2000 + seed);
        let hard = random_clauses(&mut rng, 7);
        let soft = random_clauses(&mut rng, 7);
        let mut linear = MaxSatSolver::new();
        let mut core_guided = FuMalikSolver::new();
        linear.ensure_vars(MAX_VARS);
        core_guided.ensure_vars(MAX_VARS);
        for clause in &hard {
            linear.add_hard(clause.iter().copied());
            core_guided.add_hard(clause.iter().copied());
        }
        for clause in &soft {
            linear.add_soft(clause.iter().copied());
            core_guided.add_soft(clause.iter().copied());
        }
        let a = match linear.solve() {
            MaxSatResult::Optimum { cost, .. } => Some(cost),
            MaxSatResult::Unsatisfiable => None,
        };
        let b = match core_guided.solve() {
            MaxSatResult::Optimum { cost, .. } => Some(cost),
            MaxSatResult::Unsatisfiable => None,
        };
        assert_eq!(a, b, "seed {seed}");
    }
}
