//! Property-based tests: the MaxSAT solver against the brute-force
//! optimum on random partial instances.

use hqs_base::{Lit, Var};
use hqs_maxsat::{brute_force_optimum, MaxSatResult, MaxSatSolver};
use proptest::prelude::*;

const MAX_VARS: u32 = 6;

fn arb_clauses(max_clauses: usize) -> impl Strategy<Value = Vec<Vec<Lit>>> {
    prop::collection::vec(
        prop::collection::vec(
            (0..MAX_VARS, any::<bool>()).prop_map(|(v, n)| Lit::new(Var::new(v), n)),
            1..4,
        ),
        0..max_clauses,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The solver's optimum equals the brute-force optimum, and the
    /// returned model attains it.
    #[test]
    fn optimum_is_exact(hard in arb_clauses(8), soft in arb_clauses(8)) {
        let expected = brute_force_optimum(MAX_VARS, &hard, &soft);
        let mut solver = MaxSatSolver::new();
        solver.ensure_vars(MAX_VARS);
        for clause in &hard {
            solver.add_hard(clause.iter().copied());
        }
        for clause in &soft {
            solver.add_soft(clause.iter().copied());
        }
        match solver.solve() {
            MaxSatResult::Optimum { cost, model } => {
                prop_assert_eq!(Some(cost), expected);
                // The model satisfies all hard clauses and violates exactly
                // `cost`-or-fewer soft clauses (it could be better than the
                // recomputed count only if counting were wrong).
                for clause in &hard {
                    prop_assert!(clause.iter().any(|&l| model.satisfies(l)));
                }
                let violated = soft
                    .iter()
                    .filter(|c| !c.iter().any(|&l| model.satisfies(l)))
                    .count();
                prop_assert_eq!(violated, cost);
            }
            MaxSatResult::Unsatisfiable => prop_assert_eq!(expected, None),
        }
    }

    /// Adding a soft clause can increase the optimum by at most one.
    #[test]
    fn soft_clause_monotonicity(hard in arb_clauses(6), soft in arb_clauses(6),
                                extra in prop::collection::vec(
                                    (0..MAX_VARS, any::<bool>())
                                        .prop_map(|(v, n)| Lit::new(Var::new(v), n)),
                                    1..3))
    {
        let solve = |softs: &[Vec<Lit>]| -> Option<usize> {
            let mut solver = MaxSatSolver::new();
            solver.ensure_vars(MAX_VARS);
            for clause in &hard {
                solver.add_hard(clause.iter().copied());
            }
            for clause in softs {
                solver.add_soft(clause.iter().copied());
            }
            match solver.solve() {
                MaxSatResult::Optimum { cost, .. } => Some(cost),
                MaxSatResult::Unsatisfiable => None,
            }
        };
        let base = solve(&soft);
        let mut extended = soft.clone();
        extended.push(extra);
        let more = solve(&extended);
        match (base, more) {
            (Some(b), Some(m)) => {
                prop_assert!(m >= b && m <= b + 1, "base {b}, extended {m}");
            }
            (None, None) => {}
            _ => prop_assert!(false, "hard clauses unchanged, feasibility must match"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The two engines — linear search with totalizer, and core-guided
    /// Fu–Malik — compute the same optimum.
    #[test]
    fn engines_agree(hard in arb_clauses(7), soft in arb_clauses(7)) {
        use hqs_maxsat::FuMalikSolver;
        let mut linear = MaxSatSolver::new();
        let mut core_guided = FuMalikSolver::new();
        linear.ensure_vars(MAX_VARS);
        core_guided.ensure_vars(MAX_VARS);
        for clause in &hard {
            linear.add_hard(clause.iter().copied());
            core_guided.add_hard(clause.iter().copied());
        }
        for clause in &soft {
            linear.add_soft(clause.iter().copied());
            core_guided.add_soft(clause.iter().copied());
        }
        let a = match linear.solve() {
            MaxSatResult::Optimum { cost, .. } => Some(cost),
            MaxSatResult::Unsatisfiable => None,
        };
        let b = match core_guided.solve() {
            MaxSatResult::Optimum { cost, .. } => Some(cost),
            MaxSatResult::Unsatisfiable => None,
        };
        prop_assert_eq!(a, b);
    }
}
