//! The totalizer cardinality encoding (Bailleux & Boufkhad).

use hqs_base::Lit;
use hqs_sat::Solver;

/// A totalizer over a set of input literals.
///
/// The encoding introduces, for `m` inputs, output literals `o_1 … o_m`
/// such that whenever at least `k` inputs are true, `o_k` is forced true.
/// Assuming `¬o_k` therefore enforces "at most `k - 1` inputs true", which
/// is exactly what the linear-search MaxSAT loop needs.
///
/// Only the input→output direction is encoded; it is sufficient for
/// upper-bound tightening and keeps the clause count at `O(m²)`.
#[derive(Clone, Debug)]
pub struct Totalizer {
    outputs: Vec<Lit>,
}

impl Totalizer {
    /// Builds the encoding for `inputs` inside `solver` and returns the
    /// output interface.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    #[must_use]
    pub fn encode(solver: &mut Solver, inputs: &[Lit]) -> Self {
        assert!(!inputs.is_empty(), "totalizer needs at least one input");
        let outputs = build(solver, inputs);
        Totalizer { outputs }
    }

    /// Returns the number of inputs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Returns `true` if the totalizer has no inputs (never happens for an
    /// encoded totalizer; present for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// The literal that is forced true whenever at least `k` inputs are
    /// true, for `1 <= k <= len()`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn at_least(&self, k: usize) -> Lit {
        assert!(k >= 1 && k <= self.outputs.len(), "bound out of range");
        self.outputs[k - 1]
    }
}

/// Recursively builds the totalizer tree over `lits`, returning the sorted
/// output literals of the root.
fn build(solver: &mut Solver, lits: &[Lit]) -> Vec<Lit> {
    if lits.len() == 1 {
        return vec![lits[0]];
    }
    let mid = lits.len() / 2;
    let left = build(solver, &lits[..mid]);
    let right = build(solver, &lits[mid..]);
    merge(solver, &left, &right)
}

/// Merges two sorted counter interfaces into a fresh one.
fn merge(solver: &mut Solver, left: &[Lit], right: &[Lit]) -> Vec<Lit> {
    let total = left.len() + right.len();
    let outputs: Vec<Lit> = (0..total)
        .map(|_| Lit::positive(solver.new_var()))
        .collect();
    // i of the left true and j of the right true imply o_{i+j} true.
    for i in 0..=left.len() {
        for j in 0..=right.len() {
            if i + j == 0 {
                continue;
            }
            let mut clause = Vec::with_capacity(3);
            if i > 0 {
                clause.push(!left[i - 1]);
            }
            if j > 0 {
                clause.push(!right[j - 1]);
            }
            clause.push(outputs[i + j - 1]);
            solver.add_clause(clause);
        }
    }
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqs_base::Var;
    use hqs_sat::SolveResult;

    /// Exhaustively verifies that assuming ¬o_k forbids ≥ k true inputs and
    /// allows every pattern with < k true inputs.
    #[test]
    fn bounds_are_exact_for_5_inputs() {
        let n = 5u32;
        for bound in 1..=n as usize {
            let mut solver = Solver::new();
            let inputs: Vec<Lit> = (0..n).map(|_| Lit::positive(solver.new_var())).collect();
            let tot = Totalizer::encode(&mut solver, &inputs);
            let cap = !tot.at_least(bound);
            for pattern in 0u32..(1 << n) {
                let mut assumptions = vec![cap];
                for (i, &input) in inputs.iter().enumerate() {
                    assumptions.push(input.xor_sign(pattern >> i & 1 == 0));
                }
                let expected = if (pattern.count_ones() as usize) < bound {
                    SolveResult::Sat
                } else {
                    SolveResult::Unsat
                };
                assert_eq!(
                    solver.solve(&assumptions),
                    expected,
                    "bound {bound}, pattern {pattern:05b}"
                );
            }
        }
    }

    #[test]
    fn works_with_negative_literal_inputs() {
        let mut solver = Solver::new();
        let a = solver.new_var();
        let b = solver.new_var();
        let inputs = [Lit::negative(a), Lit::negative(b)];
        let tot = Totalizer::encode(&mut solver, &inputs);
        // Forbid 2 false: at most one of a, b may be false.
        let result = solver.solve(&[!tot.at_least(2), Lit::negative(a), Lit::negative(b)]);
        assert_eq!(result, SolveResult::Unsat);
        let result = solver.solve(&[!tot.at_least(2), Lit::negative(a)]);
        assert_eq!(result, SolveResult::Sat);
        assert_eq!(solver.model_value(b), Some(true));
    }

    #[test]
    fn single_input_passthrough() {
        let mut solver = Solver::new();
        let a = Lit::positive(solver.new_var());
        let tot = Totalizer::encode(&mut solver, &[a]);
        assert_eq!(tot.len(), 1);
        assert_eq!(tot.at_least(1), a);
        assert_eq!(solver.solve(&[!tot.at_least(1), a]), SolveResult::Unsat);
    }

    #[test]
    #[should_panic(expected = "bound out of range")]
    fn out_of_range_bound_panics() {
        let mut solver = Solver::new();
        let a = Lit::positive(Var::new(0));
        solver.ensure_vars(1);
        let tot = Totalizer::encode(&mut solver, &[a]);
        let _ = tot.at_least(2);
    }
}
