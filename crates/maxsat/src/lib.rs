//! An exact partial MaxSAT solver.
//!
//! HQS (Gitina et al., DATE 2015, Section III-A) selects a *minimum* set of
//! universal variables to eliminate by solving a partial MaxSAT problem:
//! hard clauses encode that every binary dependency cycle must be broken
//! (Eq. 1 of the paper), soft unit clauses `¬x̂` ask for as few eliminated
//! variables as possible (Eq. 2). This crate provides the solver for such
//! instances: unweighted partial MaxSAT, solved exactly by
//! assumption-based linear search over a totalizer cardinality encoding on
//! top of the [`hqs_sat`] CDCL solver.
//!
//! # Examples
//!
//! ```
//! use hqs_base::{Lit, Var};
//! use hqs_maxsat::{MaxSatResult, MaxSatSolver};
//!
//! // Hard: (a ∨ b). Soft: ¬a, ¬b. Optimum violates exactly one soft clause.
//! let mut solver = MaxSatSolver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_hard([Lit::positive(a), Lit::positive(b)]);
//! solver.add_soft([Lit::negative(a)]);
//! solver.add_soft([Lit::negative(b)]);
//! match solver.solve() {
//!     MaxSatResult::Optimum { cost, model } => {
//!         assert_eq!(cost, 1);
//!         assert!(model.satisfies(Lit::positive(a)) || model.satisfies(Lit::positive(b)));
//!     }
//!     MaxSatResult::Unsatisfiable => unreachable!("hard clauses are satisfiable"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fumalik;
mod totalizer;

pub use fumalik::FuMalikSolver;
pub use totalizer::Totalizer;

use hqs_base::{Assignment, Lit, Var};
use hqs_obs::{Metric, Obs};
use hqs_sat::{SolveResult, Solver};

/// Result of a [`MaxSatSolver::solve`] call.
#[derive(Clone, Debug)]
pub enum MaxSatResult {
    /// The hard clauses are satisfiable; `cost` is the minimum number of
    /// violated soft clauses and `model` attains it.
    Optimum {
        /// Minimum number of violated soft clauses.
        cost: usize,
        /// A model of the hard clauses attaining `cost`.
        model: Assignment,
    },
    /// The hard clauses alone are unsatisfiable.
    Unsatisfiable,
}

/// An exact solver for unweighted partial MaxSAT.
///
/// Soft clauses all have weight 1, which is what the HQS elimination-set
/// selection needs. See the [crate docs](crate) for background and an
/// example.
#[derive(Debug, Default)]
pub struct MaxSatSolver {
    sat: Solver,
    /// One relaxation literal per soft clause; the soft clause is violated
    /// iff its relaxation literal is true.
    relaxers: Vec<Lit>,
    obs: Obs,
}

impl MaxSatSolver {
    /// Creates an empty instance.
    #[must_use]
    pub fn new() -> Self {
        MaxSatSolver::default()
    }

    /// Attaches an observability handle: each [`solve`](MaxSatSolver::solve)
    /// then counts itself and its soft-clause load, and the inner CDCL
    /// solver reports its own conflict/propagation counters.
    ///
    /// Call this before adding variables or clauses — the inner CDCL
    /// solver is rebuilt with the observer installed.
    ///
    /// # Panics
    ///
    /// Panics if variables have already been allocated.
    pub fn set_observer(&mut self, obs: Obs) {
        assert_eq!(
            self.sat.num_vars(),
            0,
            "attach the observer before adding variables or clauses"
        );
        self.sat = Solver::builder()
            .observer(obs.clone())
            .build()
            .expect("default SAT configuration is valid");
        self.obs = obs;
    }

    /// Allocates a fresh problem variable.
    pub fn new_var(&mut self) -> Var {
        self.sat.new_var()
    }

    /// Ensures at least `n` variables exist.
    pub fn ensure_vars(&mut self, n: u32) {
        self.sat.ensure_vars(n);
    }

    /// Adds a hard clause.
    pub fn add_hard<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        self.sat.add_clause(lits);
    }

    /// Adds a weight-1 soft clause.
    ///
    /// Unit soft clauses need no auxiliary variable (the negation of the
    /// literal is the relaxation indicator); longer clauses get a fresh
    /// relaxation variable `r` and the hard clause `C ∨ r`.
    pub fn add_soft<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        let lits: Vec<Lit> = lits.into_iter().collect();
        // Register clause variables before allocating any relaxation
        // variable, otherwise the fresh relaxer could collide with a clause
        // variable the solver has not seen yet.
        for &l in &lits {
            self.sat.ensure_vars(l.var().bound());
        }
        match lits.as_slice() {
            [] => {
                // An empty soft clause can never be satisfied: account for it
                // with a relaxer fixed to true.
                let r = self.sat.new_var();
                self.sat.add_clause([Lit::positive(r)]);
                self.relaxers.push(Lit::positive(r));
            }
            [unit] => {
                self.relaxers.push(!*unit);
            }
            _ => {
                let r = Lit::positive(self.sat.new_var());
                let mut clause = lits;
                clause.push(r);
                self.sat.add_clause(clause);
                self.relaxers.push(r);
            }
        }
    }

    /// Returns the number of soft clauses added so far.
    #[must_use]
    pub fn num_soft(&self) -> usize {
        self.relaxers.len()
    }

    /// Computes the exact optimum.
    ///
    /// Runs linear search from above: first a plain SAT call on the hard
    /// clauses gives an upper bound, then a totalizer over the relaxation
    /// literals is tightened one step at a time under assumptions until the
    /// bound becomes unsatisfiable.
    pub fn solve(&mut self) -> MaxSatResult {
        self.obs.add(Metric::MaxSatCalls, 1);
        self.obs
            .add(Metric::MaxSatSoftClauses, self.relaxers.len() as u64);
        match self.sat.solve(&[]) {
            SolveResult::Unsat => return MaxSatResult::Unsatisfiable,
            SolveResult::Sat => {}
            SolveResult::Unknown => unreachable!("no budget set on MaxSAT's SAT backend"),
        }
        let mut best_model = self.sat.model();
        let mut best_cost = self.current_cost(&best_model);
        if best_cost == 0 || self.relaxers.is_empty() {
            return MaxSatResult::Optimum {
                cost: best_cost,
                model: best_model,
            };
        }
        let totalizer = Totalizer::encode(&mut self.sat, &self.relaxers);
        while best_cost > 0 {
            // Forbid `best_cost` or more violated softs: ¬output[best_cost].
            let bound_lit = !totalizer.at_least(best_cost);
            match self.sat.solve(&[bound_lit]) {
                SolveResult::Sat => {
                    best_model = self.sat.model();
                    let cost = self.current_cost(&best_model);
                    debug_assert!(cost < best_cost, "cost strictly decreases");
                    best_cost = cost;
                }
                SolveResult::Unsat => break,
                SolveResult::Unknown => unreachable!("no budget set on MaxSAT's SAT backend"),
            }
        }
        MaxSatResult::Optimum {
            cost: best_cost,
            model: best_model,
        }
    }

    fn current_cost(&self, model: &Assignment) -> usize {
        self.relaxers
            .iter()
            .filter(|&&r| model.satisfies(r))
            .count()
    }
}

/// Brute-force partial MaxSAT oracle over all assignments of `num_vars`
/// variables; for tests on tiny instances only.
///
/// `hard` and `soft` are slices of clauses given as literal vectors. Returns
/// `None` if the hard clauses are unsatisfiable, otherwise the minimum
/// number of violated soft clauses.
#[must_use]
pub fn brute_force_optimum(num_vars: u32, hard: &[Vec<Lit>], soft: &[Vec<Lit>]) -> Option<usize> {
    assert!(num_vars <= 20, "brute force oracle limited to 20 variables");
    let mut best: Option<usize> = None;
    for bits in 0u64..(1u64 << num_vars) {
        let model: Assignment = (0..num_vars)
            .map(|i| (Var::new(i), bits >> i & 1 == 1))
            .collect();
        let sat_clause = |clause: &[Lit]| clause.iter().any(|&l| model.satisfies(l));
        if !hard.iter().all(|c| sat_clause(c)) {
            continue;
        }
        let cost = soft.iter().filter(|c| !sat_clause(c)).count();
        best = Some(best.map_or(cost, |b: usize| b.min(cost)));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(value: i64) -> Lit {
        Lit::from_dimacs(value).unwrap()
    }

    #[test]
    fn no_soft_clauses_is_plain_sat() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1), lit(2)]);
        match s.solve() {
            MaxSatResult::Optimum { cost, .. } => assert_eq!(cost, 0),
            MaxSatResult::Unsatisfiable => panic!("satisfiable hard clauses"),
        }
    }

    #[test]
    fn hard_unsat_detected() {
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(1)]);
        s.add_hard([lit(-1)]);
        s.add_soft([lit(2)]);
        assert!(matches!(s.solve(), MaxSatResult::Unsatisfiable));
    }

    #[test]
    fn one_of_two_conflicting_softs() {
        let mut s = MaxSatSolver::new();
        s.add_soft([lit(1)]);
        s.add_soft([lit(-1)]);
        match s.solve() {
            MaxSatResult::Optimum { cost, .. } => assert_eq!(cost, 1),
            MaxSatResult::Unsatisfiable => panic!(),
        }
    }

    #[test]
    fn vertex_cover_style_instance() {
        // Edges (1,2), (2,3), (3,4): hard clauses x_i ∨ x_j; soft ¬x_i.
        // Minimum vertex cover is {2, 3} ⇒ cost 2... actually {2,4} or {2,3}:
        // size 2.
        let mut s = MaxSatSolver::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            s.add_hard([lit(a), lit(b)]);
        }
        for v in 1..=4 {
            s.add_soft([lit(-v)]);
        }
        match s.solve() {
            MaxSatResult::Optimum { cost, model } => {
                assert_eq!(cost, 2);
                for (a, b) in [(1, 2), (2, 3), (3, 4)] {
                    assert!(model.satisfies(lit(a)) || model.satisfies(lit(b)));
                }
            }
            MaxSatResult::Unsatisfiable => panic!(),
        }
    }

    #[test]
    fn non_unit_soft_clauses() {
        // Hard: ¬a. Softs: (a ∨ b), (a ∨ ¬b) — exactly one must break? No:
        // with a=false, choose b freely; (a∨b) holds iff b, (a∨¬b) iff ¬b.
        // Optimum violates exactly one.
        let mut s = MaxSatSolver::new();
        s.add_hard([lit(-1)]);
        s.add_soft([lit(1), lit(2)]);
        s.add_soft([lit(1), lit(-2)]);
        match s.solve() {
            MaxSatResult::Optimum { cost, .. } => assert_eq!(cost, 1),
            MaxSatResult::Unsatisfiable => panic!(),
        }
    }

    #[test]
    fn empty_soft_clause_counts_once() {
        let mut s = MaxSatSolver::new();
        s.add_soft(std::iter::empty());
        s.add_soft([lit(1)]);
        match s.solve() {
            MaxSatResult::Optimum { cost, .. } => assert_eq!(cost, 1),
            MaxSatResult::Unsatisfiable => panic!(),
        }
    }

    #[test]
    fn matches_brute_force_on_fixed_instances() {
        type Case = (u32, Vec<Vec<i64>>, Vec<Vec<i64>>);
        let cases: Vec<Case> = vec![
            (3, vec![vec![1, 2, 3]], vec![vec![-1], vec![-2], vec![-3]]),
            (
                4,
                vec![vec![1, 2], vec![-2, 3], vec![-3, -4]],
                vec![vec![2], vec![4], vec![-1]],
            ),
            (2, vec![], vec![vec![1], vec![-1], vec![2], vec![-2]]),
        ];
        for (n, hard, soft) in cases {
            let to_lits = |cs: &Vec<Vec<i64>>| -> Vec<Vec<Lit>> {
                cs.iter()
                    .map(|c| c.iter().map(|&v| lit(v)).collect())
                    .collect()
            };
            let hard_l = to_lits(&hard);
            let soft_l = to_lits(&soft);
            let expected = brute_force_optimum(n, &hard_l, &soft_l).unwrap();
            let mut s = MaxSatSolver::new();
            s.ensure_vars(n);
            for c in &hard_l {
                s.add_hard(c.iter().copied());
            }
            for c in &soft_l {
                s.add_soft(c.iter().copied());
            }
            match s.solve() {
                MaxSatResult::Optimum { cost, .. } => assert_eq!(cost, expected),
                MaxSatResult::Unsatisfiable => panic!(),
            }
        }
    }

    #[test]
    fn hqs_style_cycle_breaking_instance() {
        // Two binary cycles as in Eq. (1): {y,y'} with D_y \ D_y' = {x1,x2},
        // D_y' \ D_y = {x3}; and {y,y''} with difference sets {x1}, {x4}.
        // Variables x̂1..x̂4 are 1..4. Selector encoding mimics hqs-core.
        let mut s = MaxSatSolver::new();
        s.ensure_vars(4);
        // Cycle 1: (x̂1 ∧ x̂2) ∨ x̂3  — with selector t=5.
        s.add_hard([lit(-5), lit(1)]);
        s.add_hard([lit(-5), lit(2)]);
        s.add_hard([lit(5), lit(3)]);
        // Cycle 2: x̂1 ∨ x̂4 — direct clause.
        s.add_hard([lit(1), lit(4)]);
        for v in 1..=4 {
            s.add_soft([lit(-v)]);
        }
        match s.solve() {
            MaxSatResult::Optimum { cost, model } => {
                // Best: eliminate only x3 and x4 (cost 2)? Or x1 + x3 (cost 2)?
                // Check optimum is 2 and hard constraints hold.
                assert_eq!(cost, 2);
                let elim: Vec<bool> = (1..=4).map(|v| model.satisfies(lit(v))).collect();
                let cycle1 = (elim[0] && elim[1]) || elim[2];
                let cycle2 = elim[0] || elim[3];
                assert!(cycle1 && cycle2);
            }
            MaxSatResult::Unsatisfiable => panic!(),
        }
    }
}
