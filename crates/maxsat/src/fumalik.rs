//! The Fu–Malik core-guided MaxSAT algorithm.
//!
//! An alternative to the linear-search engine in the crate root: instead
//! of tightening an upper bound, Fu–Malik climbs from below. Soft clauses
//! carry *blocking* assumption literals; every UNSAT answer returns a core
//! of softs, each core member gets a fresh relaxation variable (with an
//! at-most-one constraint across the core), and the optimum is the number
//! of cores extracted. Core-guided search is how antom — the paper's
//! MaxSAT backend — operates; both engines are exposed so the tests can
//! cross-check them.

use hqs_base::{Lit, Var};
use hqs_sat::{SolveResult, Solver};
use std::collections::HashMap;

use crate::MaxSatResult;

/// An unweighted partial MaxSAT solver using the Fu–Malik algorithm.
///
/// # Examples
///
/// ```
/// use hqs_base::{Lit, Var};
/// use hqs_maxsat::{FuMalikSolver, MaxSatResult};
///
/// let mut solver = FuMalikSolver::new();
/// let a = solver.new_var();
/// solver.add_hard([Lit::positive(a)]);
/// solver.add_soft([Lit::negative(a)]);
/// solver.add_soft([Lit::positive(a)]);
/// match solver.solve() {
///     MaxSatResult::Optimum { cost, .. } => assert_eq!(cost, 1),
///     MaxSatResult::Unsatisfiable => unreachable!(),
/// }
/// ```
#[derive(Debug, Default)]
pub struct FuMalikSolver {
    sat: Solver,
    /// Per soft clause: its current literals (including relaxers added in
    /// earlier rounds) and its current blocking literal.
    softs: Vec<SoftClause>,
}

#[derive(Debug, Clone)]
struct SoftClause {
    lits: Vec<Lit>,
    blocker: Lit,
}

impl FuMalikSolver {
    /// Creates an empty instance.
    #[must_use]
    pub fn new() -> Self {
        FuMalikSolver::default()
    }

    /// Allocates a fresh problem variable.
    pub fn new_var(&mut self) -> Var {
        self.sat.new_var()
    }

    /// Ensures at least `n` variables exist.
    pub fn ensure_vars(&mut self, n: u32) {
        self.sat.ensure_vars(n);
    }

    /// Adds a hard clause.
    pub fn add_hard<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        self.sat.add_clause(lits);
    }

    /// Adds a weight-1 soft clause.
    pub fn add_soft<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        let lits: Vec<Lit> = lits.into_iter().collect();
        for &l in &lits {
            self.sat.ensure_vars(l.var().bound());
        }
        let blocker = Lit::positive(self.sat.new_var());
        let mut clause = lits.clone();
        clause.push(blocker);
        self.sat.add_clause(clause);
        self.softs.push(SoftClause { lits, blocker });
    }

    /// Returns the number of soft clauses.
    #[must_use]
    pub fn num_soft(&self) -> usize {
        self.softs.len()
    }

    /// Computes the exact optimum by iterated core relaxation.
    pub fn solve(&mut self) -> MaxSatResult {
        let mut cost = 0usize;
        loop {
            let assumptions: Vec<Lit> = self.softs.iter().map(|s| !s.blocker).collect();
            match self.sat.solve(&assumptions) {
                SolveResult::Sat => {
                    let model = self.sat.model();
                    return MaxSatResult::Optimum { cost, model };
                }
                SolveResult::Unsat => {
                    let failed: Vec<Lit> = self.sat.failed_assumptions().to_vec();
                    if failed.is_empty() {
                        // The hard clauses alone are unsatisfiable.
                        return MaxSatResult::Unsatisfiable;
                    }
                    let core: Vec<usize> = {
                        let by_blocker: HashMap<Lit, usize> = self
                            .softs
                            .iter()
                            .enumerate()
                            .map(|(i, s)| (!s.blocker, i))
                            .collect();
                        failed
                            .iter()
                            .filter_map(|l| by_blocker.get(l).copied())
                            .collect()
                    };
                    if core.is_empty() {
                        // UNSAT without any soft involved ⇒ hard conflict.
                        return MaxSatResult::Unsatisfiable;
                    }
                    self.relax_core(&core);
                    cost += 1;
                }
                SolveResult::Unknown => unreachable!("no conflict budget set"),
            }
        }
    }

    /// Adds one fresh relaxer per core member, re-posts the soft clauses
    /// with new blockers, retires the old copies, and constrains the new
    /// relaxers pairwise to at-most-one.
    fn relax_core(&mut self, core: &[usize]) {
        let mut relaxers = Vec::with_capacity(core.len());
        for &index in core {
            let relaxer = Lit::positive(self.sat.new_var());
            let new_blocker = Lit::positive(self.sat.new_var());
            // Retire the old copy: its blocker becomes permanently true.
            let old_blocker = self.softs[index].blocker;
            self.sat.add_clause([old_blocker]);
            // New copy with the relaxer folded in.
            self.softs[index].lits.push(relaxer);
            let mut clause = self.softs[index].lits.clone();
            clause.push(new_blocker);
            self.sat.add_clause(clause);
            self.softs[index].blocker = new_blocker;
            relaxers.push(relaxer);
        }
        // At most one relaxer of this round may fire (pairwise encoding —
        // cores are small in our workloads).
        for i in 0..relaxers.len() {
            for j in (i + 1)..relaxers.len() {
                self.sat.add_clause([!relaxers[i], !relaxers[j]]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force_optimum;

    fn lit(value: i64) -> Lit {
        Lit::from_dimacs(value).unwrap()
    }

    #[test]
    fn hard_only_is_sat_with_zero_cost() {
        let mut s = FuMalikSolver::new();
        s.add_hard([lit(1), lit(2)]);
        match s.solve() {
            MaxSatResult::Optimum { cost, .. } => assert_eq!(cost, 0),
            MaxSatResult::Unsatisfiable => panic!(),
        }
    }

    #[test]
    fn hard_conflict_is_unsatisfiable() {
        let mut s = FuMalikSolver::new();
        s.add_hard([lit(1)]);
        s.add_hard([lit(-1)]);
        s.add_soft([lit(2)]);
        assert!(matches!(s.solve(), MaxSatResult::Unsatisfiable));
    }

    #[test]
    fn conflicting_softs_cost_one() {
        let mut s = FuMalikSolver::new();
        s.add_soft([lit(1)]);
        s.add_soft([lit(-1)]);
        match s.solve() {
            MaxSatResult::Optimum { cost, .. } => assert_eq!(cost, 1),
            MaxSatResult::Unsatisfiable => panic!(),
        }
    }

    #[test]
    fn vertex_cover_instance() {
        let mut s = FuMalikSolver::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            s.add_hard([lit(a), lit(b)]);
        }
        for v in 1..=4 {
            s.add_soft([lit(-v)]);
        }
        match s.solve() {
            MaxSatResult::Optimum { cost, model } => {
                assert_eq!(cost, 2);
                for (a, b) in [(1, 2), (2, 3), (3, 4)] {
                    assert!(model.satisfies(lit(a)) || model.satisfies(lit(b)));
                }
            }
            MaxSatResult::Unsatisfiable => panic!(),
        }
    }

    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        use hqs_base::Rng;
        let mut rng = Rng::seed_from_u64(1717);
        for _ in 0..60 {
            let num_vars = rng.gen_range(2..=5u32);
            let gen_clauses = |rng: &mut Rng, count: usize| -> Vec<Vec<Lit>> {
                (0..count)
                    .map(|_| {
                        (0..rng.gen_range(1..=3usize))
                            .map(|_| {
                                Lit::new(Var::new(rng.gen_range(0..num_vars)), rng.gen_bool(0.5))
                            })
                            .collect()
                    })
                    .collect()
            };
            let hard_count = rng.gen_range(0..=5usize);
            let hard = gen_clauses(&mut rng, hard_count);
            let soft_count = rng.gen_range(1..=6usize);
            let soft = gen_clauses(&mut rng, soft_count);
            let expected = brute_force_optimum(num_vars, &hard, &soft);
            let mut s = FuMalikSolver::new();
            s.ensure_vars(num_vars);
            for c in &hard {
                s.add_hard(c.iter().copied());
            }
            for c in &soft {
                s.add_soft(c.iter().copied());
            }
            match s.solve() {
                MaxSatResult::Optimum { cost, .. } => {
                    assert_eq!(Some(cost), expected, "hard {hard:?}, soft {soft:?}");
                }
                MaxSatResult::Unsatisfiable => assert_eq!(expected, None),
            }
        }
    }
}
