//! The clause arena: one contiguous `Vec<u32>` holding every clause.
//!
//! Each clause is a 3-word header followed by its literal codes:
//!
//! ```text
//!  word 0   len << 5 | tier << 3 | used << 2 | deleted << 1 | learnt
//!  word 1   f32 activity bits
//!  word 2   LBD at learn time (0 for problem clauses)
//!  word 3…  literal codes (Lit::code), len of them
//! ```
//!
//! A [`ClauseRef`] is the word offset of the header, so dereferencing a
//! clause is one add instead of the double indirection of a
//! `Vec<ClauseData>` of heap-allocated literal vectors — the propagation
//! loop touches one contiguous cache line per clause. Deleting a clause
//! only sets the `deleted` bit (watch lists drop stale entries lazily);
//! [`ClauseArena::collect_garbage`] compacts the arena once the wasted
//! share grows, returning an offset remap the solver applies to watch
//! lists, reason references and tier lists.

use hqs_base::Lit;

/// Word offset of a clause header inside the arena.
pub(crate) type ClauseRef = u32;

/// Sentinel for "no reason clause" in the per-variable reason array.
pub(crate) const NO_REASON: ClauseRef = ClauseRef::MAX;

/// Words of header before the literals of each clause.
pub(crate) const HEADER_WORDS: usize = 3;

const FLAG_LEARNT: u32 = 1;
const FLAG_DELETED: u32 = 1 << 1;
const FLAG_USED: u32 = 1 << 2;
const TIER_SHIFT: u32 = 3;
const TIER_MASK: u32 = 0b11 << TIER_SHIFT;
const LEN_SHIFT: u32 = 5;

/// Learnt-clause quality tier (Chanseok Oh's three-tier scheme).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub(crate) enum Tier {
    /// Glue clauses (LBD ≤ core cutoff): kept forever.
    Core = 0,
    /// Mid-quality clauses: demoted to local when unused for a sweep.
    Tier2 = 1,
    /// Everything else: candidates for deletion at every reduction.
    Local = 2,
}

impl Tier {
    fn from_bits(bits: u32) -> Tier {
        match bits {
            0 => Tier::Core,
            1 => Tier::Tier2,
            _ => Tier::Local,
        }
    }
}

/// The contiguous clause store. See the module docs for the layout.
pub(crate) struct ClauseArena {
    /// Raw storage; `pub(crate)` so the propagation and analysis hot
    /// loops index it directly under split borrows.
    pub(crate) words: Vec<u32>,
    /// Words occupied by deleted clauses (headers included).
    wasted: usize,
}

impl ClauseArena {
    pub(crate) fn new() -> Self {
        ClauseArena {
            words: Vec::new(),
            wasted: 0,
        }
    }

    /// Appends a clause and returns its reference.
    pub(crate) fn alloc(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        let cref = self.words.len() as u32;
        let flags = ((lits.len() as u32) << LEN_SHIFT)
            | ((Tier::Local as u32) << TIER_SHIFT)
            | (u32::from(learnt) * FLAG_LEARNT);
        self.words.reserve(HEADER_WORDS + lits.len());
        self.words.push(flags);
        self.words.push(0.0f32.to_bits());
        self.words.push(0);
        self.words.extend(lits.iter().map(|l| l.code()));
        cref
    }

    #[inline]
    pub(crate) fn len(&self, c: ClauseRef) -> usize {
        // analyze::allow(panic): a ClauseRef is an in-bounds header offset by construction
        (self.words[c as usize] >> LEN_SHIFT) as usize
    }

    /// Index of the first literal word of `c`.
    #[inline]
    pub(crate) fn lits_start(c: ClauseRef) -> usize {
        c as usize + HEADER_WORDS
    }

    /// The literal codes of `c` as a slice.
    #[inline]
    pub(crate) fn lit_codes(&self, c: ClauseRef) -> &[u32] {
        let start = Self::lits_start(c);
        &self.words[start..start + self.len(c)]
    }

    #[inline]
    pub(crate) fn lit(&self, c: ClauseRef, k: usize) -> Lit {
        Lit::from_code(self.words[Self::lits_start(c) + k])
    }

    /// The literals of `c`, collected (for proof logging and tests).
    pub(crate) fn lits_vec(&self, c: ClauseRef) -> Vec<Lit> {
        self.lit_codes(c)
            .iter()
            .map(|&w| Lit::from_code(w))
            .collect()
    }

    #[inline]
    pub(crate) fn swap_lits(&mut self, c: ClauseRef, i: usize, j: usize) {
        let start = Self::lits_start(c);
        self.words.swap(start + i, start + j);
    }

    #[inline]
    pub(crate) fn is_learnt(&self, c: ClauseRef) -> bool {
        // analyze::allow(panic): a ClauseRef is an in-bounds header offset by construction
        self.words[c as usize] & FLAG_LEARNT != 0
    }

    #[inline]
    pub(crate) fn is_deleted(&self, c: ClauseRef) -> bool {
        // analyze::allow(panic): a ClauseRef is an in-bounds header offset by construction
        self.words[c as usize] & FLAG_DELETED != 0
    }

    /// Marks `c` deleted; its words count as wasted until the next GC.
    pub(crate) fn mark_deleted(&mut self, c: ClauseRef) {
        debug_assert!(!self.is_deleted(c));
        self.words[c as usize] |= FLAG_DELETED;
        self.wasted += HEADER_WORDS + self.len(c);
    }

    #[inline]
    pub(crate) fn is_used(&self, c: ClauseRef) -> bool {
        // analyze::allow(panic): a ClauseRef is an in-bounds header offset by construction
        self.words[c as usize] & FLAG_USED != 0
    }

    #[inline]
    pub(crate) fn set_used(&mut self, c: ClauseRef, used: bool) {
        // analyze::allow(panic) lines=5: a ClauseRef is an in-bounds header offset by construction
        if used {
            self.words[c as usize] |= FLAG_USED;
        } else {
            self.words[c as usize] &= !FLAG_USED;
        }
    }

    #[inline]
    pub(crate) fn tier(&self, c: ClauseRef) -> Tier {
        // analyze::allow(panic): a ClauseRef is an in-bounds header offset by construction
        Tier::from_bits((self.words[c as usize] & TIER_MASK) >> TIER_SHIFT)
    }

    pub(crate) fn set_tier(&mut self, c: ClauseRef, tier: Tier) {
        // analyze::allow(panic) lines=2: a ClauseRef is an in-bounds header offset by construction
        let w = self.words[c as usize];
        self.words[c as usize] = (w & !TIER_MASK) | (tier as u32) << TIER_SHIFT;
    }

    #[inline]
    pub(crate) fn activity(&self, c: ClauseRef) -> f32 {
        // analyze::allow(panic): the three header words always exist at a ClauseRef
        f32::from_bits(self.words[c as usize + 1])
    }

    #[inline]
    pub(crate) fn set_activity(&mut self, c: ClauseRef, activity: f32) {
        // analyze::allow(panic): the three header words always exist at a ClauseRef
        self.words[c as usize + 1] = activity.to_bits();
    }

    #[inline]
    pub(crate) fn lbd(&self, c: ClauseRef) -> u32 {
        // analyze::allow(panic): the three header words always exist at a ClauseRef
        self.words[c as usize + 2]
    }

    #[inline]
    pub(crate) fn set_lbd(&mut self, c: ClauseRef, lbd: u32) {
        // analyze::allow(panic): the three header words always exist at a ClauseRef
        self.words[c as usize + 2] = lbd;
    }

    /// Words currently occupied by deleted clauses.
    pub(crate) fn wasted_words(&self) -> usize {
        self.wasted
    }

    /// Iterates all clause references, deleted ones included.
    pub(crate) fn refs(&self) -> ArenaRefs<'_> {
        ArenaRefs {
            arena: self,
            off: 0,
        }
    }

    /// Compacts the arena, dropping deleted clauses. Returns the offset
    /// remap as `(old, new)` pairs sorted by `old` — look up survivors
    /// with a binary search; a miss means the clause was deleted.
    pub(crate) fn collect_garbage(&mut self) -> Vec<(ClauseRef, ClauseRef)> {
        let mut compacted = Vec::with_capacity(self.words.len() - self.wasted);
        let mut remap = Vec::new();
        let mut off = 0usize;
        while off < self.words.len() {
            let total = HEADER_WORDS + self.len(off as u32);
            if !self.is_deleted(off as u32) {
                remap.push((off as u32, compacted.len() as u32));
                compacted.extend_from_slice(&self.words[off..off + total]);
            }
            off += total;
        }
        self.words = compacted;
        self.wasted = 0;
        remap
    }
}

pub(crate) struct ArenaRefs<'a> {
    arena: &'a ClauseArena,
    off: usize,
}

impl Iterator for ArenaRefs<'_> {
    type Item = ClauseRef;

    fn next(&mut self) -> Option<ClauseRef> {
        if self.off >= self.arena.words.len() {
            return None;
        }
        let c = self.off as u32;
        self.off += HEADER_WORDS + self.arena.len(c);
        Some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqs_base::Var;

    fn lits(codes: &[u32]) -> Vec<Lit> {
        codes.iter().map(|&c| Lit::from_code(c)).collect()
    }

    #[test]
    fn roundtrip_header_and_literals() {
        let mut arena = ClauseArena::new();
        let a = arena.alloc(&lits(&[0, 3, 4]), false);
        let b = arena.alloc(&lits(&[5, 7]), true);
        assert_eq!(arena.len(a), 3);
        assert_eq!(arena.len(b), 2);
        assert!(!arena.is_learnt(a));
        assert!(arena.is_learnt(b));
        assert_eq!(arena.lit(a, 1), Lit::negative(Var::new(1)));
        assert_eq!(arena.lit_codes(b), &[5, 7]);
        arena.set_lbd(b, 2);
        arena.set_activity(b, 1.5);
        assert_eq!(arena.lbd(b), 2);
        assert!((arena.activity(b) - 1.5).abs() < f32::EPSILON);
        arena.set_tier(b, Tier::Core);
        assert_eq!(arena.tier(b), Tier::Core);
        assert_eq!(arena.tier(a), Tier::Local);
        arena.set_used(b, true);
        assert!(arena.is_used(b));
        arena.set_used(b, false);
        assert!(!arena.is_used(b));
        assert_eq!(arena.refs().collect::<Vec<_>>(), vec![a, b]);
    }

    #[test]
    fn swap_moves_literals_in_place() {
        let mut arena = ClauseArena::new();
        let c = arena.alloc(&lits(&[2, 4, 6]), false);
        arena.swap_lits(c, 0, 2);
        assert_eq!(arena.lit_codes(c), &[6, 4, 2]);
    }

    #[test]
    fn gc_drops_deleted_and_remaps_survivors() {
        let mut arena = ClauseArena::new();
        let a = arena.alloc(&lits(&[0, 2]), false);
        let b = arena.alloc(&lits(&[4, 6, 8]), true);
        let c = arena.alloc(&lits(&[1, 3]), true);
        arena.set_lbd(b, 3);
        arena.mark_deleted(a);
        assert_eq!(arena.wasted_words(), HEADER_WORDS + 2);
        let remap = arena.collect_garbage();
        assert_eq!(arena.wasted_words(), 0);
        // `a` is gone; `b` and `c` survive with their payloads intact.
        assert!(remap.binary_search_by_key(&a, |&(o, _)| o).is_err());
        let new_b = remap[remap
            .binary_search_by_key(&b, |&(o, _)| o)
            .expect("b survives")]
        .1;
        let new_c = remap[remap
            .binary_search_by_key(&c, |&(o, _)| o)
            .expect("c survives")]
        .1;
        assert_eq!(arena.lit_codes(new_b), &[4, 6, 8]);
        assert_eq!(arena.lbd(new_b), 3);
        assert_eq!(arena.lit_codes(new_c), &[1, 3]);
        assert_eq!(arena.refs().collect::<Vec<_>>(), vec![new_b, new_c]);
    }
}
