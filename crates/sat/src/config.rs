//! Typed solver configuration, validated at build time.
//!
//! [`SatConfig`] replaces the old `set_*` mutator surface
//! (`set_max_learnts`, `set_conflict_budget`, …): every search-shaping
//! knob is a plain data field, hand-assembled literals and
//! [`SatConfig::builder`] chains go through the same
//! [`validate`](SatConfig::validate) checks, and a configured
//! [`Solver`](crate::Solver) never changes behaviour mid-flight.

use std::fmt;

/// Restart policy of the CDCL loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RestartMode {
    /// Fixed Luby-sequence intervals (base 100 conflicts) — the
    /// classic MiniSat schedule; robust, never adapts.
    Luby,
    /// Glucose-style adaptive restarts: restart when the fast
    /// exponential moving average of conflict LBDs rises above the slow
    /// one (the search is producing worse clauses than its long-run
    /// norm).
    Ema,
    /// EMA-driven with a Luby safety net: when the EMA trigger stays
    /// quiet for several Luby intervals (typical on satisfiable
    /// instances, where conflicts are rare and the EMAs starve), fall
    /// back to Luby restarts until the EMA fires again. Mode switches
    /// are counted in `SolverStats::restart_mode_switches`.
    #[default]
    Hybrid,
}

/// Search-shaping configuration of a [`Solver`](crate::Solver).
///
/// Plain data: construct via [`SatConfig::builder`] or as a struct
/// literal over [`SatConfig::default`]; either way
/// [`SolverBuilder::build`](crate::SolverBuilder::build) validates it.
///
/// # Examples
///
/// ```
/// use hqs_sat::{RestartMode, SatConfig, Solver};
///
/// let config = SatConfig::builder()
///     .restart_mode(RestartMode::Luby)
///     .chrono_backtrack(false)
///     .conflict_budget(Some(10_000))
///     .build()
///     .expect("valid");
/// let solver = Solver::builder().config(config).build().expect("valid");
/// assert_eq!(solver.config().restart_mode, RestartMode::Luby);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SatConfig {
    /// Restart policy; default [`RestartMode::Hybrid`].
    pub restart_mode: RestartMode,
    /// Chronological backtracking: when conflict analysis asks for a
    /// backjump further than [`chrono_threshold`](Self::chrono_threshold)
    /// levels, backtrack one level instead and let the asserting literal
    /// propagate there — recent work is preserved instead of being
    /// redone. Default on.
    pub chrono_backtrack: bool,
    /// Minimum backjump distance (in decision levels) before
    /// chronological backtracking kicks in.
    pub chrono_threshold: u32,
    /// Learnt clauses with LBD at most this stay in the core tier
    /// forever (glue-clause protection). Default 2.
    pub core_lbd_cutoff: u32,
    /// Learnt clauses with LBD at most this start in tier2; above it
    /// they start in the local tier. Default 6.
    pub tier2_lbd_cutoff: u32,
    /// Conflicts between tier2 demotion sweeps: a tier2 clause not used
    /// in any conflict since the last sweep drops to the local tier.
    pub tier2_interval: u64,
    /// Local-tier size that triggers a database reduction. This is an
    /// upper bound: the effective cap is
    /// `local_cap.min((originals / 2).max(128))`, so small formulas keep
    /// a proportionally small learnt database (the MiniSat
    /// `max_learnts` discipline) while large ones stop at `local_cap`.
    pub local_cap: usize,
    /// Added to the effective local cap after every reduction, so the
    /// kept database grows slowly on long runs.
    pub local_cap_growth: usize,
    /// Conflict limit applied to **each** [`solve`](crate::Solver::solve)
    /// call; the call returns [`Unknown`](crate::SolveResult::Unknown)
    /// when exhausted. `None` (default) is unlimited.
    pub conflict_budget: Option<u64>,
}

impl Default for SatConfig {
    fn default() -> Self {
        SatConfig {
            restart_mode: RestartMode::Hybrid,
            chrono_backtrack: true,
            chrono_threshold: 100,
            core_lbd_cutoff: 2,
            tier2_lbd_cutoff: 6,
            tier2_interval: 1_000,
            local_cap: 500,
            local_cap_growth: 100,
            conflict_budget: None,
        }
    }
}

impl SatConfig {
    /// A builder over the default configuration.
    pub fn builder() -> SatConfigBuilder {
        SatConfigBuilder::default()
    }

    /// Checks internal consistency; called by
    /// [`SolverBuilder::build`](crate::SolverBuilder::build) and
    /// [`SatConfigBuilder::build`], so a hand-assembled struct literal
    /// cannot smuggle a nonsensical combination past validation.
    ///
    /// # Errors
    ///
    /// The first [`SatConfigError`] found.
    pub fn validate(&self) -> Result<(), SatConfigError> {
        if self.core_lbd_cutoff > self.tier2_lbd_cutoff {
            return Err(SatConfigError::TierCutoffsInverted {
                core: self.core_lbd_cutoff,
                tier2: self.tier2_lbd_cutoff,
            });
        }
        if self.tier2_interval == 0 {
            return Err(SatConfigError::ZeroTier2Interval);
        }
        if self.local_cap == 0 {
            return Err(SatConfigError::ZeroLocalCap);
        }
        if self.chrono_backtrack && self.chrono_threshold == 0 {
            return Err(SatConfigError::ZeroChronoThreshold);
        }
        if self.conflict_budget == Some(0) {
            return Err(SatConfigError::ZeroConflictBudget);
        }
        Ok(())
    }
}

/// A nonsensical [`SatConfig`] combination, reported at build time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatConfigError {
    /// `core_lbd_cutoff` exceeds `tier2_lbd_cutoff`: the tiers would
    /// overlap inconsistently.
    TierCutoffsInverted {
        /// The core-tier LBD cutoff.
        core: u32,
        /// The tier2 LBD cutoff.
        tier2: u32,
    },
    /// `tier2_interval` of 0 would sweep tier2 on every conflict.
    ZeroTier2Interval,
    /// `local_cap` of 0 would reduce the database on every learn.
    ZeroLocalCap,
    /// Chronological backtracking enabled with a threshold of 0 would
    /// disable backjumping entirely.
    ZeroChronoThreshold,
    /// A conflict budget of 0 could never answer anything.
    ZeroConflictBudget,
}

impl fmt::Display for SatConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SatConfigError::TierCutoffsInverted { core, tier2 } => {
                write!(f, "core LBD cutoff {core} exceeds tier2 cutoff {tier2}")
            }
            SatConfigError::ZeroTier2Interval => {
                write!(f, "tier2 sweep interval must be at least 1 conflict")
            }
            SatConfigError::ZeroLocalCap => {
                write!(f, "local-tier cap must be at least 1 clause")
            }
            SatConfigError::ZeroChronoThreshold => write!(
                f,
                "chronological backtracking needs a threshold of at least 1 level"
            ),
            SatConfigError::ZeroConflictBudget => {
                write!(f, "a conflict budget of 0 can never produce a verdict")
            }
        }
    }
}

impl std::error::Error for SatConfigError {}

/// Builder for [`SatConfig`]; obtain via [`SatConfig::builder`].
#[derive(Default, Debug)]
#[must_use]
pub struct SatConfigBuilder {
    config: SatConfig,
}

impl SatConfigBuilder {
    /// Sets the restart policy.
    pub fn restart_mode(mut self, mode: RestartMode) -> Self {
        self.config.restart_mode = mode;
        self
    }

    /// Enables or disables chronological backtracking.
    pub fn chrono_backtrack(mut self, on: bool) -> Self {
        self.config.chrono_backtrack = on;
        self
    }

    /// Sets the minimum backjump distance before backtracking
    /// chronologically.
    pub fn chrono_threshold(mut self, levels: u32) -> Self {
        self.config.chrono_threshold = levels;
        self
    }

    /// Sets the core-tier (glue) LBD cutoff.
    pub fn core_lbd_cutoff(mut self, lbd: u32) -> Self {
        self.config.core_lbd_cutoff = lbd;
        self
    }

    /// Sets the tier2 LBD cutoff.
    pub fn tier2_lbd_cutoff(mut self, lbd: u32) -> Self {
        self.config.tier2_lbd_cutoff = lbd;
        self
    }

    /// Sets the conflict interval between tier2 demotion sweeps.
    pub fn tier2_interval(mut self, conflicts: u64) -> Self {
        self.config.tier2_interval = conflicts;
        self
    }

    /// Sets the local-tier size that triggers database reduction.
    pub fn local_cap(mut self, clauses: usize) -> Self {
        self.config.local_cap = clauses;
        self
    }

    /// Sets the local-cap growth applied after each reduction.
    pub fn local_cap_growth(mut self, clauses: usize) -> Self {
        self.config.local_cap_growth = clauses;
        self
    }

    /// Sets the per-call conflict budget (`None` = unlimited).
    pub fn conflict_budget(mut self, conflicts: Option<u64>) -> Self {
        self.config.conflict_budget = conflicts;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// The first [`SatConfigError`] found.
    pub fn build(self) -> Result<SatConfig, SatConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(SatConfig::default().validate(), Ok(()));
        assert!(SatConfig::builder().build().is_ok());
    }

    #[test]
    fn builder_sets_every_field() {
        let config = SatConfig::builder()
            .restart_mode(RestartMode::Ema)
            .chrono_backtrack(false)
            .chrono_threshold(7)
            .core_lbd_cutoff(3)
            .tier2_lbd_cutoff(8)
            .tier2_interval(5_000)
            .local_cap(100)
            .local_cap_growth(10)
            .conflict_budget(Some(42))
            .build()
            .expect("valid");
        assert_eq!(config.restart_mode, RestartMode::Ema);
        assert!(!config.chrono_backtrack);
        assert_eq!(config.chrono_threshold, 7);
        assert_eq!(config.core_lbd_cutoff, 3);
        assert_eq!(config.tier2_lbd_cutoff, 8);
        assert_eq!(config.tier2_interval, 5_000);
        assert_eq!(config.local_cap, 100);
        assert_eq!(config.local_cap_growth, 10);
        assert_eq!(config.conflict_budget, Some(42));
    }

    #[test]
    fn inverted_tiers_rejected() {
        assert_eq!(
            SatConfig::builder()
                .core_lbd_cutoff(9)
                .tier2_lbd_cutoff(4)
                .build(),
            Err(SatConfigError::TierCutoffsInverted { core: 9, tier2: 4 })
        );
    }

    #[test]
    fn zero_knobs_rejected() {
        assert_eq!(
            SatConfig::builder().tier2_interval(0).build(),
            Err(SatConfigError::ZeroTier2Interval)
        );
        assert_eq!(
            SatConfig::builder().local_cap(0).build(),
            Err(SatConfigError::ZeroLocalCap)
        );
        assert_eq!(
            SatConfig::builder().chrono_threshold(0).build(),
            Err(SatConfigError::ZeroChronoThreshold)
        );
        assert_eq!(
            SatConfig::builder().conflict_budget(Some(0)).build(),
            Err(SatConfigError::ZeroConflictBudget)
        );
        // A zero threshold is fine when chrono backtracking is off.
        assert!(SatConfig::builder()
            .chrono_backtrack(false)
            .chrono_threshold(0)
            .build()
            .is_ok());
    }

    #[test]
    fn error_messages_name_the_field() {
        let err = SatConfig::builder()
            .core_lbd_cutoff(9)
            .tier2_lbd_cutoff(4)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("cutoff"));
    }
}
