//! The CDCL solver proper.

use crate::arena::{ClauseArena, ClauseRef, Tier, HEADER_WORDS, NO_REASON};
use crate::config::{SatConfig, SatConfigError};
use crate::heap::VarOrder;
use crate::proof::ProofLogger;
use crate::restart::RestartSched;
use crate::watch::{FlatWatches, Watch};
use hqs_base::{Assignment, Budget, CancelToken, Lit, Var};
use hqs_cnf::Cnf;
use hqs_obs::{Metric, Obs};
use std::fmt;

/// Result of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; query it with
    /// [`Solver::model_value`].
    Sat,
    /// The formula is unsatisfiable under the given assumptions; query
    /// [`Solver::failed_assumptions`].
    Unsat,
    /// The conflict budget was exhausted or the [`Budget`] asked to stop
    /// before a verdict.
    Unknown,
}

/// Cumulative solver statistics.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions taken.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts analysed.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Number of database reductions performed.
    pub reductions: u64,
    /// Number of conflicts resolved by chronological backtracking (one
    /// level) instead of a full backjump.
    pub chrono_backtracks: u64,
    /// Hybrid restart EMA↔Luby direction changes (always 0 in the pure
    /// [`Luby`](crate::RestartMode::Luby) and
    /// [`Ema`](crate::RestartMode::Ema) modes).
    pub restart_mode_switches: u64,
    /// Clause-arena garbage collections performed.
    pub arena_gcs: u64,
    /// Arena words reclaimed by garbage collection, cumulatively.
    pub arena_words_reclaimed: u64,
    /// Live learnt clauses currently in the core (glue) tier.
    pub core_clauses: u64,
    /// Live learnt clauses currently in tier2.
    pub tier2_clauses: u64,
    /// Live learnt clauses currently in the local tier.
    pub local_clauses: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub(crate) enum Lbool {
    False = 0,
    True = 1,
    Undef = 2,
}

impl Lbool {
    #[inline]
    fn from_bool(b: bool) -> Self {
        if b {
            Lbool::True
        } else {
            Lbool::False
        }
    }
}

/// A CDCL SAT solver over a contiguous clause arena.
///
/// See the [crate docs](crate) for the feature list. The solver is
/// incremental: clauses may be added between [`solve`](Solver::solve)
/// calls, and each call may carry assumptions. Construction goes through
/// [`Solver::builder`], which fixes the [`SatConfig`], observer, proof
/// logger and [`Budget`] for the solver's lifetime.
///
/// # Examples
///
/// ```
/// use hqs_base::Lit;
/// use hqs_sat::{SolveResult, Solver};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause([Lit::positive(a), Lit::positive(b)]);
/// assert_eq!(s.solve(&[Lit::negative(a), Lit::negative(b)]), SolveResult::Unsat);
/// assert!(!s.failed_assumptions().is_empty());
/// assert_eq!(s.solve(&[]), SolveResult::Sat);
/// ```
pub struct Solver {
    pub(crate) arena: ClauseArena,
    /// Watch lists of clauses with three or more literals.
    pub(crate) watches: FlatWatches,
    /// Watch lists of binary clauses, kept separate so propagation over
    /// them never touches the arena: the blocker *is* the other literal,
    /// and binary clauses are never deleted (`reduce_db` skips
    /// `len <= 2`), so the buckets need no lazy-drop compaction either.
    pub(crate) bin_watches: FlatWatches,
    pub(crate) assigns: Vec<Lbool>,
    /// Per-literal mirror of `assigns` (indexed by literal code), so the
    /// propagation loop answers "value of this literal" with a single
    /// load instead of a variable lookup plus sign fix-up. Kept in sync
    /// by `unchecked_enqueue` and `cancel_until`; audited against
    /// `assigns` by `check_invariants`.
    pub(crate) lit_vals: Vec<Lbool>,
    pub(crate) level: Vec<u32>,
    pub(crate) reason: Vec<ClauseRef>,
    pub(crate) trail: Vec<Lit>,
    pub(crate) trail_lim: Vec<usize>,
    pub(crate) qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    clause_inc: f32,
    order: VarOrder,
    phase: Vec<bool>,
    seen: Vec<bool>,
    pub(crate) ok: bool,
    model: Vec<Lbool>,
    failed: Vec<Lit>,
    config: SatConfig,
    budget: Budget,
    restart: RestartSched,
    /// Number of original (non-learnt) clauses attached, so the
    /// effective local cap can scale with formula size.
    num_originals: usize,
    /// Conflict count at which the next tier2 demotion sweep runs.
    next_tier2_sweep: u64,
    stats: SolverStats,
    analyze_clear: Vec<Var>,
    /// Scratch buffer of [`Solver::minimize`], reused across conflicts so
    /// the analysis loop stays allocation-free.
    minimize_keep: Vec<bool>,
    /// Scratch buffer of the LBD computations, reused across conflicts.
    lbd_levels: Vec<u32>,
    proof: Option<Box<dyn ProofLogger>>,
    obs: Obs,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl fmt::Debug for Solver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Solver")
            .field("vars", &self.num_vars())
            .field("stats", &self.stats)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

/// Builder for a [`Solver`]; obtain via [`Solver::builder`].
///
/// Mirrors `hqs_core::Session::builder()`: configuration, observer,
/// proof logger and budget are supplied once, validated together, and
/// immutable afterwards — a configured solver never changes behaviour
/// mid-flight.
///
/// # Examples
///
/// ```
/// use hqs_base::Budget;
/// use hqs_sat::{SatConfig, Solver};
///
/// let solver = Solver::builder()
///     .config(SatConfig::default())
///     .budget(Budget::new())
///     .build()
///     .expect("default config is valid");
/// assert_eq!(solver.num_vars(), 0);
/// ```
#[derive(Default)]
#[must_use]
pub struct SolverBuilder {
    config: SatConfig,
    obs: Option<Obs>,
    proof: Option<Box<dyn ProofLogger>>,
    budget: Budget,
    cancel: Option<CancelToken>,
}

impl SolverBuilder {
    /// Sets the search configuration (default [`SatConfig::default`]).
    pub fn config(mut self, config: SatConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches an observability handle: each solve call then reports
    /// its call count and its stats deltas through it. Counters are
    /// flushed once per solve call — the CDCL inner loops stay untouched.
    pub fn observer(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Attaches a proof logger; every derived or deleted clause is
    /// emitted as a DRAT step.
    ///
    /// The proof refutes the conjunction of exactly the clauses passed to
    /// [`Solver::add_clause`] (before simplification): give an independent
    /// checker that clause set as the original formula. Because the logger
    /// is attached at construction, it necessarily precedes every
    /// `add_clause` call, so strengthening steps are never missing from
    /// the proof.
    pub fn proof_logger(mut self, logger: Box<dyn ProofLogger>) -> Self {
        self.proof = Some(logger);
        self
    }

    /// Attaches a [`Budget`] polled inside the CDCL loop (every
    /// [`Solver::CANCEL_POLL_CONFLICTS`] conflicts and every
    /// [`Solver::CANCEL_POLL_DECISIONS`] decisions): a passed deadline or
    /// fired cancellation token turns the running
    /// [`solve`](Solver::solve) into [`SolveResult::Unknown`] within a
    /// bounded amount of work.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a cancellation token; shorthand for wrapping it into the
    /// [`budget`](Self::budget). The portfolio engine relies on this to
    /// tear down losing workers without waiting out a long CDCL run.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Validates the configuration and produces the solver.
    ///
    /// # Errors
    ///
    /// The first [`SatConfigError`] found in the configuration.
    pub fn build(self) -> Result<Solver, SatConfigError> {
        self.config.validate()?;
        let budget = match self.cancel {
            Some(token) => self.budget.with_cancel_token(token),
            None => self.budget,
        };
        Ok(Solver {
            arena: ClauseArena::new(),
            watches: FlatWatches::new(),
            bin_watches: FlatWatches::new(),
            assigns: Vec::new(),
            lit_vals: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            clause_inc: 1.0,
            order: VarOrder::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            ok: true,
            model: Vec::new(),
            failed: Vec::new(),
            restart: RestartSched::new(self.config.restart_mode),
            num_originals: 0,
            next_tier2_sweep: self.config.tier2_interval,
            config: self.config,
            budget,
            stats: SolverStats::default(),
            analyze_clear: Vec::new(),
            minimize_keep: Vec::new(),
            lbd_levels: Vec::new(),
            proof: self.proof,
            obs: self.obs.unwrap_or_else(Obs::disabled),
        })
    }
}

impl Solver {
    /// Conflict interval between budget/cancellation polls inside the
    /// CDCL loop — small enough that a fired [`CancelToken`] or passed
    /// deadline is observed within a few milliseconds of propagation
    /// work.
    pub const CANCEL_POLL_CONFLICTS: u64 = 256;
    /// Decision interval between budget/cancellation polls on
    /// conflict-free stretches.
    pub const CANCEL_POLL_DECISIONS: u64 = 1024;

    /// Creates a solver with the default configuration, no observer, no
    /// proof logger and an unlimited budget.
    #[must_use]
    pub fn new() -> Self {
        Solver::builder()
            .build()
            .expect("default SatConfig is valid")
    }

    /// A builder for a configured solver.
    pub fn builder() -> SolverBuilder {
        SolverBuilder::default()
    }

    /// The search configuration the solver was built with.
    #[must_use]
    pub fn config(&self) -> &SatConfig {
        &self.config
    }

    /// Detaches and returns the proof logger, if any.
    pub fn take_proof_logger(&mut self) -> Option<Box<dyn ProofLogger>> {
        self.proof.take()
    }

    /// `true` if a proof logger is attached and has recorded an emission
    /// failure (the proof is incomplete and must not be trusted).
    #[must_use]
    pub fn proof_had_error(&self) -> bool {
        self.proof.as_ref().is_some_and(|p| p.had_error())
    }

    #[inline]
    fn proof_add(&mut self, lits: &[Lit]) {
        if let Some(p) = self.proof.as_mut() {
            p.add_clause(lits);
        }
    }

    #[inline]
    fn proof_delete(&mut self, lits: &[Lit]) {
        if let Some(p) = self.proof.as_mut() {
            p.delete_clause(lits);
        }
    }

    /// Returns the number of allocated variables.
    #[must_use]
    pub fn num_vars(&self) -> u32 {
        self.assigns.len() as u32
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let var = Var::new(self.num_vars());
        self.assigns.push(Lbool::Undef);
        self.lit_vals.push(Lbool::Undef);
        self.lit_vals.push(Lbool::Undef);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.add_var();
        self.bin_watches.add_var();
        self.order.insert(var, &self.activity);
        var
    }

    /// Ensures at least `n` variables exist.
    pub fn ensure_vars(&mut self, n: u32) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    /// Returns the cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Adds a clause; returns `false` if the solver became trivially
    /// unsatisfiable (the clause is empty after level-0 simplification, or a
    /// previous conflict was already recorded).
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        debug_assert!(
            self.trail_lim.is_empty(),
            "add_clause at decision level 0 only"
        );
        if !self.ok {
            return false;
        }
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for &lit in &lits {
            self.ensure_vars(lit.var().bound());
        }
        lits.sort_unstable();
        lits.dedup();
        // Tautology or satisfied at level 0?
        if lits.windows(2).any(|w| w[0].var() == w[1].var()) {
            return true;
        }
        let original = if self.proof.is_some() {
            Some(lits.clone())
        } else {
            None
        };
        lits.retain(|&l| self.value(l) != Lbool::False);
        if lits.iter().any(|&l| self.value(l) == Lbool::True) {
            // Satisfied at level 0: never attached, so tell the proof the
            // original is gone (a deletion is always sound).
            if let Some(original) = original {
                self.proof_delete(&original);
            }
            return true;
        }
        if let Some(original) = original.filter(|o| o.len() != lits.len()) {
            // Strengthened by level-0 falsified literals: the shrunk clause
            // is RUP (each removed literal is falsified by root propagation)
            // and replaces the original.
            self.proof_add(&lits);
            self.proof_delete(&original);
        }
        match lits.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(lits[0], NO_REASON);
                self.ok = self.propagate().is_none();
                if !self.ok {
                    self.proof_add(&[]);
                }
                self.ok
            }
            _ => {
                self.attach_new_clause(&lits, false);
                true
            }
        }
    }

    /// Adds every clause of `cnf`; returns `false` on trivial conflict.
    pub fn add_cnf(&mut self, cnf: &Cnf) -> bool {
        self.ensure_vars(cnf.num_vars());
        let mut ok = true;
        for clause in cnf.clauses() {
            ok &= self.add_clause(clause.lits().iter().copied());
        }
        ok
    }

    fn attach_new_clause(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.arena.alloc(lits, learnt);
        self.num_originals += usize::from(!learnt);
        // Binary clauses go to the dedicated store where the blocker is
        // the whole remainder of the clause; longer clauses watch their
        // first two positions in the general store.
        let store = if lits.len() == 2 {
            &mut self.bin_watches
        } else {
            &mut self.watches
        };
        store.push(
            lits[0].uidx(),
            Watch {
                cref,
                blocker: lits[1],
            },
        );
        store.push(
            lits[1].uidx(),
            Watch {
                cref,
                blocker: lits[0],
            },
        );
        cref
    }

    #[inline]
    pub(crate) fn value(&self, lit: Lit) -> Lbool {
        let v = self.assigns[lit.var().uidx()];
        if v == Lbool::Undef {
            Lbool::Undef
        } else if lit.is_negative() {
            if v == Lbool::True {
                Lbool::False
            } else {
                Lbool::True
            }
        } else {
            v
        }
    }

    /// Returns the polarity of `var` in the most recent model, if any.
    #[must_use]
    pub fn model_value(&self, var: Var) -> Option<bool> {
        match self.model.get(var.uidx()) {
            Some(Lbool::True) => Some(true),
            Some(Lbool::False) => Some(false),
            _ => None,
        }
    }

    /// Returns the most recent model as an [`Assignment`].
    ///
    /// Variables that were never assigned by the solver default to `false`
    /// so the result is total over all allocated variables.
    #[must_use]
    pub fn model(&self) -> Assignment {
        let mut assignment = Assignment::with_num_vars(self.model.len() as u32);
        for (var, &value) in (0u32..).map(Var::new).zip(self.model.iter()) {
            assignment.assign(var, value == Lbool::True);
        }
        assignment
    }

    /// After an `Unsat` answer under assumptions: the subset of assumptions
    /// proved contradictory (a "failed core", possibly non-minimal).
    #[must_use]
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed
    }

    /// Emits the stats delta accumulated since `before` (one solve
    /// call's worth of work) to the attached observer, if any.
    fn flush_obs(&self, before: SolverStats) {
        if !self.obs.is_enabled() {
            return;
        }
        let now = self.stats;
        self.obs.add(
            Metric::SatConflicts,
            now.conflicts.saturating_sub(before.conflicts),
        );
        self.obs.add(
            Metric::SatPropagations,
            now.propagations.saturating_sub(before.propagations),
        );
        self.obs.add(
            Metric::SatDecisions,
            now.decisions.saturating_sub(before.decisions),
        );
        self.obs.add(
            Metric::SatRestarts,
            now.restarts.saturating_sub(before.restarts),
        );
        self.obs.add(
            Metric::SatRestartSwitches,
            now.restart_mode_switches
                .saturating_sub(before.restart_mode_switches),
        );
        self.obs.add(
            Metric::SatChronoBacktracks,
            now.chrono_backtracks
                .saturating_sub(before.chrono_backtracks),
        );
        self.obs.add(
            Metric::SatArenaGcs,
            now.arena_gcs.saturating_sub(before.arena_gcs),
        );
        self.obs.add(
            Metric::SatArenaReclaimedWords,
            now.arena_words_reclaimed
                .saturating_sub(before.arena_words_reclaimed),
        );
        self.obs
            .gauge_max(Metric::SatCoreClausesPeak, now.core_clauses);
        self.obs
            .gauge_max(Metric::SatTier2ClausesPeak, now.tier2_clauses);
        self.obs
            .gauge_max(Metric::SatLocalClausesPeak, now.local_clauses);
    }

    /// Solves under the given assumptions (pass `&[]` for none) as one
    /// query of a long-lived incremental session — the MiniSat-lineage
    /// `solve_limited` idiom the serving architecture is built on.
    ///
    /// * **Warm state.** Learnt clauses (and their tiers), variable
    ///   activities and saved phases survive the call, so a closely
    ///   related follow-up query spends fewer conflicts than a cold
    ///   solver on the same formula.
    /// * **Mutation between queries.** [`Solver::add_clause`] may be
    ///   called between queries (every query exits at decision level 0);
    ///   previously learnt clauses stay sound because adding clauses
    ///   only strengthens the formula. To *retract* clauses later, guard
    ///   them with a fresh selector literal and assume it here.
    /// * **Assumption-scoped verdicts.** [`SolveResult::Unsat`] means
    ///   "unsatisfiable *under these assumptions*"; the solver stays
    ///   usable and [`Solver::failed_assumptions`] names a responsible
    ///   subset of the assumptions.
    /// * **Budgets, proofs and cancellation.** The configured per-call
    ///   conflict budget ([`SatConfig::conflict_budget`]) applies to each
    ///   call separately; an attached [`ProofLogger`] keeps accumulating
    ///   DRAT steps across queries (the proof stream covers the
    ///   conjunction of every clause ever added), and the attached
    ///   [`Budget`] is polled inside each query.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.obs.add(Metric::SatCalls, 1);
        let stats_before = self.stats;
        self.failed.clear();
        self.model.clear();
        if !self.ok {
            return SolveResult::Unsat;
        }
        for &a in assumptions {
            // analyze::allow(cancel): bounded by the caller's assumption list
            self.ensure_vars(a.var().bound());
        }
        let conflict_limit = self
            .config
            .conflict_budget
            .map(|b| self.stats.conflicts + b);
        let result = loop {
            match self.propagate() {
                Some(confl) => {
                    self.stats.conflicts += 1;
                    if self.decision_level() == 0 {
                        self.ok = false;
                        self.proof_add(&[]);
                        break SolveResult::Unsat;
                    }
                    if self.current_level_has_no_decision(assumptions.len()) {
                        // Conflict forced purely by assumptions.
                        self.analyze_final_conflict(confl, assumptions);
                        break SolveResult::Unsat;
                    }
                    let (learnt, backjump_level, lbd) = self.analyze(confl);
                    self.restart.on_conflict(lbd);
                    // Chronological backtracking: when the backjump would
                    // throw away a deep trail, step back one level instead
                    // and let the asserting literal propagate there. Unit
                    // learnts always go to level 0, and the target level
                    // stays strictly above the assumption levels.
                    let target = if self.config.chrono_backtrack
                        && learnt.len() > 1
                        && self.decision_level() > assumptions.len() + 1
                        && self.decision_level()
                            >= backjump_level + 1 + self.config.chrono_threshold as usize
                    {
                        self.stats.chrono_backtracks += 1;
                        self.decision_level() - 1
                    } else {
                        backjump_level
                    };
                    // May backjump below assumption levels; `pick_branch`
                    // re-assumes them on the next decision.
                    self.cancel_until(target);
                    self.learn(learnt, lbd);
                    self.decay_activities();
                    if let Some(limit) = conflict_limit {
                        if self.stats.conflicts >= limit {
                            break SolveResult::Unknown;
                        }
                    }
                    if self
                        .stats
                        .conflicts
                        .is_multiple_of(Self::CANCEL_POLL_CONFLICTS)
                        && self.budget.stop_requested()
                    {
                        break SolveResult::Unknown;
                    }
                }
                None => {
                    if self.decision_level() > assumptions.len() && self.restart.should_restart() {
                        self.stats.restarts += 1;
                        self.restart.on_restart();
                        self.cancel_until(self.assumption_level(assumptions.len()));
                        // The restart `continue` skips the decision-count
                        // poll below; restarts are many conflicts apart, so
                        // an unconditional poll here is cheap and keeps
                        // every iterating path covered.
                        if self.budget.stop_requested() {
                            break SolveResult::Unknown;
                        }
                        continue;
                    }
                    if self.stats.conflicts >= self.next_tier2_sweep {
                        self.sweep_tier2();
                    }
                    if self.stats.local_clauses as usize > self.local_cap() {
                        self.reduce_db();
                    }
                    // Conflict-free stretches (large satisfiable
                    // instances) must observe the budget too.
                    if self
                        .stats
                        .decisions
                        .is_multiple_of(Self::CANCEL_POLL_DECISIONS)
                        && self.budget.stop_requested()
                    {
                        break SolveResult::Unknown;
                    }
                    // Assumptions first, then decisions.
                    match self.pick_branch(assumptions) {
                        BranchOutcome::Assumed | BranchOutcome::Decided => {}
                        BranchOutcome::AssumptionConflict(lit) => {
                            self.analyze_failed_assumption(lit, assumptions);
                            break SolveResult::Unsat;
                        }
                        BranchOutcome::AllAssigned => {
                            self.model = self.assigns.clone();
                            break SolveResult::Sat;
                        }
                    }
                }
            }
        };
        self.cancel_until(0);
        self.stats.restart_mode_switches = self.restart.switches();
        self.debug_audit("after solve");
        self.flush_obs(stats_before);
        result
    }

    fn assumption_level(&self, num_assumptions: usize) -> usize {
        self.decision_level().min(num_assumptions)
    }

    fn current_level_has_no_decision(&self, num_assumptions: usize) -> bool {
        self.decision_level() > 0 && self.decision_level() <= num_assumptions
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn pick_branch(&mut self, assumptions: &[Lit]) -> BranchOutcome {
        while self.decision_level() < assumptions.len() {
            let lit = assumptions[self.decision_level()];
            match self.value(lit) {
                Lbool::True => {
                    // Already satisfied: open an empty level so the mapping
                    // decision-level == assumption index stays intact.
                    self.trail_lim.push(self.trail.len());
                }
                Lbool::False => return BranchOutcome::AssumptionConflict(lit),
                Lbool::Undef => {
                    self.trail_lim.push(self.trail.len());
                    self.unchecked_enqueue(lit, NO_REASON);
                    return BranchOutcome::Assumed;
                }
            }
        }
        loop {
            let Some(var) = self.order.pop_max(&self.activity) else {
                return BranchOutcome::AllAssigned;
            };
            if self.assigns[var.uidx()] == Lbool::Undef {
                self.stats.decisions += 1;
                let lit = Lit::new(var, !self.phase[var.uidx()]);
                self.trail_lim.push(self.trail.len());
                self.unchecked_enqueue(lit, NO_REASON);
                return BranchOutcome::Decided;
            }
        }
    }

    fn unchecked_enqueue(&mut self, lit: Lit, reason: ClauseRef) {
        // analyze::allow(panic) lines=8: assigns/lit_vals/level/reason are sized by ensure_vars
        let var = lit.var().uidx();
        debug_assert_eq!(self.assigns[var], Lbool::Undef);
        self.assigns[var] = Lbool::from_bool(lit.is_positive());
        self.lit_vals[lit.uidx()] = Lbool::True;
        self.lit_vals[lit.uidx() ^ 1] = Lbool::False;
        self.level[var] = self.decision_level() as u32;
        self.reason[var] = reason;
        self.trail.push(lit);
    }

    fn propagate(&mut self) -> Option<ClauseRef> {
        // Indexing in this loop is invariant-backed: `ranges`, `assigns`,
        // `level` and `reason` are sized by `ensure_vars` before any
        // literal is minted, crefs index the solver's own clause arena,
        // and watched positions 0/1 exist because clauses of length < 2
        // never enter the watch lists. Pushing a new watch for another
        // literal can never move the bucket being scanned: the falsified
        // literal's own bucket only shrinks here.
        // analyze::allow(panic) lines=110: bounds established by ensure_vars and the watch invariant
        while let Some(&p) = self.trail.get(self.qhead) {
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let code = false_lit.uidx();
            // Binary clauses first: the blocker is the entire rest of the
            // clause, so each visit is a single assignment lookup — no
            // arena access, no watch relocation, and (because binary
            // clauses are never deleted) no lazy-drop compaction.
            let bin_start = self.bin_watches.ranges[code].start as usize;
            let bin_len = self.bin_watches.ranges[code].len as usize;
            for j in 0..bin_len {
                let watch = self.bin_watches.data[bin_start + j];
                match self.lit_vals[watch.blocker.uidx()] {
                    Lbool::True => {}
                    Lbool::Undef => {
                        // A propagated literal must lead its reason
                        // clause (conflict analysis and the audit skip
                        // position 0 of reasons), so order the pair now.
                        let lits_at = ClauseArena::lits_start(watch.cref);
                        if self.arena.words[lits_at] != watch.blocker.code() {
                            self.arena.swap_lits(watch.cref, 0, 1);
                        }
                        self.unchecked_enqueue(watch.blocker, watch.cref);
                    }
                    Lbool::False => {
                        self.qhead = self.trail.len();
                        return Some(watch.cref);
                    }
                }
            }
            let start = self.watches.ranges[code].start as usize;
            let len = self.watches.ranges[code].len as usize;
            let mut kept = 0usize;
            let mut conflict = None;
            let mut i = 0usize;
            'watches: while i < len {
                let watch = self.watches.data[start + i];
                i += 1;
                if self.lit_vals[watch.blocker.uidx()] == Lbool::True {
                    self.watches.data[start + kept] = watch;
                    kept += 1;
                    continue;
                }
                let cref = watch.cref;
                // Deleted clauses may linger in watch lists; drop lazily.
                if self.arena.is_deleted(cref) {
                    continue;
                }
                let lits_at = ClauseArena::lits_start(cref);
                // Make sure the false literal is at position 1.
                if self.arena.words[lits_at] == false_lit.code() {
                    self.arena.swap_lits(cref, 0, 1);
                }
                debug_assert_eq!(self.arena.words[lits_at + 1], false_lit.code());
                let first = Lit::from_code(self.arena.words[lits_at]);
                if first != watch.blocker && self.lit_vals[first.uidx()] == Lbool::True {
                    self.watches.data[start + kept] = Watch {
                        cref,
                        blocker: first,
                    };
                    kept += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let clen = self.arena.len(cref);
                for k in 2..clen {
                    let candidate = Lit::from_code(self.arena.words[lits_at + k]);
                    if self.lit_vals[candidate.uidx()] != Lbool::False {
                        self.arena.swap_lits(cref, 1, k);
                        self.watches.push(
                            candidate.uidx(),
                            Watch {
                                cref,
                                blocker: first,
                            },
                        );
                        continue 'watches;
                    }
                }
                // No new watch: unit or conflict.
                self.watches.data[start + kept] = Watch {
                    cref,
                    blocker: first,
                };
                kept += 1;
                if self.lit_vals[first.uidx()] == Lbool::False {
                    conflict = Some(cref);
                    // Copy remaining watches back before bailing out.
                    while i < len {
                        self.watches.data[start + kept] = self.watches.data[start + i];
                        kept += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    break;
                }
                self.unchecked_enqueue(first, cref);
            }
            self.watches.truncate(code, kept);
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// First-UIP conflict analysis; returns (learnt clause with asserting
    /// literal first, backtrack level, LBD).
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, usize, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::positive(Var::new(0))]; // placeholder for UIP
        let mut path_count = 0u32;
        let mut first_clause = true;
        let mut index = self.trail.len();
        let mut confl = confl;

        // Indexing below is invariant-backed: `seen`/`level`/`reason` are
        // sized by `ensure_vars`, the trail walk stays within bounds
        // because the first UIP is found before `index` underruns, and
        // crefs come from the solver's own clause arena.
        // analyze::allow(panic) lines=85: bounds established by ensure_vars and first-UIP termination
        loop {
            self.bump_clause(confl);
            // The conflict clause contributes every literal; reason
            // clauses skip the propagated literal at position 0.
            let start = usize::from(!first_clause);
            first_clause = false;
            let lits_at = ClauseArena::lits_start(confl);
            // Iterate over the conflict/reason clause literals.
            for k in start..self.arena.len(confl) {
                let q = Lit::from_code(self.arena.words[lits_at + k]);
                let var = q.var().uidx();
                if !self.seen[var] && self.level[var] > 0 {
                    self.seen[var] = true;
                    self.bump_var(q.var());
                    if self.level[var] as usize >= self.decision_level() {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal on the current level to expand.
            let p_lit = loop {
                index -= 1;
                let lit = self.trail[index];
                if self.seen[lit.var().uidx()] {
                    break lit;
                }
            };
            path_count -= 1;
            self.seen[p_lit.var().uidx()] = false;
            if path_count == 0 {
                learnt[0] = !p_lit;
                break;
            }
            confl = self.reason[p_lit.var().uidx()];
            debug_assert_ne!(
                confl, NO_REASON,
                "non-decision on conflict path has a reason"
            );
        }

        // Mark remaining literals seen for minimisation bookkeeping, and
        // remember every variable so flags are cleared even for literals the
        // minimisation drops.
        for &lit in &learnt[1..] {
            self.seen[lit.var().uidx()] = true;
            self.analyze_clear.push(lit.var());
        }
        self.minimize(&mut learnt);

        // Compute backtrack level: second highest level in the clause.
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_pos = 1;
            for k in 2..learnt.len() {
                if self.level[learnt[k].var().uidx()] > self.level[learnt[max_pos].var().uidx()] {
                    max_pos = k;
                }
            }
            learnt.swap(1, max_pos);
            self.level[learnt[1].var().uidx()] as usize
        };

        let lbd = self.compute_lbd(&learnt);
        for &lit in &learnt {
            self.seen[lit.var().uidx()] = false;
        }
        for &var in &self.analyze_clear {
            self.seen[var.uidx()] = false;
        }
        self.analyze_clear.clear();
        (learnt, backtrack_level, lbd)
    }

    /// Local clause minimisation: drop literals whose reason clause is fully
    /// covered by other seen literals (self-subsuming resolution).
    fn minimize(&mut self, learnt: &mut Vec<Lit>) {
        // analyze::allow(panic) lines=25: reason crefs index live clauses; seen/level sized by ensure_vars
        let mut keep = std::mem::take(&mut self.minimize_keep);
        keep.clear();
        keep.resize(learnt.len(), true);
        for (i, &lit) in learnt.iter().enumerate().skip(1) {
            let reason = self.reason[lit.var().uidx()];
            if reason == NO_REASON {
                continue;
            }
            let mut redundant = true;
            let lits_at = ClauseArena::lits_start(reason);
            for k in 1..self.arena.len(reason) {
                let q = Lit::from_code(self.arena.words[lits_at + k]);
                let var = q.var().uidx();
                if !self.seen[var] && self.level[var] > 0 {
                    redundant = false;
                    break;
                }
            }
            if redundant {
                keep[i] = false;
            }
        }
        let mut idx = 0;
        learnt.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
        self.minimize_keep = keep;
    }

    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        let mut levels = std::mem::take(&mut self.lbd_levels);
        levels.clear();
        // analyze::allow(panic): learnt-clause literals were assigned, so level is in bounds
        levels.extend(lits.iter().map(|l| self.level[l.var().uidx()]));
        levels.sort_unstable();
        levels.dedup();
        let lbd = levels.len() as u32;
        self.lbd_levels = levels;
        lbd
    }

    /// Recomputes the LBD of a stored clause from the current trail. Only
    /// called from conflict analysis, where every literal of the clause
    /// is assigned, so the levels are meaningful.
    fn clause_lbd(&mut self, cref: ClauseRef) -> u32 {
        let mut levels = std::mem::take(&mut self.lbd_levels);
        levels.clear();
        let lits_at = ClauseArena::lits_start(cref);
        // analyze::allow(panic) lines=4: clause literals were assigned, so level is in bounds
        for k in 0..self.arena.len(cref) {
            let var = Lit::from_code(self.arena.words[lits_at + k]).var();
            levels.push(self.level[var.uidx()]);
        }
        levels.sort_unstable();
        levels.dedup();
        let lbd = levels.len() as u32;
        self.lbd_levels = levels;
        lbd
    }

    fn tier_for_lbd(&self, lbd: u32) -> Tier {
        if lbd <= self.config.core_lbd_cutoff {
            Tier::Core
        } else if lbd <= self.config.tier2_lbd_cutoff {
            Tier::Tier2
        } else {
            Tier::Local
        }
    }

    fn tier_count(&mut self, tier: Tier) -> &mut u64 {
        match tier {
            Tier::Core => &mut self.stats.core_clauses,
            Tier::Tier2 => &mut self.stats.tier2_clauses,
            Tier::Local => &mut self.stats.local_clauses,
        }
    }

    /// Moves `cref` to the tier its (tightened) LBD calls for, if that is
    /// a promotion. Demotion only happens through the tier2 sweep.
    fn maybe_promote(&mut self, cref: ClauseRef, lbd: u32) {
        let target = self.tier_for_lbd(lbd);
        let current = self.arena.tier(cref);
        if (target as u8) < (current as u8) {
            self.arena.set_tier(cref, target);
            *self.tier_count(current) -= 1;
            *self.tier_count(target) += 1;
        }
    }

    fn learn(&mut self, learnt: Vec<Lit>, lbd: u32) {
        self.proof_add(&learnt);
        let asserting = learnt[0];
        if learnt.len() == 1 {
            self.unchecked_enqueue(asserting, NO_REASON);
        } else {
            let cref = self.attach_new_clause(&learnt, true);
            self.arena.set_lbd(cref, lbd);
            self.arena.set_activity(cref, self.clause_inc);
            let tier = self.tier_for_lbd(lbd);
            self.arena.set_tier(cref, tier);
            *self.tier_count(tier) += 1;
            self.unchecked_enqueue(asserting, cref);
        }
    }

    fn cancel_until(&mut self, target_level: usize) {
        if self.decision_level() <= target_level {
            return;
        }
        let boundary = self.trail_lim[target_level];
        for i in (boundary..self.trail.len()).rev() {
            let lit = self.trail[i];
            let var = lit.var();
            self.phase[var.uidx()] = lit.is_positive();
            self.assigns[var.uidx()] = Lbool::Undef;
            self.lit_vals[lit.uidx()] = Lbool::Undef;
            self.lit_vals[lit.uidx() ^ 1] = Lbool::Undef;
            self.reason[var.uidx()] = NO_REASON;
            self.order.insert(var, &self.activity);
        }
        self.trail.truncate(boundary);
        self.trail_lim.truncate(target_level);
        self.qhead = self.trail.len();
        self.debug_audit("after backtrack");
    }

    fn bump_var(&mut self, var: Var) {
        // analyze::allow(panic) lines=3: activity is sized by ensure_vars
        let idx = var.uidx();
        self.activity[idx] += self.var_inc;
        if self.activity[idx] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(var, &self.activity);
    }

    /// Bumps a clause met during conflict analysis: activity, the
    /// used-recently flag (consumed by the tier2 sweep and the reduction
    /// second chance), and — on the first use in the current window — an
    /// LBD tightening with possible tier promotion.
    fn bump_clause(&mut self, cref: ClauseRef) {
        if !self.arena.is_learnt(cref) {
            return;
        }
        if !self.arena.is_used(cref) {
            self.arena.set_used(cref, true);
            let tightened = self.clause_lbd(cref);
            if tightened < self.arena.lbd(cref) {
                self.arena.set_lbd(cref, tightened);
                self.maybe_promote(cref, tightened);
            }
        }
        let activity = self.arena.activity(cref) + self.clause_inc;
        self.arena.set_activity(cref, activity);
        if activity > 1e20 {
            // Rescale every learnt clause's activity; one arena sweep,
            // and rare (the increment grows 0.1% per conflict).
            let mut off = 0u32;
            while (off as usize) < self.arena.words.len() {
                if self.arena.is_learnt(off) {
                    let a = self.arena.activity(off);
                    self.arena.set_activity(off, a * 1e-20);
                }
                off += (HEADER_WORDS + self.arena.len(off)) as u32;
            }
            self.clause_inc *= 1e-20;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
        self.clause_inc /= 0.999;
    }

    /// Demotes tier2 clauses that were not used in any conflict since the
    /// last sweep to the local tier, and re-arms every survivor's
    /// used-flag for the next window.
    fn sweep_tier2(&mut self) {
        let mut off = 0u32;
        while (off as usize) < self.arena.words.len() {
            let c = off;
            off += (HEADER_WORDS + self.arena.len(c)) as u32;
            if self.arena.is_deleted(c)
                || !self.arena.is_learnt(c)
                || self.arena.tier(c) != Tier::Tier2
            {
                continue;
            }
            if self.arena.is_used(c) {
                self.arena.set_used(c, false);
            } else {
                self.arena.set_tier(c, Tier::Local);
                self.stats.tier2_clauses -= 1;
                self.stats.local_clauses += 1;
            }
        }
        self.next_tier2_sweep = self.stats.conflicts + self.config.tier2_interval;
    }

    /// Halves the local tier: unused, unlocked local clauses are deleted
    /// worst-first (high LBD, then low activity); recently used ones get
    /// a second chance (their used-flag is spent instead). Core and
    /// tier2 clauses are never touched here.
    fn reduce_db(&mut self) {
        let mut candidates: Vec<ClauseRef> = Vec::new();
        let mut off = 0u32;
        while (off as usize) < self.arena.words.len() {
            let c = off;
            off += (HEADER_WORDS + self.arena.len(c)) as u32;
            if self.arena.is_deleted(c)
                || !self.arena.is_learnt(c)
                || self.arena.tier(c) != Tier::Local
                || self.arena.len(c) <= 2
                || self.is_locked(c)
            {
                continue;
            }
            if self.arena.is_used(c) {
                // Second chance: spend the used-flag instead of deleting.
                self.arena.set_used(c, false);
                continue;
            }
            candidates.push(c);
        }
        // Worst first: high LBD, then low activity.
        candidates.sort_by(|&a, &b| {
            self.arena.lbd(b).cmp(&self.arena.lbd(a)).then(
                self.arena
                    .activity(a)
                    .partial_cmp(&self.arena.activity(b))
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let to_delete = candidates.len() / 2;
        for &c in candidates.iter().take(to_delete) {
            if self.proof.is_some() {
                let lits = self.arena.lits_vec(c);
                self.proof_delete(&lits);
            }
            self.arena.mark_deleted(c);
            self.stats.local_clauses -= 1;
            self.stats.deleted_clauses += 1;
        }
        self.stats.reductions += 1;
        self.maybe_gc();
        self.debug_audit("after reduce_db");
    }

    /// The local-tier size that triggers the next database reduction:
    /// the configured cap, additionally bounded by half the original
    /// formula (small instances keep proportionally small learnt
    /// databases, the MiniSat `max_learnts` lineage), growing by the
    /// configured amount after every reduction.
    fn local_cap(&self) -> usize {
        self.config.local_cap.min((self.num_originals / 2).max(128))
            + self.stats.reductions as usize * self.config.local_cap_growth
    }

    fn is_locked(&self, cref: ClauseRef) -> bool {
        let first = self.arena.lit(cref, 0);
        self.value(first) == Lbool::True && self.reason[first.var().uidx()] == cref
    }

    /// Compacts the clause arena once the deleted share grows past a
    /// quarter of the store (and at least 1 KiW), remapping reason
    /// references and rebuilding the watch store.
    fn maybe_gc(&mut self) {
        let wasted = self.arena.wasted_words();
        if wasted >= 1024 && wasted * 4 >= self.arena.words.len() {
            self.collect_garbage();
        }
    }

    fn collect_garbage(&mut self) {
        let reclaimed = self.arena.wasted_words();
        let remap = self.arena.collect_garbage();
        let lookup = |c: ClauseRef| -> Option<ClauseRef> {
            remap
                .binary_search_by_key(&c, |&(old, _)| old)
                .ok()
                .map(|i| remap[i].1)
        };
        // Reason clauses are locked and never deleted, so every live
        // reason reference survives the compaction.
        for r in &mut self.reason {
            if *r != NO_REASON {
                *r = lookup(*r).expect("reason clause survives GC");
            }
        }
        // Watch entries for deleted clauses are dropped here; the stores
        // compact their relocation waste in the same pass. Binary clauses
        // are never deleted, so their remap always succeeds.
        self.watches.remap_and_compact(lookup);
        self.bin_watches.remap_and_compact(lookup);
        self.stats.arena_gcs += 1;
        self.stats.arena_words_reclaimed += reclaimed as u64;
        self.debug_audit("after arena gc");
    }

    /// An assumption literal was already false when it was to be assumed:
    /// compute the subset of assumptions responsible.
    fn analyze_failed_assumption(&mut self, lit: Lit, assumptions: &[Lit]) {
        self.failed.clear();
        self.failed.push(lit);
        // Walk the implication graph from !lit back to assumptions.
        let start_var = lit.var();
        if self.level[start_var.uidx()] == 0 {
            return;
        }
        let mut seen = vec![false; self.num_vars() as usize];
        seen[start_var.uidx()] = true;
        for i in (0..self.trail.len()).rev() {
            let t = self.trail[i];
            let var = t.var().uidx();
            if !seen[var] {
                continue;
            }
            let reason = self.reason[var];
            if reason == NO_REASON {
                if assumptions.contains(&t) && t.var() != lit.var() {
                    self.failed.push(t);
                }
            } else {
                for k in 1..self.arena.len(reason) {
                    let q = self.arena.lit(reason, k);
                    if self.level[q.var().uidx()] > 0 {
                        seen[q.var().uidx()] = true;
                    }
                }
            }
        }
    }

    /// A conflict occurred with only assumption levels on the trail.
    fn analyze_final_conflict(&mut self, confl: ClauseRef, assumptions: &[Lit]) {
        self.failed.clear();
        let mut seen = vec![false; self.num_vars() as usize];
        for k in 0..self.arena.len(confl) {
            let q = self.arena.lit(confl, k);
            if self.level[q.var().uidx()] > 0 {
                seen[q.var().uidx()] = true;
            }
        }
        for i in (0..self.trail.len()).rev() {
            let t = self.trail[i];
            let var = t.var().uidx();
            if !seen[var] {
                continue;
            }
            let reason = self.reason[var];
            if reason == NO_REASON {
                if assumptions.contains(&t) {
                    self.failed.push(t);
                }
            } else {
                for k in 1..self.arena.len(reason) {
                    let q = self.arena.lit(reason, k);
                    if self.level[q.var().uidx()] > 0 {
                        seen[q.var().uidx()] = true;
                    }
                }
            }
        }
    }
}

enum BranchOutcome {
    Assumed,
    Decided,
    AssumptionConflict(Lit),
    AllAssigned,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RestartMode;

    fn lit(value: i64) -> Lit {
        Lit::from_dimacs(value).unwrap()
    }

    fn solver_with(clauses: &[&[i64]]) -> Solver {
        let mut s = Solver::new();
        for c in clauses {
            s.add_clause(c.iter().map(|&v| lit(v)));
        }
        s
    }

    fn add_pigeonhole(s: &mut Solver, pigeons: i64, holes: i64) {
        let var = |p: i64, h: i64| (p - 1) * holes + h;
        for p in 1..=pigeons {
            s.add_clause((1..=holes).map(|h| lit(var(p, h))));
        }
        for h in 1..=holes {
            for p1 in 1..=pigeons {
                for p2 in (p1 + 1)..=pigeons {
                    s.add_clause([lit(-var(p1, h)), lit(-var(p2, h))]);
                }
            }
        }
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn unit_conflict_is_unsat() {
        let mut s = solver_with(&[&[1], &[-1]]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        // Stays UNSAT on repeated calls.
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn simple_sat_with_model() {
        let mut s = solver_with(&[&[1, 2], &[-1, 2], &[1, -2]]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        let a = s.model_value(Var::new(0)).unwrap();
        let b = s.model_value(Var::new(1)).unwrap();
        // The clause set (a∨b)(¬a∨b)(a∨¬b) forces a = b = true.
        assert!(a && b);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        let mut s = Solver::new();
        add_pigeonhole(&mut s, 3, 2);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn chain_propagation() {
        // x1 and a long implication chain forcing x50.
        let mut s = Solver::new();
        s.add_clause([lit(1)]);
        for i in 1..50i64 {
            s.add_clause([lit(-i), lit(i + 1)]);
        }
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(Var::new(49)), Some(true));
    }

    #[test]
    fn assumptions_sat_and_unsat() {
        let mut s = solver_with(&[&[1, 2]]);
        assert_eq!(s.solve(&[lit(-1)]), SolveResult::Sat);
        assert_eq!(s.model_value(Var::new(1)), Some(true));
        assert_eq!(s.solve(&[lit(-1), lit(-2)]), SolveResult::Unsat);
        let failed = s.failed_assumptions().to_vec();
        assert!(!failed.is_empty());
        // Solver is still usable and SAT without assumptions.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = solver_with(&[&[1, 2]]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        s.add_clause([lit(-1)]);
        s.add_clause([lit(-2)]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn tautological_clause_ignored() {
        let mut s = Solver::new();
        assert!(s.add_clause([lit(1), lit(-1)]));
        assert!(s.add_clause([lit(2)]));
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn duplicate_literals_collapse() {
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(1), lit(1)]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(Var::new(0)), Some(true));
    }

    #[test]
    fn conflict_budget_returns_unknown() {
        let config = SatConfig::builder()
            .conflict_budget(Some(5))
            .build()
            .expect("valid");
        let mut s = Solver::builder().config(config).build().expect("valid");
        add_pigeonhole(&mut s, 6, 5);
        assert_eq!(s.solve(&[]), SolveResult::Unknown);
        // The budget is per call: an unbudgeted solver settles the instance.
        let mut unlimited = Solver::new();
        add_pigeonhole(&mut unlimited, 6, 5);
        assert_eq!(unlimited.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn budget_cancellation_returns_unknown() {
        let token = CancelToken::new();
        token.cancel("pre-fired in test");
        let mut s = Solver::builder()
            .cancel_token(token)
            .build()
            .expect("valid");
        add_pigeonhole(&mut s, 7, 6);
        assert_eq!(s.solve(&[]), SolveResult::Unknown);
    }

    #[test]
    fn stats_move() {
        let mut s = solver_with(&[&[1, 2], &[-1, -2], &[1, -2], &[-1, 2]]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn every_restart_mode_agrees_on_verdicts() {
        for mode in [RestartMode::Luby, RestartMode::Ema, RestartMode::Hybrid] {
            for chrono in [false, true] {
                let config = SatConfig::builder()
                    .restart_mode(mode)
                    .chrono_backtrack(chrono)
                    .build()
                    .expect("valid");
                let mut unsat = Solver::builder()
                    .config(config.clone())
                    .build()
                    .expect("valid");
                add_pigeonhole(&mut unsat, 6, 5);
                assert_eq!(unsat.solve(&[]), SolveResult::Unsat, "{mode:?}/{chrono}");
                let mut sat = Solver::builder().config(config).build().expect("valid");
                sat.add_clause([lit(1), lit(2)]);
                sat.add_clause([lit(-1), lit(3)]);
                assert_eq!(sat.solve(&[]), SolveResult::Sat, "{mode:?}/{chrono}");
            }
        }
    }

    #[test]
    fn chrono_backtracking_fires_on_deep_jumps() {
        // A low threshold plus a conflict-heavy instance makes distant
        // backjumps common enough to take the chronological path.
        let config = SatConfig::builder()
            .chrono_threshold(2)
            .build()
            .expect("valid");
        let mut s = Solver::builder().config(config).build().expect("valid");
        add_pigeonhole(&mut s, 7, 6);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(
            s.stats().chrono_backtracks > 0,
            "expected chronological backtracks on PHP with threshold 2"
        );
    }

    #[test]
    fn tier_counters_track_learnts() {
        let mut s = Solver::new();
        add_pigeonhole(&mut s, 7, 6);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        let stats = s.stats();
        assert!(
            stats.core_clauses + stats.tier2_clauses + stats.local_clauses > 0,
            "UNSAT proof must have learnt clauses"
        );
    }

    #[test]
    fn reduction_and_gc_fire_under_small_caps() {
        let config = SatConfig::builder()
            .local_cap(20)
            .local_cap_growth(5)
            .tier2_interval(100)
            .build()
            .expect("valid");
        let mut s = Solver::builder().config(config).build().expect("valid");
        add_pigeonhole(&mut s, 8, 7);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        let stats = s.stats();
        assert!(stats.deleted_clauses > 0, "reduction must delete clauses");
        assert!(stats.arena_gcs > 0, "deletions this heavy must trigger GC");
        assert!(stats.arena_words_reclaimed > 0);
    }
}
