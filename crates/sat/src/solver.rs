//! The CDCL solver proper.

use crate::heap::VarOrder;
use crate::luby::Luby;
use crate::proof::ProofLogger;
use hqs_base::{Assignment, CancelToken, Lit, Var};
use hqs_cnf::Cnf;
use hqs_obs::{Metric, Obs};
use std::fmt;

/// Result of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; query it with
    /// [`Solver::model_value`].
    Sat,
    /// The formula is unsatisfiable under the given assumptions; query
    /// [`Solver::failed_assumptions`].
    Unsat,
    /// The conflict budget was exhausted before a verdict.
    Unknown,
}

/// Cumulative solver statistics.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions taken.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts analysed.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub(crate) enum Lbool {
    False = 0,
    True = 1,
    Undef = 2,
}

impl Lbool {
    #[inline]
    fn from_bool(b: bool) -> Self {
        if b {
            Lbool::True
        } else {
            Lbool::False
        }
    }
}

#[derive(Clone, Debug)]
pub(crate) struct ClauseData {
    pub(crate) lits: Vec<Lit>,
    learnt: bool,
    pub(crate) deleted: bool,
    activity: f64,
    lbd: u32,
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct Watch {
    pub(crate) clause: u32,
    pub(crate) blocker: Lit,
}

pub(crate) const NO_REASON: u32 = u32::MAX;

/// A CDCL SAT solver.
///
/// See the [crate docs](crate) for the feature list. The solver is
/// incremental: clauses may be added between `solve` calls, and each call may
/// carry assumptions.
///
/// # Examples
///
/// ```
/// use hqs_base::Lit;
/// use hqs_sat::{SolveResult, Solver};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause([Lit::positive(a), Lit::positive(b)]);
/// assert_eq!(s.solve_with_assumptions(&[Lit::negative(a), Lit::negative(b)]), SolveResult::Unsat);
/// assert!(!s.failed_assumptions().is_empty());
/// assert_eq!(s.solve(), SolveResult::Sat);
/// ```
pub struct Solver {
    pub(crate) clauses: Vec<ClauseData>,
    learnt_indices: Vec<u32>,
    pub(crate) watches: Vec<Vec<Watch>>,
    pub(crate) assigns: Vec<Lbool>,
    pub(crate) level: Vec<u32>,
    pub(crate) reason: Vec<u32>,
    pub(crate) trail: Vec<Lit>,
    pub(crate) trail_lim: Vec<usize>,
    pub(crate) qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    clause_inc: f64,
    order: VarOrder,
    phase: Vec<bool>,
    seen: Vec<bool>,
    pub(crate) ok: bool,
    model: Vec<Lbool>,
    failed: Vec<Lit>,
    conflict_budget: Option<u64>,
    cancel: Option<CancelToken>,
    max_learnts: f64,
    stats: SolverStats,
    analyze_clear: Vec<Var>,
    /// Scratch buffer of [`Solver::minimize`], reused across conflicts so
    /// the analysis loop stays allocation-free.
    minimize_keep: Vec<bool>,
    /// Scratch buffer of [`Solver::compute_lbd`], reused across conflicts.
    lbd_levels: Vec<u32>,
    proof: Option<Box<dyn ProofLogger>>,
    obs: Obs,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl fmt::Debug for Solver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Solver")
            .field("vars", &self.num_vars())
            .field("clauses", &self.clauses.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Solver {
    /// Conflict interval between cancellation polls inside the CDCL
    /// loop — small enough that a fired [`CancelToken`] is observed
    /// within a few milliseconds of propagation work.
    pub const CANCEL_POLL_CONFLICTS: u64 = 256;
    /// Decision interval between cancellation polls on conflict-free
    /// stretches.
    pub const CANCEL_POLL_DECISIONS: u64 = 1024;

    /// Creates an empty solver.
    #[must_use]
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            learnt_indices: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            clause_inc: 1.0,
            order: VarOrder::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            ok: true,
            model: Vec::new(),
            failed: Vec::new(),
            conflict_budget: None,
            cancel: None,
            max_learnts: 4000.0,
            stats: SolverStats::default(),
            analyze_clear: Vec::new(),
            minimize_keep: Vec::new(),
            lbd_levels: Vec::new(),
            proof: None,
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle: each solve call then reports
    /// its call count and its conflict/propagation/decision/restart
    /// deltas through it. Counters are flushed once per solve call —
    /// the CDCL inner loops stay untouched.
    pub fn set_observer(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Attaches a proof logger; every subsequently derived or deleted
    /// clause is emitted as a DRAT step.
    ///
    /// The proof refutes the conjunction of exactly the clauses passed to
    /// [`Solver::add_clause`] (before simplification): give an independent
    /// checker that clause set as the original formula. Attach the logger
    /// **before** adding clauses, otherwise strengthening steps performed
    /// during earlier `add_clause` calls are missing from the proof.
    pub fn set_proof_logger(&mut self, logger: Box<dyn ProofLogger>) {
        self.proof = Some(logger);
    }

    /// Detaches and returns the proof logger, if any.
    pub fn take_proof_logger(&mut self) -> Option<Box<dyn ProofLogger>> {
        self.proof.take()
    }

    /// `true` if a proof logger is attached and has recorded an emission
    /// failure (the proof is incomplete and must not be trusted).
    #[must_use]
    pub fn proof_had_error(&self) -> bool {
        self.proof.as_ref().is_some_and(|p| p.had_error())
    }

    /// Overrides the learnt-clause limit that triggers database
    /// reduction (default 4000). Exposed so tests can force aggressive
    /// clause deletion and exercise the DRAT deletion path.
    pub fn set_max_learnts(&mut self, limit: f64) {
        self.max_learnts = limit;
    }

    #[inline]
    fn proof_add(&mut self, lits: &[Lit]) {
        if let Some(p) = self.proof.as_mut() {
            p.add_clause(lits);
        }
    }

    #[inline]
    fn proof_delete(&mut self, lits: &[Lit]) {
        if let Some(p) = self.proof.as_mut() {
            p.delete_clause(lits);
        }
    }

    /// Returns the number of allocated variables.
    #[must_use]
    pub fn num_vars(&self) -> u32 {
        self.assigns.len() as u32
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let var = Var::new(self.num_vars());
        self.assigns.push(Lbool::Undef);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.insert(var, &self.activity);
        var
    }

    /// Ensures at least `n` variables exist.
    pub fn ensure_vars(&mut self, n: u32) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    /// Returns the cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Limits the next `solve` calls to roughly `budget` conflicts
    /// (cumulative); `None` removes the limit.
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget.map(|b| self.stats.conflicts + b);
    }

    /// Attaches a shared cancellation token, polled inside the CDCL loop
    /// (every [`Solver::CANCEL_POLL_CONFLICTS`] conflicts and every
    /// [`Solver::CANCEL_POLL_DECISIONS`] decisions) so a fired token
    /// turns the current `solve` call into [`SolveResult::Unknown`]
    /// within a bounded amount of work — the portfolio engine relies on
    /// this to tear down losing workers without waiting out a long CDCL
    /// run. `None` detaches.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// `true` when an attached cancellation token has fired.
    #[inline]
    fn cancel_requested(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Adds a clause; returns `false` if the solver became trivially
    /// unsatisfiable (the clause is empty after level-0 simplification, or a
    /// previous conflict was already recorded).
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        debug_assert!(
            self.trail_lim.is_empty(),
            "add_clause at decision level 0 only"
        );
        if !self.ok {
            return false;
        }
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for &lit in &lits {
            self.ensure_vars(lit.var().bound());
        }
        lits.sort_unstable();
        lits.dedup();
        // Tautology or satisfied at level 0?
        if lits.windows(2).any(|w| w[0].var() == w[1].var()) {
            return true;
        }
        let original = if self.proof.is_some() {
            Some(lits.clone())
        } else {
            None
        };
        lits.retain(|&l| self.value(l) != Lbool::False);
        if lits.iter().any(|&l| self.value(l) == Lbool::True) {
            // Satisfied at level 0: never attached, so tell the proof the
            // original is gone (a deletion is always sound).
            if let Some(original) = original {
                self.proof_delete(&original);
            }
            return true;
        }
        if let Some(original) = original.filter(|o| o.len() != lits.len()) {
            // Strengthened by level-0 falsified literals: the shrunk clause
            // is RUP (each removed literal is falsified by root propagation)
            // and replaces the original.
            self.proof_add(&lits);
            self.proof_delete(&original);
        }
        match lits.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(lits[0], NO_REASON);
                self.ok = self.propagate().is_none();
                if !self.ok {
                    self.proof_add(&[]);
                }
                self.ok
            }
            _ => {
                self.attach_new_clause(lits, false);
                true
            }
        }
    }

    /// Adds every clause of `cnf`; returns `false` on trivial conflict.
    pub fn add_cnf(&mut self, cnf: &Cnf) -> bool {
        self.ensure_vars(cnf.num_vars());
        let mut ok = true;
        for clause in cnf.clauses() {
            ok &= self.add_clause(clause.lits().iter().copied());
        }
        ok
    }

    fn attach_new_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let idx = self.clauses.len() as u32;
        let w0 = lits[0];
        let w1 = lits[1];
        self.clauses.push(ClauseData {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
            lbd: 0,
        });
        if learnt {
            self.learnt_indices.push(idx);
        }
        self.watches[w0.uidx()].push(Watch {
            clause: idx,
            blocker: w1,
        });
        self.watches[w1.uidx()].push(Watch {
            clause: idx,
            blocker: w0,
        });
        idx
    }

    #[inline]
    pub(crate) fn value(&self, lit: Lit) -> Lbool {
        // analyze::allow(panic): every Lit reaching here went through ensure_vars
        let v = self.assigns[lit.var().uidx()];
        if v == Lbool::Undef {
            Lbool::Undef
        } else if lit.is_negative() {
            if v == Lbool::True {
                Lbool::False
            } else {
                Lbool::True
            }
        } else {
            v
        }
    }

    /// Returns the polarity of `var` in the most recent model, if any.
    #[must_use]
    pub fn model_value(&self, var: Var) -> Option<bool> {
        match self.model.get(var.uidx()) {
            Some(Lbool::True) => Some(true),
            Some(Lbool::False) => Some(false),
            _ => None,
        }
    }

    /// Returns the most recent model as an [`Assignment`].
    ///
    /// Variables that were never assigned by the solver default to `false`
    /// so the result is total over all allocated variables.
    #[must_use]
    pub fn model(&self) -> Assignment {
        let mut assignment = Assignment::with_num_vars(self.model.len() as u32);
        for (var, &value) in (0u32..).map(Var::new).zip(self.model.iter()) {
            assignment.assign(var, value == Lbool::True);
        }
        assignment
    }

    /// After an `Unsat` answer under assumptions: the subset of assumptions
    /// proved contradictory (a "failed core", possibly non-minimal).
    #[must_use]
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed
    }

    /// Solves without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Emits the stats delta accumulated since `before` (one solve
    /// call's worth of work) to the attached observer, if any.
    fn flush_obs(&self, before: SolverStats) {
        if !self.obs.is_enabled() {
            return;
        }
        let now = self.stats;
        self.obs.add(
            Metric::SatConflicts,
            now.conflicts.saturating_sub(before.conflicts),
        );
        self.obs.add(
            Metric::SatPropagations,
            now.propagations.saturating_sub(before.propagations),
        );
        self.obs.add(
            Metric::SatDecisions,
            now.decisions.saturating_sub(before.decisions),
        );
        self.obs.add(
            Metric::SatRestarts,
            now.restarts.saturating_sub(before.restarts),
        );
    }

    /// Solves in conflict-bounded rounds, calling `should_stop` between
    /// rounds; returns [`SolveResult::Unknown`] once it yields `true`.
    ///
    /// This is how the DQBF harness keeps wall-clock deadlines honest: a
    /// single long CDCL run cannot overshoot the budget by more than one
    /// round (~10⁴ conflicts).
    pub fn solve_interruptible(
        &mut self,
        assumptions: &[Lit],
        mut should_stop: impl FnMut() -> bool,
    ) -> SolveResult {
        const ROUND: u64 = 10_000;
        self.obs.add(Metric::SatCalls, 1);
        loop {
            self.set_conflict_budget(Some(ROUND));
            match self.solve_rounds(assumptions) {
                SolveResult::Unknown => {
                    if should_stop() {
                        self.set_conflict_budget(None);
                        return SolveResult::Unknown;
                    }
                }
                verdict => {
                    self.set_conflict_budget(None);
                    return verdict;
                }
            }
        }
    }

    /// Solves under the given assumptions.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.obs.add(Metric::SatCalls, 1);
        self.solve_rounds(assumptions)
    }

    /// Solves under assumptions as one query of a long-lived incremental
    /// session — the MiniSat-lineage `solve_limited` idiom the serving
    /// architecture is built on.
    ///
    /// Semantically identical to [`Solver::solve_with_assumptions`]; the
    /// name marks the incremental contract, documented here once:
    ///
    /// * **Warm state.** Learned clauses, variable activities and saved
    ///   phases survive the call, so a closely related follow-up query
    ///   spends fewer conflicts than a cold solver on the same formula.
    /// * **Mutation between queries.** [`Solver::add_clause`] may be
    ///   called between queries (every query exits at decision level 0);
    ///   previously learned clauses stay sound because adding clauses
    ///   only strengthens the formula. To *retract* clauses later, guard
    ///   them with a fresh selector literal and assume it here.
    /// * **Assumption-scoped verdicts.** [`SolveResult::Unsat`] means
    ///   "unsatisfiable *under these assumptions*"; the solver stays
    ///   usable and [`Solver::failed_assumptions`] names a responsible
    ///   subset of the assumptions.
    /// * **Proofs and cancellation.** An attached [`ProofLogger`] keeps
    ///   accumulating DRAT steps across queries (the proof stream covers
    ///   the conjunction of every clause ever added), and an attached
    ///   [`CancelToken`] is polled inside each query exactly as in a
    ///   one-shot solve.
    pub fn solve_under_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_with_assumptions(assumptions)
    }

    /// The CDCL run itself; [`Solver::solve_with_assumptions`] counts a
    /// call around it, [`Solver::solve_interruptible`] counts one call
    /// around *all* its conflict-bounded rounds.
    fn solve_rounds(&mut self, assumptions: &[Lit]) -> SolveResult {
        let stats_before = self.stats;
        self.failed.clear();
        self.model.clear();
        if !self.ok {
            return SolveResult::Unsat;
        }
        for &a in assumptions {
            // analyze::allow(cancel): bounded by the caller's assumption list
            self.ensure_vars(a.var().bound());
        }
        let mut restarts = Luby::new(100);
        let mut budget_this_restart = restarts.next_interval();
        let mut conflicts_this_restart = 0u64;
        let result = loop {
            match self.propagate() {
                Some(confl) => {
                    self.stats.conflicts += 1;
                    conflicts_this_restart += 1;
                    if self.decision_level() == 0 {
                        self.ok = false;
                        self.proof_add(&[]);
                        break SolveResult::Unsat;
                    }
                    if self.current_level_has_no_decision(assumptions.len()) {
                        // Conflict forced purely by assumptions.
                        self.analyze_final_conflict(confl, assumptions);
                        break SolveResult::Unsat;
                    }
                    let (learnt, backtrack_level, lbd) = self.analyze(confl);
                    // May backjump below assumption levels; `pick_branch`
                    // re-assumes them on the next decision.
                    self.cancel_until(backtrack_level);
                    self.learn(learnt, lbd);
                    self.decay_activities();
                    if let Some(limit) = self.conflict_budget {
                        if self.stats.conflicts >= limit {
                            break SolveResult::Unknown;
                        }
                    }
                    if self
                        .stats
                        .conflicts
                        .is_multiple_of(Self::CANCEL_POLL_CONFLICTS)
                        && self.cancel_requested()
                    {
                        break SolveResult::Unknown;
                    }
                }
                None => {
                    if conflicts_this_restart >= budget_this_restart
                        && self.decision_level() > assumptions.len()
                    {
                        self.stats.restarts += 1;
                        conflicts_this_restart = 0;
                        budget_this_restart = restarts.next_interval();
                        self.cancel_until(self.assumption_level(assumptions.len()));
                        // The restart `continue` skips the decision-count
                        // poll below; restarts happen at Luby intervals of
                        // ≥ 100 conflicts, so an unconditional poll here
                        // is cheap and keeps every iterating path covered.
                        if self.cancel_requested() {
                            break SolveResult::Unknown;
                        }
                        continue;
                    }
                    if self.learnt_indices.len() as f64 > self.max_learnts {
                        self.reduce_db();
                    }
                    // Conflict-free stretches (large satisfiable
                    // instances) must observe cancellation too.
                    if self
                        .stats
                        .decisions
                        .is_multiple_of(Self::CANCEL_POLL_DECISIONS)
                        && self.cancel_requested()
                    {
                        break SolveResult::Unknown;
                    }
                    // Assumptions first, then decisions.
                    match self.pick_branch(assumptions) {
                        BranchOutcome::Assumed | BranchOutcome::Decided => {}
                        BranchOutcome::AssumptionConflict(lit) => {
                            self.analyze_failed_assumption(lit, assumptions);
                            break SolveResult::Unsat;
                        }
                        BranchOutcome::AllAssigned => {
                            self.model = self.assigns.clone();
                            break SolveResult::Sat;
                        }
                    }
                }
            }
        };
        self.cancel_until(0);
        self.debug_audit("after solve");
        self.flush_obs(stats_before);
        result
    }

    fn assumption_level(&self, num_assumptions: usize) -> usize {
        self.decision_level().min(num_assumptions)
    }

    fn current_level_has_no_decision(&self, num_assumptions: usize) -> bool {
        self.decision_level() > 0 && self.decision_level() <= num_assumptions
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn pick_branch(&mut self, assumptions: &[Lit]) -> BranchOutcome {
        while self.decision_level() < assumptions.len() {
            let lit = assumptions[self.decision_level()];
            match self.value(lit) {
                Lbool::True => {
                    // Already satisfied: open an empty level so the mapping
                    // decision-level == assumption index stays intact.
                    self.trail_lim.push(self.trail.len());
                }
                Lbool::False => return BranchOutcome::AssumptionConflict(lit),
                Lbool::Undef => {
                    self.trail_lim.push(self.trail.len());
                    self.unchecked_enqueue(lit, NO_REASON);
                    return BranchOutcome::Assumed;
                }
            }
        }
        loop {
            let Some(var) = self.order.pop_max(&self.activity) else {
                return BranchOutcome::AllAssigned;
            };
            if self.assigns[var.uidx()] == Lbool::Undef {
                self.stats.decisions += 1;
                let lit = Lit::new(var, !self.phase[var.uidx()]);
                self.trail_lim.push(self.trail.len());
                self.unchecked_enqueue(lit, NO_REASON);
                return BranchOutcome::Decided;
            }
        }
    }

    fn unchecked_enqueue(&mut self, lit: Lit, reason: u32) {
        // analyze::allow(panic) lines=6: assigns/level/reason are sized by ensure_vars
        let var = lit.var().uidx();
        debug_assert_eq!(self.assigns[var], Lbool::Undef);
        self.assigns[var] = Lbool::from_bool(lit.is_positive());
        self.level[var] = self.decision_level() as u32;
        self.reason[var] = reason;
        self.trail.push(lit);
    }

    fn propagate(&mut self) -> Option<u32> {
        // Indexing in this loop is invariant-backed: `watches`, `assigns`,
        // `level` and `reason` are sized by `ensure_vars` before any
        // literal is minted, crefs index the solver's own clause arena,
        // and watched positions 0/1 exist because clauses of length < 2
        // never enter the watch lists.
        // analyze::allow(panic) lines=75: bounds established by ensure_vars and the watch invariant
        while let Some(&p) = self.trail.get(self.qhead) {
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.uidx()]);
            let mut kept = 0;
            let mut conflict = None;
            let mut i = 0;
            'watches: while i < watch_list.len() {
                let watch = watch_list[i];
                i += 1;
                if self.value(watch.blocker) == Lbool::True {
                    watch_list[kept] = watch;
                    kept += 1;
                    continue;
                }
                let cref = watch.clause as usize;
                // Deleted clauses may linger in watch lists; drop lazily.
                if self.clauses[cref].deleted {
                    continue;
                }
                // Make sure the false literal is at position 1.
                if self.clauses[cref].lits[0] == false_lit {
                    self.clauses[cref].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[cref].lits[1], false_lit);
                let first = self.clauses[cref].lits[0];
                if first != watch.blocker && self.value(first) == Lbool::True {
                    watch_list[kept] = Watch {
                        clause: watch.clause,
                        blocker: first,
                    };
                    kept += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..self.clauses[cref].lits.len() {
                    let candidate = self.clauses[cref].lits[k];
                    if self.value(candidate) != Lbool::False {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[candidate.uidx()].push(Watch {
                            clause: watch.clause,
                            blocker: first,
                        });
                        continue 'watches;
                    }
                }
                // No new watch: unit or conflict.
                watch_list[kept] = Watch {
                    clause: watch.clause,
                    blocker: first,
                };
                kept += 1;
                if self.value(first) == Lbool::False {
                    conflict = Some(watch.clause);
                    // Copy remaining watches back before bailing out.
                    while i < watch_list.len() {
                        watch_list[kept] = watch_list[i];
                        kept += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    break;
                }
                self.unchecked_enqueue(first, watch.clause);
            }
            watch_list.truncate(kept);
            self.watches[false_lit.uidx()] = watch_list;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// First-UIP conflict analysis; returns (learnt clause with asserting
    /// literal first, backtrack level, LBD).
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, usize, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::positive(Var::new(0))]; // placeholder for UIP
        let mut path_count = 0u32;
        let mut first_clause = true;
        let mut index = self.trail.len();
        let mut confl = confl;

        // Indexing below is invariant-backed: `seen`/`level`/`reason` are
        // sized by `ensure_vars`, the trail walk stays within bounds
        // because the first UIP is found before `index` underruns, and
        // crefs come from the solver's own clause arena.
        // analyze::allow(panic) lines=85: bounds established by ensure_vars and first-UIP termination
        loop {
            self.bump_clause(confl);
            // The conflict clause contributes every literal; reason
            // clauses skip the propagated literal at position 0.
            let start = usize::from(!first_clause);
            first_clause = false;
            // Iterate over the conflict/reason clause literals.
            for k in start..self.clauses[confl as usize].lits.len() {
                let q = self.clauses[confl as usize].lits[k];
                let var = q.var().uidx();
                if !self.seen[var] && self.level[var] > 0 {
                    self.seen[var] = true;
                    self.bump_var(q.var());
                    if self.level[var] as usize >= self.decision_level() {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal on the current level to expand.
            let p_lit = loop {
                index -= 1;
                let lit = self.trail[index];
                if self.seen[lit.var().uidx()] {
                    break lit;
                }
            };
            path_count -= 1;
            self.seen[p_lit.var().uidx()] = false;
            if path_count == 0 {
                learnt[0] = !p_lit;
                break;
            }
            confl = self.reason[p_lit.var().uidx()];
            debug_assert_ne!(
                confl, NO_REASON,
                "non-decision on conflict path has a reason"
            );
        }

        // Mark remaining literals seen for minimisation bookkeeping, and
        // remember every variable so flags are cleared even for literals the
        // minimisation drops.
        for &lit in &learnt[1..] {
            self.seen[lit.var().uidx()] = true;
            self.analyze_clear.push(lit.var());
        }
        self.minimize(&mut learnt);

        // Compute backtrack level: second highest level in the clause.
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_pos = 1;
            for k in 2..learnt.len() {
                if self.level[learnt[k].var().uidx()] > self.level[learnt[max_pos].var().uidx()] {
                    max_pos = k;
                }
            }
            learnt.swap(1, max_pos);
            self.level[learnt[1].var().uidx()] as usize
        };

        let lbd = self.compute_lbd(&learnt);
        for &lit in &learnt {
            self.seen[lit.var().uidx()] = false;
        }
        for &var in &self.analyze_clear {
            self.seen[var.uidx()] = false;
        }
        self.analyze_clear.clear();
        (learnt, backtrack_level, lbd)
    }

    /// Local clause minimisation: drop literals whose reason clause is fully
    /// covered by other seen literals (self-subsuming resolution).
    fn minimize(&mut self, learnt: &mut Vec<Lit>) {
        // analyze::allow(panic) lines=25: reason crefs index live clauses; seen/level sized by ensure_vars
        let mut keep = std::mem::take(&mut self.minimize_keep);
        keep.clear();
        keep.resize(learnt.len(), true);
        for (i, &lit) in learnt.iter().enumerate().skip(1) {
            let reason = self.reason[lit.var().uidx()];
            if reason == NO_REASON {
                continue;
            }
            let mut redundant = true;
            for k in 1..self.clauses[reason as usize].lits.len() {
                let q = self.clauses[reason as usize].lits[k];
                let var = q.var().uidx();
                if !self.seen[var] && self.level[var] > 0 {
                    redundant = false;
                    break;
                }
            }
            if redundant {
                keep[i] = false;
            }
        }
        let mut idx = 0;
        learnt.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
        self.minimize_keep = keep;
    }

    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        let mut levels = std::mem::take(&mut self.lbd_levels);
        levels.clear();
        // analyze::allow(panic): learnt-clause literals were assigned, so level is in bounds
        levels.extend(lits.iter().map(|l| self.level[l.var().uidx()]));
        levels.sort_unstable();
        levels.dedup();
        let lbd = levels.len() as u32;
        self.lbd_levels = levels;
        lbd
    }

    fn learn(&mut self, learnt: Vec<Lit>, lbd: u32) {
        self.proof_add(&learnt);
        let asserting = learnt[0];
        if learnt.len() == 1 {
            self.unchecked_enqueue(asserting, NO_REASON);
        } else {
            let idx = self.attach_new_clause(learnt, true);
            self.clauses[idx as usize].lbd = lbd;
            self.clauses[idx as usize].activity = self.clause_inc;
            self.unchecked_enqueue(asserting, idx);
        }
    }

    fn cancel_until(&mut self, target_level: usize) {
        if self.decision_level() <= target_level {
            return;
        }
        let boundary = self.trail_lim[target_level];
        for i in (boundary..self.trail.len()).rev() {
            let lit = self.trail[i];
            let var = lit.var();
            self.phase[var.uidx()] = lit.is_positive();
            self.assigns[var.uidx()] = Lbool::Undef;
            self.reason[var.uidx()] = NO_REASON;
            self.order.insert(var, &self.activity);
        }
        self.trail.truncate(boundary);
        self.trail_lim.truncate(target_level);
        self.qhead = self.trail.len();
        self.debug_audit("after backtrack");
    }

    fn bump_var(&mut self, var: Var) {
        // analyze::allow(panic) lines=3: activity is sized by ensure_vars
        let idx = var.uidx();
        self.activity[idx] += self.var_inc;
        if self.activity[idx] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(var, &self.activity);
    }

    fn bump_clause(&mut self, cref: u32) {
        // analyze::allow(panic) lines=10: crefs and learnt_indices are minted by add_clause
        let clause = &mut self.clauses[cref as usize];
        if !clause.learnt {
            return;
        }
        clause.activity += self.clause_inc;
        if clause.activity > 1e20 {
            for &idx in &self.learnt_indices {
                self.clauses[idx as usize].activity *= 1e-20;
            }
            self.clause_inc *= 1e-20;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
        self.clause_inc /= 0.999;
    }

    fn reduce_db(&mut self) {
        let mut candidates: Vec<u32> = self
            .learnt_indices
            .iter()
            .copied()
            .filter(|&idx| {
                let c = &self.clauses[idx as usize];
                !c.deleted && c.lits.len() > 2 && !self.is_locked(idx)
            })
            .collect();
        // Worst first: high LBD, then low activity.
        candidates.sort_by(|&a, &b| {
            let ca = &self.clauses[a as usize];
            let cb = &self.clauses[b as usize];
            cb.lbd.cmp(&ca.lbd).then(
                ca.activity
                    .partial_cmp(&cb.activity)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let to_delete = candidates.len() / 2;
        for &idx in candidates.iter().take(to_delete) {
            self.clauses[idx as usize].deleted = true;
            let lits = std::mem::take(&mut self.clauses[idx as usize].lits);
            self.proof_delete(&lits);
            self.stats.deleted_clauses += 1;
        }
        self.learnt_indices
            .retain(|&idx| !self.clauses[idx as usize].deleted);
        self.max_learnts *= 1.3;
        self.debug_audit("after reduce_db");
    }

    fn is_locked(&self, cref: u32) -> bool {
        let clause = &self.clauses[cref as usize];
        if clause.lits.is_empty() {
            return false;
        }
        let first = clause.lits[0];
        self.value(first) == Lbool::True && self.reason[first.var().uidx()] == cref
    }

    /// An assumption literal was already false when it was to be assumed:
    /// compute the subset of assumptions responsible.
    fn analyze_failed_assumption(&mut self, lit: Lit, assumptions: &[Lit]) {
        self.failed.clear();
        self.failed.push(lit);
        // Walk the implication graph from !lit back to assumptions.
        let start_var = lit.var();
        if self.level[start_var.uidx()] == 0 {
            return;
        }
        let mut seen = vec![false; self.num_vars() as usize];
        seen[start_var.uidx()] = true;
        for i in (0..self.trail.len()).rev() {
            let t = self.trail[i];
            let var = t.var().uidx();
            if !seen[var] {
                continue;
            }
            let reason = self.reason[var];
            if reason == NO_REASON {
                if assumptions.contains(&t) && t.var() != lit.var() {
                    self.failed.push(t);
                }
            } else {
                for &q in &self.clauses[reason as usize].lits[1..] {
                    if self.level[q.var().uidx()] > 0 {
                        seen[q.var().uidx()] = true;
                    }
                }
            }
        }
    }

    /// A conflict occurred with only assumption levels on the trail.
    fn analyze_final_conflict(&mut self, confl: u32, assumptions: &[Lit]) {
        self.failed.clear();
        let mut seen = vec![false; self.num_vars() as usize];
        for &q in &self.clauses[confl as usize].lits {
            if self.level[q.var().uidx()] > 0 {
                seen[q.var().uidx()] = true;
            }
        }
        for i in (0..self.trail.len()).rev() {
            let t = self.trail[i];
            let var = t.var().uidx();
            if !seen[var] {
                continue;
            }
            let reason = self.reason[var];
            if reason == NO_REASON {
                if assumptions.contains(&t) {
                    self.failed.push(t);
                }
            } else {
                for &q in &self.clauses[reason as usize].lits[1..] {
                    if self.level[q.var().uidx()] > 0 {
                        seen[q.var().uidx()] = true;
                    }
                }
            }
        }
    }
}

enum BranchOutcome {
    Assumed,
    Decided,
    AssumptionConflict(Lit),
    AllAssigned,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(value: i64) -> Lit {
        Lit::from_dimacs(value).unwrap()
    }

    fn solver_with(clauses: &[&[i64]]) -> Solver {
        let mut s = Solver::new();
        for c in clauses {
            s.add_clause(c.iter().map(|&v| lit(v)));
        }
        s
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_conflict_is_unsat() {
        let mut s = solver_with(&[&[1], &[-1]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        // Stays UNSAT on repeated calls.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn simple_sat_with_model() {
        let mut s = solver_with(&[&[1, 2], &[-1, 2], &[1, -2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let a = s.model_value(Var::new(0)).unwrap();
        let b = s.model_value(Var::new(1)).unwrap();
        // The clause set (a∨b)(¬a∨b)(a∨¬b) forces a = b = true.
        assert!(a && b);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p(i,j): pigeon i in hole j. vars 1..=6 as (i-1)*2 + j.
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        for i in 0..3i64 {
            clauses.push(vec![i * 2 + 1, i * 2 + 2]);
        }
        for j in 1..=2i64 {
            for i in 0..3i64 {
                for k in (i + 1)..3 {
                    clauses.push(vec![-(i * 2 + j), -(k * 2 + j)]);
                }
            }
        }
        let refs: Vec<&[i64]> = clauses.iter().map(Vec::as_slice).collect();
        let mut s = solver_with(&refs);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn chain_propagation() {
        // x1 and a long implication chain forcing x50.
        let mut s = Solver::new();
        s.add_clause([lit(1)]);
        for i in 1..50i64 {
            s.add_clause([lit(-i), lit(i + 1)]);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(Var::new(49)), Some(true));
    }

    #[test]
    fn assumptions_sat_and_unsat() {
        let mut s = solver_with(&[&[1, 2]]);
        assert_eq!(s.solve_with_assumptions(&[lit(-1)]), SolveResult::Sat);
        assert_eq!(s.model_value(Var::new(1)), Some(true));
        assert_eq!(
            s.solve_with_assumptions(&[lit(-1), lit(-2)]),
            SolveResult::Unsat
        );
        let failed = s.failed_assumptions().to_vec();
        assert!(!failed.is_empty());
        // Solver is still usable and SAT without assumptions.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = solver_with(&[&[1, 2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause([lit(-1)]);
        s.add_clause([lit(-2)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautological_clause_ignored() {
        let mut s = Solver::new();
        assert!(s.add_clause([lit(1), lit(-1)]));
        assert!(s.add_clause([lit(2)]));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn duplicate_literals_collapse() {
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(1), lit(1)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(Var::new(0)), Some(true));
    }

    #[test]
    fn budget_returns_unknown_on_hard_instance() {
        // A random-ish hard instance: pigeonhole 6 into 5.
        let n = 6i64;
        let holes = 5i64;
        let var = |p: i64, h: i64| (p - 1) * holes + h;
        let mut s = Solver::new();
        for p in 1..=n {
            s.add_clause((1..=holes).map(|h| lit(var(p, h))));
        }
        for h in 1..=holes {
            for p1 in 1..=n {
                for p2 in (p1 + 1)..=n {
                    s.add_clause([lit(-var(p1, h)), lit(-var(p2, h))]);
                }
            }
        }
        s.set_conflict_budget(Some(5));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn stats_move() {
        let mut s = solver_with(&[&[1, 2], &[-1, -2], &[1, -2], &[-1, 2]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }
}
