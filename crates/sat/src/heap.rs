//! A max-heap over variables ordered by activity, with in-place updates.

use hqs_base::Var;

/// Binary max-heap of variable indices keyed by an external activity array.
///
/// Supports the operations CDCL needs: insert, pop-max, and sift-up after an
/// activity bump (`decrease`d keys never happen — activities only grow, and
/// global rescaling preserves order).
#[derive(Clone, Default, Debug)]
pub struct VarOrder {
    heap: Vec<u32>,
    /// Position of each variable in `heap`, or `NOT_IN` if absent.
    index: Vec<u32>,
}

const NOT_IN: u32 = u32::MAX;

impl VarOrder {
    pub fn new() -> Self {
        VarOrder::default()
    }

    /// Extends the position table to cover variables `0..n`.
    pub fn grow(&mut self, n: u32) {
        if self.index.len() < n as usize {
            self.index.resize(n as usize, NOT_IN);
        }
    }

    pub fn contains(&self, var: Var) -> bool {
        self.index.get(var.uidx()).is_some_and(|&p| p != NOT_IN)
    }

    /// Inserts `var` if absent.
    pub fn insert(&mut self, var: Var, activity: &[f64]) {
        self.grow(var.bound());
        if self.contains(var) {
            return;
        }
        let pos = self.heap.len() as u32;
        self.heap.push(var.index());
        self.index[var.uidx()] = pos;
        self.sift_up(pos as usize, activity);
    }

    /// Removes and returns the variable with maximum activity.
    pub fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop()?;
        self.index[top as usize] = NOT_IN;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.index[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(Var::new(top))
    }

    /// Restores the heap property for `var` after its activity increased.
    pub fn update(&mut self, var: Var, activity: &[f64]) {
        if let Some(&pos) = self.index.get(var.uidx()) {
            if pos != NOT_IN {
                self.sift_up(pos as usize, activity);
            }
        }
    }

    fn sift_up(&mut self, mut pos: usize, activity: &[f64]) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            // analyze::allow(panic): heap entries are vars registered via insert, parent < pos
            if activity[self.heap[pos] as usize] <= activity[self.heap[parent] as usize] {
                break;
            }
            self.swap(pos, parent);
            pos = parent;
        }
    }

    fn sift_down(&mut self, mut pos: usize, activity: &[f64]) {
        loop {
            let left = 2 * pos + 1;
            let right = left + 1;
            let mut best = pos;
            if left < self.heap.len()
                && activity[self.heap[left] as usize] > activity[self.heap[best] as usize]
            {
                best = left;
            }
            if right < self.heap.len()
                && activity[self.heap[right] as usize] > activity[self.heap[best] as usize]
            {
                best = right;
            }
            if best == pos {
                break;
            }
            self.swap(pos, best);
            pos = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        // analyze::allow(panic) lines=2: index is sized for every var held by the heap
        self.index[self.heap[a] as usize] = a as u32;
        self.index[self.heap[b] as usize] = b as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![1.0, 5.0, 3.0, 4.0];
        let mut order = VarOrder::new();
        for i in 0..4 {
            order.insert(Var::new(i), &activity);
        }
        let got: Vec<u32> = std::iter::from_fn(|| order.pop_max(&activity))
            .map(Var::index)
            .collect();
        assert_eq!(got, vec![1, 3, 2, 0]);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let activity = vec![1.0; 3];
        let mut order = VarOrder::new();
        order.insert(Var::new(1), &activity);
        order.insert(Var::new(1), &activity);
        assert!(order.pop_max(&activity).is_some());
        assert!(order.pop_max(&activity).is_none());
    }

    #[test]
    fn update_after_bump_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut order = VarOrder::new();
        for i in 0..3 {
            order.insert(Var::new(i), &activity);
        }
        activity[0] = 10.0;
        order.update(Var::new(0), &activity);
        assert_eq!(order.pop_max(&activity), Some(Var::new(0)));
    }
}
