//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! This crate reimplements the SAT substrate the HQS paper relies on
//! (the authors used *antom*): a MiniSat-style CDCL solver with
//!
//! * a contiguous clause arena (one `Vec<u32>` of headers + literals,
//!   compacted by garbage collection) and flat two-watched-literal
//!   propagation,
//! * first-UIP conflict analysis with clause minimisation,
//! * VSIDS variable activities with phase saving,
//! * selectable restarts ([`RestartMode`]): Luby, Glucose-style LBD-EMA,
//!   or the hybrid of the two (the default),
//! * chronological backtracking for distant backjumps (on by default,
//!   [`SatConfig::chrono_backtrack`]),
//! * three-tier learnt-clause database reduction (core / tier2 / local,
//!   with glue protection and used-recently second chances),
//! * incremental solving under assumptions with failed-assumption
//!   extraction (used by the MaxSAT layer),
//! * a typed, validated configuration ([`SatConfig`]) with a per-call
//!   conflict budget for any-time use by the DQBF harness, and
//! * optional DRAT proof logging (text or binary) through
//!   [`ProofLogger`], so UNSAT verdicts can be validated by the
//!   independent checker in `hqs-proof`.
//!
//! # Examples
//!
//! ```
//! use hqs_base::{Lit, Var};
//! use hqs_sat::{SolveResult, Solver};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_var();
//! let y = solver.new_var();
//! solver.add_clause([Lit::positive(x), Lit::positive(y)]);
//! solver.add_clause([Lit::negative(x)]);
//! assert_eq!(solver.solve(&[]), SolveResult::Sat);
//! assert_eq!(solver.model_value(y), Some(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod check;
mod config;
mod heap;
mod luby;
mod proof;
pub mod reference;
mod restart;
mod solver;
mod watch;

pub use config::{RestartMode, SatConfig, SatConfigBuilder, SatConfigError};
pub use hqs_base::InvariantViolation;
pub use proof::{BinaryDratLogger, ProofBuffer, ProofLogger, TextDratLogger};
pub use solver::{SolveResult, Solver, SolverBuilder, SolverStats};
