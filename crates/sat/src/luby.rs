//! The Luby restart sequence.

/// Iterator over the Luby sequence `1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …`,
/// scaled by a base interval.
#[derive(Clone, Debug)]
pub struct Luby {
    base: u64,
    step: u64,
}

impl Luby {
    /// Creates a Luby sequence whose values are multiplied by `base`.
    pub fn new(base: u64) -> Self {
        Luby { base, step: 1 }
    }

    /// Returns the next restart interval.
    pub fn next_interval(&mut self) -> u64 {
        let value = luby(self.step);
        self.step += 1;
        value * self.base
    }
}

/// The `i`-th element (1-based) of the Luby sequence.
fn luby(i: u64) -> u64 {
    // Find the finite subsequence containing index i, then the position in it.
    let mut k = 1u32;
    while (1u64 << k) - 1 < i {
        k += 1;
    }
    let mut i = i;
    while (1u64 << k) - 1 != i {
        i -= (1u64 << (k - 1)) - 1;
        k = 1;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
    }
    1u64 << (k - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_terms() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn scaled_iterator() {
        let mut seq = Luby::new(100);
        assert_eq!(seq.next_interval(), 100);
        assert_eq!(seq.next_interval(), 100);
        assert_eq!(seq.next_interval(), 200);
    }
}
