//! Flat two-watched-literal storage.
//!
//! All watch lists live in one `Vec<Watch>`; each literal owns a
//! `{start, len, cap}` range into it. Appending to a full range
//! relocates that one bucket to the end of the vector with doubled
//! capacity (amortised O(1), like `Vec` itself), abandoning the old
//! slots; the abandoned share is tracked and reclaimed when the solver
//! compacts the store during arena garbage collection.
//!
//! Compared to the previous `Vec<Vec<Watch>>`, this removes one pointer
//! chase per visited list, keeps hot lists adjacent in memory, and
//! frees the propagation loop from the `mem::take` dance it needed to
//! appease the borrow checker — the loop indexes `data` directly, and
//! pushes for *other* literals can never move the bucket it is
//! currently scanning (a new watch is only ever pushed onto a literal
//! that is not the falsified one being propagated).

use crate::arena::ClauseRef;
use hqs_base::Lit;

/// One watcher: the clause and a blocker literal whose truth makes
/// visiting the clause unnecessary.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Watch {
    pub(crate) cref: ClauseRef,
    pub(crate) blocker: Lit,
}

impl Watch {
    /// Filler for unoccupied capacity slots; never read.
    fn vacant() -> Watch {
        Watch {
            cref: ClauseRef::MAX,
            blocker: Lit::from_code(0),
        }
    }
}

#[derive(Clone, Copy, Default)]
pub(crate) struct Range {
    pub(crate) start: u32,
    pub(crate) len: u32,
    cap: u32,
}

/// The flat watch store; one [`Range`] per literal code.
pub(crate) struct FlatWatches {
    /// `pub(crate)` so the propagation loop indexes slots directly.
    pub(crate) data: Vec<Watch>,
    pub(crate) ranges: Vec<Range>,
    /// Slots abandoned by bucket relocation.
    wasted: usize,
}

impl FlatWatches {
    pub(crate) fn new() -> Self {
        FlatWatches {
            data: Vec::new(),
            ranges: Vec::new(),
            wasted: 0,
        }
    }

    /// Registers one more variable (two literal codes).
    pub(crate) fn add_var(&mut self) {
        self.ranges.push(Range::default());
        self.ranges.push(Range::default());
    }

    /// The number of literal codes with a (possibly empty) bucket.
    pub(crate) fn num_codes(&self) -> usize {
        self.ranges.len()
    }

    /// Appends `watch` to the bucket of literal code `code`.
    pub(crate) fn push(&mut self, code: usize, watch: Watch) {
        // analyze::allow(panic) lines=22: code < ranges.len() by add_var; bucket ranges index data by invariant
        let r = self.ranges[code];
        if r.len == r.cap {
            let new_cap = (r.cap * 2).max(4);
            let new_start = self.data.len() as u32;
            self.data.reserve(new_cap as usize);
            for i in 0..r.len {
                let entry = self.data[(r.start + i) as usize];
                self.data.push(entry);
            }
            self.data
                .resize(new_start as usize + new_cap as usize, Watch::vacant());
            self.wasted += r.cap as usize;
            self.ranges[code] = Range {
                start: new_start,
                len: r.len,
                cap: new_cap,
            };
        }
        let r = self.ranges[code];
        self.data[(r.start + r.len) as usize] = watch;
        self.ranges[code].len += 1;
    }

    /// Shrinks the bucket of `code` to `len` entries (capacity kept).
    pub(crate) fn truncate(&mut self, code: usize, len: usize) {
        // analyze::allow(panic) lines=2: code < ranges.len() by add_var
        debug_assert!(len as u32 <= self.ranges[code].len);
        self.ranges[code].len = len as u32;
    }

    /// The bucket of `code` as a slice (for audits and tests).
    pub(crate) fn bucket(&self, code: usize) -> &[Watch] {
        let r = self.ranges[code];
        &self.data[r.start as usize..(r.start + r.len) as usize]
    }

    /// Slots abandoned by relocation, still held in `data`.
    #[cfg(test)]
    pub(crate) fn wasted_slots(&self) -> usize {
        self.wasted
    }

    /// Rewrites every entry through `map` (dropping entries it maps to
    /// `None`) and compacts the store. Used after arena GC: `map`
    /// translates old clause offsets to new ones and drops watchers of
    /// deleted clauses.
    pub(crate) fn remap_and_compact(
        &mut self,
        mut map: impl FnMut(ClauseRef) -> Option<ClauseRef>,
    ) {
        let mut compacted: Vec<Watch> = Vec::with_capacity(self.data.len() - self.wasted);
        for range in &mut self.ranges {
            let start = compacted.len() as u32;
            for i in 0..range.len {
                let entry = self.data[(range.start + i) as usize];
                if let Some(cref) = map(entry.cref) {
                    compacted.push(Watch {
                        cref,
                        blocker: entry.blocker,
                    });
                }
            }
            let len = compacted.len() as u32 - start;
            *range = Range {
                start,
                len,
                cap: len,
            };
        }
        self.data = compacted;
        self.wasted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(cref: u32) -> Watch {
        Watch {
            cref,
            blocker: Lit::from_code(0),
        }
    }

    fn crefs(watches: &FlatWatches, code: usize) -> Vec<u32> {
        watches.bucket(code).iter().map(|e| e.cref).collect()
    }

    #[test]
    fn push_and_grow_keeps_buckets_independent() {
        let mut fw = FlatWatches::new();
        fw.add_var();
        fw.add_var();
        for i in 0..10 {
            fw.push(0, w(i));
            fw.push(3, w(100 + i));
        }
        assert_eq!(crefs(&fw, 0), (0..10).collect::<Vec<_>>());
        assert_eq!(crefs(&fw, 3), (100..110).collect::<Vec<_>>());
        assert!(crefs(&fw, 1).is_empty());
        assert!(fw.wasted_slots() > 0, "relocations abandon old slots");
    }

    #[test]
    fn truncate_shrinks_in_place() {
        let mut fw = FlatWatches::new();
        fw.add_var();
        for i in 0..5 {
            fw.push(1, w(i));
        }
        fw.truncate(1, 2);
        assert_eq!(crefs(&fw, 1), vec![0, 1]);
        // Capacity survives: the next push reuses the freed slot.
        fw.push(1, w(9));
        assert_eq!(crefs(&fw, 1), vec![0, 1, 9]);
    }

    #[test]
    fn remap_and_compact_drops_and_translates() {
        let mut fw = FlatWatches::new();
        fw.add_var();
        fw.add_var();
        for i in 0..6 {
            fw.push(0, w(i));
        }
        fw.push(2, w(6));
        fw.remap_and_compact(|c| if c % 2 == 0 { Some(c * 10) } else { None });
        assert_eq!(crefs(&fw, 0), vec![0, 20, 40]);
        assert_eq!(crefs(&fw, 2), vec![60]);
        assert_eq!(fw.wasted_slots(), 0);
        assert_eq!(fw.data.len(), 4);
    }
}
