//! A tiny, obviously-correct DPLL solver used as a test oracle.
//!
//! This module exists so property tests elsewhere in the workspace can
//! compare the CDCL solver (and everything built on top of it) against an
//! implementation simple enough to audit by eye. It is exponential and
//! must only be fed small formulas.

use hqs_base::{Assignment, Lit, TruthValue, Var};
use hqs_cnf::Cnf;

/// Decides satisfiability of `cnf` by plain DPLL (unit propagation +
/// chronological backtracking). Returns a model if satisfiable.
///
/// # Examples
///
/// ```
/// use hqs_cnf::dimacs::parse_dimacs;
/// use hqs_sat::reference::dpll;
///
/// let cnf = parse_dimacs("p cnf 2 2\n1 2 0\n-1 0\n").unwrap();
/// let model = dpll(&cnf).expect("satisfiable");
/// assert!(model.satisfies(hqs_base::Lit::from_dimacs(2).unwrap()));
/// ```
#[must_use]
pub fn dpll(cnf: &Cnf) -> Option<Assignment> {
    let mut assignment = Assignment::with_num_vars(cnf.num_vars());
    if solve_rec(cnf, &mut assignment) {
        // Totalise: unassigned variables default to false.
        for i in 0..cnf.num_vars() {
            let var = Var::new(i);
            if assignment.value(var) == TruthValue::Unassigned {
                assignment.assign(var, false);
            }
        }
        Some(assignment)
    } else {
        None
    }
}

/// Returns `true` iff `cnf` is satisfiable (DPLL oracle).
#[must_use]
pub fn is_satisfiable(cnf: &Cnf) -> bool {
    dpll(cnf).is_some()
}

/// Solves `cnf` with a CDCL [`Solver`](crate::Solver) built from
/// `config` and checks the verdict against the DPLL oracle; a `Sat`
/// answer must additionally come with a model that evaluates the formula
/// to true. Property tests call this across the whole configuration
/// matrix (restart modes × chronological backtracking), so every search
/// policy is held to the same oracle.
///
/// # Panics
///
/// Panics if `config` fails validation — the test matrix only contains
/// valid configurations, so an invalid one is a bug in the test itself.
#[must_use]
pub fn agrees_with_reference(cnf: &Cnf, config: &crate::SatConfig) -> bool {
    let mut solver = crate::Solver::builder()
        .config(config.clone())
        .build()
        .expect("test configurations are valid");
    solver.add_cnf(cnf);
    match solver.solve(&[]) {
        crate::SolveResult::Sat => {
            is_satisfiable(cnf) && cnf.evaluate(&solver.model()) == TruthValue::True
        }
        crate::SolveResult::Unsat => !is_satisfiable(cnf),
        // The matrix runs without conflict budgets; `Unknown` means the
        // solver gave up on an instance the oracle can settle.
        crate::SolveResult::Unknown => false,
    }
}

fn solve_rec(cnf: &Cnf, assignment: &mut Assignment) -> bool {
    // Unit propagation to fixpoint; remember what we assigned for undo.
    let mut propagated: Vec<Var> = Vec::new();
    loop {
        let mut unit: Option<Lit> = None;
        let mut all_true = true;
        for clause in cnf.clauses() {
            let mut unassigned: Option<Lit> = None;
            let mut unassigned_count = 0;
            let mut satisfied = false;
            for &lit in clause.lits() {
                match assignment.lit_value(lit) {
                    TruthValue::True => {
                        satisfied = true;
                        break;
                    }
                    TruthValue::Unassigned => {
                        unassigned = Some(lit);
                        unassigned_count += 1;
                    }
                    TruthValue::False => {}
                }
            }
            if satisfied {
                continue;
            }
            match unassigned_count {
                0 => {
                    for var in propagated {
                        assignment.unassign(var);
                    }
                    return false;
                }
                1 => unit = unit.or(unassigned),
                _ => all_true = false,
            }
            if unassigned_count > 0 {
                all_true = false;
            }
        }
        if all_true {
            return true;
        }
        match unit {
            Some(lit) => {
                assignment.assign_lit(lit);
                propagated.push(lit.var());
            }
            None => break,
        }
    }

    // Branch on the first unassigned variable occurring in a clause.
    let branch_var = cnf
        .clauses()
        .iter()
        .flat_map(|c| c.lits())
        .map(|l| l.var())
        .find(|&v| assignment.value(v) == TruthValue::Unassigned);
    let Some(var) = branch_var else {
        // No unassigned variable left in any clause, and not all clauses
        // true: some clause is false.
        let ok = cnf.evaluate(assignment) == TruthValue::True;
        if !ok {
            for var in propagated {
                assignment.unassign(var);
            }
        }
        return ok;
    };
    for value in [true, false] {
        assignment.assign(var, value);
        if solve_rec(cnf, assignment) {
            return true;
        }
        assignment.unassign(var);
    }
    for var in propagated {
        assignment.unassign(var);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqs_cnf::dimacs::parse_dimacs;

    #[test]
    fn sat_instance() {
        let cnf = parse_dimacs("p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n").unwrap();
        let model = dpll(&cnf).unwrap();
        assert_eq!(cnf.evaluate(&model), TruthValue::True);
    }

    #[test]
    fn unsat_instance() {
        let cnf = parse_dimacs("p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n").unwrap();
        assert!(dpll(&cnf).is_none());
    }

    #[test]
    fn empty_cnf_is_sat() {
        let cnf = Cnf::new(0);
        assert!(is_satisfiable(&cnf));
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(hqs_cnf::Clause::empty());
        assert!(!is_satisfiable(&cnf));
    }
}
