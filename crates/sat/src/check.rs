//! Runtime structural-invariant audit of the CDCL solver.
//!
//! Two-watched-literal propagation is only sound while the solver keeps
//! its bookkeeping consistent: the trail and the per-variable
//! assignment/level/reason arrays must agree, every live clause must be
//! watched on exactly its first two literals, and — once propagation has
//! drained the queue — no clause may have both watched literals false
//! (that would be a conflict the propagation loop missed, which also
//! rules out fully falsified clauses going unnoticed).
//!
//! [`Solver::check_invariants`] audits all of this in one pass; the
//! mutating operations (backtracking, database reduction, arena garbage
//! collection, the end of every `solve` call) re-run it under
//! `debug_assert!`, so corruption is caught at the mutation site in
//! debug and `-C debug-assertions` builds.

use crate::arena::{ClauseRef, NO_REASON};
use crate::solver::{Lbool, Solver};
use hqs_base::InvariantViolation;

impl Solver {
    /// Audits every structural invariant of the solver.
    ///
    /// Checked, in one pass over the trail, the clause arena and the
    /// watch store:
    ///
    /// 1. **trail** — decision-level boundaries are monotone and in
    ///    bounds; every trail literal is assigned true, carries the
    ///    decision level of its trail segment, and appears once; the
    ///    number of assigned variables equals the trail length;
    ///    unassigned variables have no reason clause.
    /// 2. **reason** — the reason clause of a propagated literal is a
    ///    valid arena reference, live, and has that literal in first
    ///    position.
    /// 3. **clauses** — live clauses have at least two literals and no
    ///    repeated variable.
    /// 4. **watches** — every bucket range lies inside its watch store;
    ///    every live clause is watched exactly twice, on its first two
    ///    literals, and each watch's blocker is a literal of the clause;
    ///    binary clauses are watched in the dedicated binary store and
    ///    longer clauses in the general one, never vice versa (stale
    ///    entries for deleted clauses are tolerated: the propagation
    ///    loop drops them lazily).
    /// 5. **propagation** — when the queue is drained (`qhead` at the
    ///    trail end) and no top-level conflict is recorded, no live
    ///    clause has both watched literals false.
    ///
    /// Returns the first violation found. Runs in
    /// `O(vars + arena words + watch entries)`.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let err = |component, detail| Err(InvariantViolation::new(component, detail));
        let num_vars = self.assigns.len();
        // Every valid clause reference, ascending (the arena iterates in
        // offset order); membership below is a binary search.
        let refs: Vec<ClauseRef> = self.arena.refs().collect();
        let ref_index = |c: ClauseRef| refs.binary_search(&c).ok();

        // Trail structure: monotone level boundaries, queue head in range.
        if self.qhead > self.trail.len() {
            return err(
                "trail",
                format!("qhead {} past trail end {}", self.qhead, self.trail.len()),
            );
        }
        for (d, w) in self.trail_lim.windows(2).enumerate() {
            if w[0] > w[1] {
                return err(
                    "trail",
                    format!(
                        "level boundaries not monotone at level {}: {} > {}",
                        d + 1,
                        w[0],
                        w[1]
                    ),
                );
            }
        }
        if let Some(&last) = self.trail_lim.last() {
            if last > self.trail.len() {
                return err(
                    "trail",
                    format!("level boundary {last} past trail end {}", self.trail.len()),
                );
            }
        }

        // Trail literals: assigned true, correct segment level, no repeats,
        // live reasons with the literal in first position.
        let mut on_trail = vec![false; num_vars];
        let mut next_lim = 0usize;
        for (pos, &lit) in self.trail.iter().enumerate() {
            let var = lit.var().uidx();
            if var >= num_vars {
                return err(
                    "trail",
                    format!("trail literal {lit:?} names an unallocated variable"),
                );
            }
            if on_trail[var] {
                return err(
                    "trail",
                    format!("variable of {lit:?} appears twice on the trail"),
                );
            }
            on_trail[var] = true;
            if self.value(lit) != Lbool::True {
                return err(
                    "trail",
                    format!("trail literal {lit:?} is not assigned true"),
                );
            }
            while next_lim < self.trail_lim.len() && self.trail_lim[next_lim] <= pos {
                next_lim += 1;
            }
            if self.level[var] as usize != next_lim {
                return err(
                    "trail",
                    format!(
                        "trail literal {lit:?} at position {pos} has level {} but lies in \
                         segment {next_lim}",
                        self.level[var]
                    ),
                );
            }
            let reason = self.reason[var];
            if reason != NO_REASON {
                if ref_index(reason).is_none() {
                    return err(
                        "reason",
                        format!("{lit:?} has reason {reason}, not a clause reference"),
                    );
                }
                if self.arena.is_deleted(reason) {
                    return err(
                        "reason",
                        format!("{lit:?} has a deleted reason clause {reason}"),
                    );
                }
                if self.arena.lit(reason, 0) != lit {
                    return err(
                        "reason",
                        format!("reason clause {reason} of {lit:?} does not lead with it"),
                    );
                }
            }
        }
        // The per-literal assignment mirror must agree with `assigns`.
        for (var, &a) in self.assigns.iter().enumerate() {
            for sign in 0..2usize {
                let expect = match a {
                    Lbool::Undef => Lbool::Undef,
                    Lbool::True if sign == 0 => Lbool::True,
                    Lbool::False if sign == 0 => Lbool::False,
                    Lbool::True => Lbool::False,
                    Lbool::False => Lbool::True,
                };
                if self.lit_vals[var * 2 + sign] != expect {
                    return err(
                        "trail",
                        format!("literal-value mirror of variable {var} disagrees with assigns"),
                    );
                }
            }
        }
        let assigned = self.assigns.iter().filter(|&&a| a != Lbool::Undef).count();
        if assigned != self.trail.len() {
            return err(
                "trail",
                format!(
                    "{assigned} variables assigned but the trail holds {}",
                    self.trail.len()
                ),
            );
        }
        for (var, &tracked) in on_trail.iter().enumerate().take(num_vars) {
            if !tracked && self.reason[var] != NO_REASON {
                return err(
                    "reason",
                    format!(
                        "unassigned variable {var} retains reason clause {}",
                        self.reason[var]
                    ),
                );
            }
        }

        // Clause shape, then watch coverage: two watches per live clause,
        // on its first two literals.
        for &c in &refs {
            if self.arena.is_deleted(c) {
                continue;
            }
            if self.arena.len(c) < 2 {
                return err(
                    "clauses",
                    format!("live clause {c} has fewer than two literals"),
                );
            }
            let mut vars: Vec<u32> = self.arena.lit_codes(c).iter().map(|w| w >> 1).collect();
            vars.sort_unstable();
            if vars.windows(2).any(|w| w[0] == w[1]) {
                return err("clauses", format!("live clause {c} repeats a variable"));
            }
        }
        let mut watch_count = vec![0u32; refs.len()];
        for (store, name, binary) in [
            (&self.watches, "watches", false),
            (&self.bin_watches, "binary watches", true),
        ] {
            for code in 0..store.num_codes() {
                let range = store.ranges[code];
                if (range.start as usize + range.len as usize) > store.data.len() {
                    return err(
                        "watches",
                        format!("bucket of code {code} runs past the {name} store"),
                    );
                }
                for watch in store.bucket(code) {
                    let Some(idx) = ref_index(watch.cref) else {
                        return err(
                            "watches",
                            format!("{name} entry references non-clause offset {}", watch.cref),
                        );
                    };
                    if self.arena.is_deleted(watch.cref) {
                        continue; // lazily dropped by the propagation loop
                    }
                    if binary != (self.arena.len(watch.cref) == 2) {
                        return err(
                            "watches",
                            format!(
                                "clause {} of length {} is watched in the {name} store",
                                watch.cref,
                                self.arena.len(watch.cref)
                            ),
                        );
                    }
                    let codes = self.arena.lit_codes(watch.cref);
                    if !codes[..2].iter().any(|&w| w as usize == code) {
                        return err(
                            "watches",
                            format!(
                                "clause {} watched on a literal outside its first two positions",
                                watch.cref
                            ),
                        );
                    }
                    if !codes.contains(&watch.blocker.code()) {
                        return err(
                            "watches",
                            format!(
                                "blocker {:?} is not a literal of clause {}",
                                watch.blocker, watch.cref
                            ),
                        );
                    }
                    watch_count[idx] += 1;
                }
            }
        }
        for (idx, &c) in refs.iter().enumerate() {
            if !self.arena.is_deleted(c) && watch_count[idx] != 2 {
                return err(
                    "watches",
                    format!(
                        "live clause {c} has {} watch entries, expected 2",
                        watch_count[idx]
                    ),
                );
            }
        }

        // With the propagation queue drained and no recorded top-level
        // conflict, a clause whose two watched literals are both false is
        // a conflict propagation failed to notice.
        if self.ok && self.qhead == self.trail.len() {
            for &c in &refs {
                if self.arena.is_deleted(c) {
                    continue;
                }
                if self.value(self.arena.lit(c, 0)) == Lbool::False
                    && self.value(self.arena.lit(c, 1)) == Lbool::False
                {
                    return err(
                        "propagation",
                        format!("clause {c} has both watched literals false after propagation"),
                    );
                }
            }
        }
        Ok(())
    }

    /// Panics with the violation if the full audit fails; used by the
    /// `debug_assert!` hooks and by paranoid callers in release builds.
    pub fn assert_invariants(&self, context: &str) {
        if let Err(violation) = self.check_invariants() {
            panic!("SAT solver invariant violated {context}: {violation}");
        }
    }

    /// Full audit compiled to a no-op unless debug assertions are on;
    /// called after backtracking, database reduction, arena GC and every
    /// solve.
    pub(crate) fn debug_audit(&self, context: &str) {
        if cfg!(debug_assertions) {
            self.assert_invariants(context);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::arena::NO_REASON;
    use crate::solver::Lbool;
    use crate::watch::Watch;
    use crate::{SolveResult, Solver};
    use hqs_base::Lit;

    fn lit(value: i64) -> Lit {
        Lit::from_dimacs(value).unwrap()
    }

    fn sample() -> Solver {
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(2), lit(3)]);
        s.add_clause([lit(-1), lit(2)]);
        s.add_clause([lit(-2), lit(3)]);
        s
    }

    /// Hand-assigns `l` true in both `assigns` and its `lit_vals` mirror,
    /// so corruption tests can target a *single* invariant without also
    /// tripping the mirror-consistency audit.
    fn force_assign(s: &mut Solver, l: Lit) {
        s.assigns[l.var().uidx()] = if l.is_positive() {
            Lbool::True
        } else {
            Lbool::False
        };
        s.lit_vals[l.uidx()] = Lbool::True;
        s.lit_vals[l.uidx() ^ 1] = Lbool::False;
    }

    #[test]
    fn healthy_solver_passes() {
        let s = sample();
        assert_eq!(s.check_invariants(), Ok(()));
        assert_eq!(Solver::new().check_invariants(), Ok(()));
    }

    #[test]
    fn invariants_hold_after_solving() {
        // A conflict-heavy instance exercises learning, backtracking and
        // restarts; the state must still audit cleanly afterwards.
        let n = 5i64;
        let holes = 4i64;
        let var = |p: i64, h: i64| (p - 1) * holes + h;
        let mut s = Solver::new();
        for p in 1..=n {
            s.add_clause((1..=holes).map(|h| lit(var(p, h))));
        }
        for h in 1..=holes {
            for p1 in 1..=n {
                for p2 in (p1 + 1)..=n {
                    s.add_clause([lit(-var(p1, h)), lit(-var(p2, h))]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert_eq!(s.check_invariants(), Ok(()));
    }

    #[test]
    fn missing_watch_entry_is_caught() {
        let mut s = sample();
        let code = (0..s.watches.num_codes())
            .find(|&c| !s.watches.bucket(c).is_empty())
            .expect("sample has watches");
        let len = s.watches.bucket(code).len();
        s.watches.truncate(code, len - 1);
        let violation = s.check_invariants().expect_err("missing watch undetected");
        assert_eq!(violation.component(), "watches");
    }

    #[test]
    fn watch_on_wrong_literal_is_caught() {
        let mut s = sample();
        // Move the ternary clause's watch to a list none of the clause's
        // first two literals index.
        let code = lit(1).uidx();
        let entry = *s
            .watches
            .bucket(code)
            .iter()
            .find(|w| s.arena.len(w.cref) == 3)
            .expect("the ternary clause watches literal 1");
        let keep: Vec<Watch> = s
            .watches
            .bucket(code)
            .iter()
            .copied()
            .filter(|w| w.cref != entry.cref)
            .collect();
        s.watches.truncate(code, 0);
        for w in keep {
            s.watches.push(code, w);
        }
        let wrong = s.arena.lit(entry.cref, 2).uidx() ^ 1;
        s.watches.push(wrong, entry);
        let violation = s
            .check_invariants()
            .expect_err("misplaced watch undetected");
        assert_eq!(violation.component(), "watches");
    }

    #[test]
    fn trail_level_disagreement_is_caught() {
        let mut s = sample();
        // Hand-enqueue a level-0 literal, then corrupt its level.
        let l = lit(1);
        force_assign(&mut s, l);
        s.trail.push(l);
        s.qhead = s.trail.len();
        assert_eq!(s.check_invariants(), Ok(()));
        s.level[0] = 3;
        let violation = s.check_invariants().expect_err("level mismatch undetected");
        assert_eq!(violation.component(), "trail");
    }

    #[test]
    fn assigned_variable_off_trail_is_caught() {
        let mut s = sample();
        force_assign(&mut s, lit(3)); // assigned but never enqueued
        let violation = s
            .check_invariants()
            .expect_err("ghost assignment undetected");
        assert_eq!(violation.component(), "trail");
    }

    #[test]
    fn literal_value_mirror_drift_is_caught() {
        let mut s = sample();
        let l = lit(1);
        force_assign(&mut s, l);
        s.trail.push(l);
        s.qhead = s.trail.len();
        assert_eq!(s.check_invariants(), Ok(()));
        s.lit_vals[l.uidx()] = Lbool::False; // desync the mirror only
        let violation = s.check_invariants().expect_err("mirror drift undetected");
        assert_eq!(violation.component(), "trail");
    }

    #[test]
    fn stale_reason_is_caught() {
        let mut s = sample();
        s.reason[1] = 0; // unassigned variable with a reason clause
        let violation = s.check_invariants().expect_err("stale reason undetected");
        assert_eq!(violation.component(), "reason");
    }

    #[test]
    fn falsified_watched_pair_is_caught() {
        let mut s = sample();
        // Falsify both watched literals of the ternary clause by
        // hand-building a consistent level-0 trail, bypassing propagation.
        for l in [lit(-1), lit(-2)] {
            force_assign(&mut s, l);
            s.trail.push(l);
        }
        s.qhead = s.trail.len();
        let violation = s
            .check_invariants()
            .expect_err("missed conflict undetected");
        assert_eq!(violation.component(), "propagation");
    }

    #[test]
    fn deleted_clause_watches_are_tolerated() {
        let mut s = sample();
        let c = s.arena.refs().next().expect("sample has clauses");
        s.arena.mark_deleted(c);
        // Watch entries for the deleted clause linger; the propagation
        // loop drops them lazily, so the audit must accept them.
        assert_eq!(s.check_invariants(), Ok(()));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "SAT solver invariant violated")]
    fn assert_invariants_panics_on_corruption() {
        let mut s = sample();
        s.reason[0] = NO_REASON - 1;
        s.level[0] = 0;
        force_assign(&mut s, lit(1));
        s.trail.push(lit(1));
        s.qhead = s.trail.len();
        s.assert_invariants("in test");
    }
}
