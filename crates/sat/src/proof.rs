//! DRAT proof logging.
//!
//! When a [`ProofLogger`](crate::ProofLogger) is attached to a
//! [`Solver`](crate::Solver), every clause the solver derives (learnt
//! clauses, strengthened inputs, the final empty clause) and every clause
//! it discards (database reduction, satisfied/strengthened originals) is
//! emitted as a DRAT step. Together with the original clauses — exactly
//! those passed to `add_clause` — the emitted steps form a refutation
//! proof that an *independent* checker (the `hqs-proof` crate) can
//! validate. This module deliberately contains its own DRAT writers: the
//! solver side and the checker side share no serialisation code, so the
//! proof file is a true arms-length artifact.
//!
//! The loggers swallow I/O errors (a proof hook cannot abort conflict
//! analysis) but remember them; query [`ProofLogger::had_error`] before
//! trusting an emitted proof.

use hqs_base::Lit;
use std::cell::RefCell;
use std::io::{self, Write};
use std::rc::Rc;

/// Sink for the DRAT steps a [`Solver`](crate::Solver) emits.
///
/// Implementations must tolerate being called from the hot path: no
/// panics, no unbounded work. The clause slices are in solver-internal
/// order; DRAT semantics are order-insensitive.
pub trait ProofLogger {
    /// A clause was derived (is redundant w.r.t. the current formula).
    fn add_clause(&mut self, lits: &[Lit]);
    /// A clause was removed from the active formula.
    fn delete_clause(&mut self, lits: &[Lit]);
    /// `true` if an earlier emission failed and the proof is incomplete.
    fn had_error(&self) -> bool {
        false
    }
}

/// Logs DRAT steps in the text format (`1 -2 0`, deletions `d 1 -2 0`).
#[derive(Debug)]
pub struct TextDratLogger<W: Write> {
    out: W,
    error: bool,
}

impl<W: Write> TextDratLogger<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        TextDratLogger { out, error: false }
    }

    /// Unwraps the underlying writer.
    pub fn into_inner(self) -> W {
        self.out
    }

    fn step(&mut self, prefix: &str, lits: &[Lit]) {
        if self.error {
            return;
        }
        let mut line = String::with_capacity(prefix.len() + 7 * lits.len() + 2);
        line.push_str(prefix);
        for lit in lits {
            line.push_str(&lit.to_dimacs().to_string());
            line.push(' ');
        }
        line.push_str("0\n");
        if self.out.write_all(line.as_bytes()).is_err() {
            self.error = true;
        }
    }
}

impl<W: Write> ProofLogger for TextDratLogger<W> {
    fn add_clause(&mut self, lits: &[Lit]) {
        self.step("", lits);
    }

    fn delete_clause(&mut self, lits: &[Lit]) {
        self.step("d ", lits);
    }

    fn had_error(&self) -> bool {
        self.error
    }
}

/// Logs DRAT steps in the `drat-trim` binary format: a tag byte `a`/`d`,
/// the literals as 7-bit variable-length integers of `2·var + sign`, and
/// a `0x00` terminator per step.
#[derive(Debug)]
pub struct BinaryDratLogger<W: Write> {
    out: W,
    error: bool,
}

impl<W: Write> BinaryDratLogger<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        BinaryDratLogger { out, error: false }
    }

    /// Unwraps the underlying writer.
    pub fn into_inner(self) -> W {
        self.out
    }

    fn step(&mut self, tag: u8, lits: &[Lit]) {
        if self.error {
            return;
        }
        let mut bytes = Vec::with_capacity(2 + 3 * lits.len());
        bytes.push(tag);
        for lit in lits {
            let dimacs = lit.to_dimacs();
            let mut code = 2 * dimacs.unsigned_abs() + u64::from(dimacs < 0);
            while code >= 0x80 {
                bytes.push((code & 0x7f) as u8 | 0x80);
                code >>= 7;
            }
            bytes.push(code as u8);
        }
        bytes.push(0);
        if self.out.write_all(&bytes).is_err() {
            self.error = true;
        }
    }
}

impl<W: Write> ProofLogger for BinaryDratLogger<W> {
    fn add_clause(&mut self, lits: &[Lit]) {
        self.step(b'a', lits);
    }

    fn delete_clause(&mut self, lits: &[Lit]) {
        self.step(b'd', lits);
    }

    fn had_error(&self) -> bool {
        self.error
    }
}

/// A shared in-memory byte sink.
///
/// [`SolverBuilder::proof_logger`](crate::SolverBuilder::proof_logger)
/// takes a boxed trait object, which cannot be downcast to recover the
/// bytes afterwards; a `ProofBuffer` solves this by being cheaply
/// cloneable with shared contents — keep one clone, hand the other to
/// the logger.
///
/// # Examples
///
/// ```
/// use hqs_sat::{ProofBuffer, Solver, TextDratLogger};
/// use hqs_base::Lit;
///
/// let buffer = ProofBuffer::new();
/// let mut solver = Solver::builder()
///     .proof_logger(Box::new(TextDratLogger::new(buffer.clone())))
///     .build()
///     .unwrap();
/// let x = solver.new_var();
/// solver.add_clause([Lit::positive(x)]);
/// solver.add_clause([Lit::negative(x)]);
/// // ¬x strengthens to the empty clause; the original is then deleted.
/// assert_eq!(String::from_utf8(buffer.contents()).unwrap(), "0\nd -1 0\n");
/// ```
#[derive(Clone, Debug, Default)]
pub struct ProofBuffer {
    bytes: Rc<RefCell<Vec<u8>>>,
}

impl ProofBuffer {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        ProofBuffer::default()
    }

    /// Copies the accumulated bytes out.
    #[must_use]
    pub fn contents(&self) -> Vec<u8> {
        self.bytes.borrow().clone()
    }

    /// Number of bytes accumulated.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.borrow().len()
    }

    /// `true` if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.borrow().is_empty()
    }
}

impl Write for ProofBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: i64) -> Lit {
        Lit::from_dimacs(v).unwrap()
    }

    #[test]
    fn text_logger_format() {
        let mut logger = TextDratLogger::new(Vec::new());
        logger.add_clause(&[lit(1), lit(-2)]);
        logger.delete_clause(&[lit(3)]);
        logger.add_clause(&[]);
        assert!(!logger.had_error());
        let text = String::from_utf8(logger.into_inner()).unwrap();
        assert_eq!(text, "1 -2 0\nd 3 0\n0\n");
    }

    #[test]
    fn binary_logger_format() {
        let mut logger = BinaryDratLogger::new(Vec::new());
        logger.add_clause(&[lit(63)]);
        logger.delete_clause(&[lit(-1)]);
        assert_eq!(
            logger.into_inner(),
            vec![b'a', 0x7e, 0x00, b'd', 0x03, 0x00]
        );
    }

    #[test]
    fn proof_buffer_shares_contents() {
        let buffer = ProofBuffer::new();
        let mut logger = TextDratLogger::new(buffer.clone());
        logger.add_clause(&[lit(7)]);
        assert_eq!(buffer.contents(), b"7 0\n");
        assert_eq!(buffer.len(), 4);
        assert!(!buffer.is_empty());
    }

    #[test]
    fn failing_writer_is_remembered() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("broken pipe"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut logger = TextDratLogger::new(Broken);
        logger.add_clause(&[lit(1)]);
        assert!(logger.had_error());
    }
}
