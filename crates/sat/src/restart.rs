//! The restart state machine: Luby, Glucose-style EMA, and the hybrid
//! of the two.
//!
//! In [`RestartMode::Ema`], the scheduler keeps a fast (α = 1/32) and a
//! slow (α = 1/4096) exponential moving average of conflict LBDs and
//! asks for a restart when `fast > 1.25 · slow` — the search is
//! currently producing markedly worse clauses than its long-run norm,
//! so a fresh descent is likely cheaper than pushing on.
//!
//! [`RestartMode::Hybrid`] layers a Luby safety net underneath: on
//! conflict-starved stretches (typical near a satisfying assignment)
//! the EMAs go quiet and pure-EMA would never restart, so once the
//! conflict count since the last restart exceeds four pending Luby
//! intervals the scheduler falls back to Luby until the EMA trigger
//! fires again. Each direction change is one `mode switch`, surfaced in
//! `SolverStats::restart_mode_switches` and the `sat_restart_switches`
//! metric.

use crate::config::RestartMode;
use crate::luby::Luby;

/// Minimum conflicts between EMA-triggered restarts, and the warm-up
/// length before the EMAs are trusted at all.
const EMA_MIN_INTERVAL: u64 = 50;
/// `fast > RATIO · slow` triggers an EMA restart.
const EMA_RATIO: f64 = 1.25;
/// Hybrid falls back to Luby once `conflicts_since` exceeds this many
/// Luby intervals without an EMA trigger.
const HYBRID_PATIENCE: u64 = 4;

pub(crate) struct RestartSched {
    mode: RestartMode,
    luby: Luby,
    interval: u64,
    conflicts_since: u64,
    conflicts_total: u64,
    fast: f64,
    slow: f64,
    in_luby_fallback: bool,
    switches: u64,
}

impl RestartSched {
    pub(crate) fn new(mode: RestartMode) -> Self {
        let mut luby = Luby::new(100);
        let interval = luby.next_interval();
        RestartSched {
            mode,
            luby,
            interval,
            conflicts_since: 0,
            conflicts_total: 0,
            fast: 0.0,
            slow: 0.0,
            in_luby_fallback: false,
            switches: 0,
        }
    }

    /// Feeds one conflict's LBD into the moving averages.
    pub(crate) fn on_conflict(&mut self, lbd: u32) {
        self.conflicts_since += 1;
        self.conflicts_total += 1;
        let lbd = f64::from(lbd);
        if self.conflicts_total == 1 {
            // Seed both averages with the first observation; starting
            // from 0.0 would leave the slow EMA near zero for thousands
            // of conflicts and make the fast/slow ratio fire spuriously.
            self.fast = lbd;
            self.slow = lbd;
        } else {
            self.fast += (lbd - self.fast) / 32.0;
            self.slow += (lbd - self.slow) / 4096.0;
        }
    }

    fn ema_fires(&self) -> bool {
        self.conflicts_total > EMA_MIN_INTERVAL
            && self.conflicts_since >= EMA_MIN_INTERVAL
            && self.fast > EMA_RATIO * self.slow
    }

    /// `true` when the current policy asks for a restart. Call
    /// [`on_restart`](Self::on_restart) when acting on it.
    pub(crate) fn should_restart(&mut self) -> bool {
        match self.mode {
            RestartMode::Luby => self.conflicts_since >= self.interval,
            RestartMode::Ema => self.ema_fires(),
            RestartMode::Hybrid => {
                if self.ema_fires() {
                    if self.in_luby_fallback {
                        self.in_luby_fallback = false;
                        self.switches += 1;
                    }
                    return true;
                }
                if self.conflicts_since >= HYBRID_PATIENCE * self.interval {
                    if !self.in_luby_fallback {
                        self.in_luby_fallback = true;
                        self.switches += 1;
                    }
                    return true;
                }
                false
            }
        }
    }

    /// Acknowledges a restart: resets the window and advances Luby.
    pub(crate) fn on_restart(&mut self) {
        self.conflicts_since = 0;
        self.interval = self.luby.next_interval();
    }

    /// Hybrid EMA↔Luby direction changes so far.
    pub(crate) fn switches(&self) -> u64 {
        self.switches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_mode_restarts_at_fixed_intervals() {
        let mut sched = RestartSched::new(RestartMode::Luby);
        for _ in 0..99 {
            sched.on_conflict(5);
            assert!(!sched.should_restart());
        }
        sched.on_conflict(5);
        assert!(sched.should_restart());
        sched.on_restart();
        assert!(!sched.should_restart());
        assert_eq!(sched.switches(), 0);
    }

    #[test]
    fn ema_mode_fires_on_lbd_degradation() {
        let mut sched = RestartSched::new(RestartMode::Ema);
        // Long calm stretch of good (low-LBD) conflicts: no restart.
        for _ in 0..200 {
            sched.on_conflict(2);
        }
        assert!(!sched.should_restart());
        // A burst of terrible clauses drags the fast EMA up.
        for _ in 0..100 {
            sched.on_conflict(40);
        }
        assert!(sched.should_restart());
        sched.on_restart();
        assert_eq!(sched.switches(), 0);
    }

    #[test]
    fn ema_mode_never_fires_during_warmup() {
        let mut sched = RestartSched::new(RestartMode::Ema);
        for _ in 0..EMA_MIN_INTERVAL {
            sched.on_conflict(50);
            assert!(!sched.should_restart());
        }
    }

    #[test]
    fn hybrid_falls_back_to_luby_and_counts_switches() {
        let mut sched = RestartSched::new(RestartMode::Hybrid);
        // Steady low LBDs starve the EMA trigger; after enough patience
        // the Luby fallback kicks in and is counted as a switch.
        let mut fired_at = None;
        for i in 0..1000 {
            sched.on_conflict(2);
            if sched.should_restart() {
                fired_at = Some(i);
                break;
            }
        }
        assert_eq!(fired_at, Some(HYBRID_PATIENCE * 100 - 1));
        assert_eq!(sched.switches(), 1);
        sched.on_restart();
        // An LBD burst brings EMA back: second switch.
        for _ in 0..100 {
            sched.on_conflict(45);
        }
        assert!(sched.should_restart());
        assert_eq!(sched.switches(), 2);
    }
}
