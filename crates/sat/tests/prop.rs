//! Property-based tests: the CDCL solver against the reference DPLL
//! oracle, model validity, assumption semantics and incrementality.

use hqs_base::{Lit, TruthValue, Var};
use hqs_cnf::{Clause, Cnf};
use hqs_sat::{reference, SolveResult, Solver};
use proptest::prelude::*;

fn arb_cnf(max_var: u32, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    prop::collection::vec(
        prop::collection::vec(
            (0..max_var, any::<bool>()).prop_map(|(v, n)| Lit::new(Var::new(v), n)),
            1..4,
        ),
        0..max_clauses,
    )
    .prop_map(move |clauses| {
        let mut cnf = Cnf::new(max_var);
        for lits in clauses {
            cnf.add_clause(Clause::from_lits(lits));
        }
        cnf
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// CDCL and DPLL agree on satisfiability; CDCL models really satisfy.
    #[test]
    fn cdcl_agrees_with_dpll(cnf in arb_cnf(8, 24)) {
        let expected = reference::is_satisfiable(&cnf);
        let mut solver = Solver::new();
        solver.add_cnf(&cnf);
        match solver.solve() {
            SolveResult::Sat => {
                prop_assert!(expected);
                let model = solver.model();
                prop_assert_eq!(cnf.evaluate(&model), TruthValue::True);
            }
            SolveResult::Unsat => prop_assert!(!expected),
            SolveResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }

    /// Solving under assumptions equals solving the formula with the
    /// assumptions added as unit clauses.
    #[test]
    fn assumptions_equal_units(cnf in arb_cnf(6, 16),
                               bits in prop::collection::vec(any::<Option<bool>>(), 6)) {
        let assumptions: Vec<Lit> = bits
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.map(|b| Lit::new(Var::new(i as u32), !b)))
            .collect();
        let mut strengthened = cnf.clone();
        for &a in &assumptions {
            strengthened.add_clause(Clause::unit(a));
        }
        let expected = reference::is_satisfiable(&strengthened);
        let mut solver = Solver::new();
        solver.add_cnf(&cnf);
        let result = solver.solve_with_assumptions(&assumptions);
        prop_assert_eq!(result == SolveResult::Sat, expected);
        // And the solver stays reusable afterwards:
        let alone = reference::is_satisfiable(&cnf);
        prop_assert_eq!(solver.solve() == SolveResult::Sat, alone);
    }

    /// Failed assumptions are a genuine contradiction witness: asserting
    /// just the failed subset is already unsatisfiable.
    #[test]
    fn failed_assumptions_form_a_core(cnf in arb_cnf(6, 16),
                                      bits in prop::collection::vec(any::<bool>(), 6)) {
        let assumptions: Vec<Lit> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| Lit::new(Var::new(i as u32), !b))
            .collect();
        let mut solver = Solver::new();
        solver.add_cnf(&cnf);
        if solver.solve_with_assumptions(&assumptions) == SolveResult::Unsat {
            let failed: Vec<Lit> = solver.failed_assumptions().to_vec();
            for lit in &failed {
                prop_assert!(assumptions.contains(lit), "{lit:?} not an assumption");
            }
            let mut check = cnf.clone();
            for &lit in &failed {
                check.add_clause(Clause::unit(lit));
            }
            prop_assert!(!reference::is_satisfiable(&check),
                "failed set {failed:?} is not contradictory");
        }
    }

    /// Incremental use: clause-by-clause addition gives the same verdicts
    /// as monolithic solving at every step.
    #[test]
    fn incremental_matches_monolithic(cnf in arb_cnf(6, 10)) {
        let mut solver = Solver::new();
        let mut so_far = Cnf::new(cnf.num_vars());
        for clause in cnf.clauses() {
            solver.add_clause(clause.lits().iter().copied());
            so_far.add_clause(clause.clone());
            let expected = reference::is_satisfiable(&so_far);
            prop_assert_eq!(solver.solve() == SolveResult::Sat, expected);
        }
    }
}
