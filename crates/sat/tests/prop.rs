//! Randomised tests: the CDCL solver against the reference DPLL oracle,
//! model validity, assumption semantics and incrementality.

use hqs_base::{Lit, Rng, TruthValue, Var};
use hqs_cnf::{Clause, Cnf};
use hqs_sat::{reference, RestartMode, SatConfig, SolveResult, Solver};

fn random_cnf(rng: &mut Rng, max_var: u32, max_clauses: usize) -> Cnf {
    let mut cnf = Cnf::new(max_var);
    for _ in 0..rng.gen_range(0..max_clauses) {
        let len = rng.gen_range(1..4usize);
        let lits =
            (0..len).map(|_| Lit::new(Var::new(rng.gen_range(0..max_var)), rng.gen_bool(0.5)));
        cnf.add_clause(Clause::from_lits(lits));
    }
    cnf
}

/// CDCL and DPLL agree on satisfiability; CDCL models really satisfy.
#[test]
fn cdcl_agrees_with_dpll() {
    for seed in 0..256u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let cnf = random_cnf(&mut rng, 8, 24);
        let expected = reference::is_satisfiable(&cnf);
        let mut solver = Solver::new();
        solver.add_cnf(&cnf);
        match solver.solve(&[]) {
            SolveResult::Sat => {
                assert!(expected, "seed {seed}: CDCL sat, DPLL unsat");
                let model = solver.model();
                assert_eq!(cnf.evaluate(&model), TruthValue::True, "seed {seed}");
            }
            SolveResult::Unsat => assert!(!expected, "seed {seed}: CDCL unsat, DPLL sat"),
            SolveResult::Unknown => panic!("seed {seed}: no budget was set"),
        }
    }
}

/// Every point of the search-policy matrix — restart mode crossed with
/// chronological backtracking — agrees with the DPLL oracle, and `Sat`
/// verdicts come with genuine models. The chrono threshold is forced
/// down so the chronological path actually runs on these tiny formulas.
#[test]
fn every_search_policy_agrees_with_dpll() {
    let mut configs = Vec::new();
    for mode in [RestartMode::Luby, RestartMode::Ema, RestartMode::Hybrid] {
        for chrono in [false, true] {
            configs.push(
                SatConfig::builder()
                    .restart_mode(mode)
                    .chrono_backtrack(chrono)
                    .chrono_threshold(1)
                    .build()
                    .expect("valid test config"),
            );
        }
    }
    for seed in 0..96u64 {
        let mut rng = Rng::seed_from_u64(0x4000 + seed);
        let cnf = random_cnf(&mut rng, 8, 24);
        for config in &configs {
            assert!(
                reference::agrees_with_reference(&cnf, config),
                "seed {seed}: policy {:?}/chrono={} disagrees with the oracle",
                config.restart_mode,
                config.chrono_backtrack
            );
        }
    }
}

/// Solving under assumptions equals solving the formula with the
/// assumptions added as unit clauses.
#[test]
fn assumptions_equal_units() {
    for seed in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x1000 + seed);
        let cnf = random_cnf(&mut rng, 6, 16);
        let mut assumptions: Vec<Lit> = Vec::new();
        for i in 0..6u32 {
            if rng.gen_bool(0.5) {
                assumptions.push(Lit::new(Var::new(i), rng.gen_bool(0.5)));
            }
        }
        let mut strengthened = cnf.clone();
        for &a in &assumptions {
            strengthened.add_clause(Clause::unit(a));
        }
        let expected = reference::is_satisfiable(&strengthened);
        let mut solver = Solver::new();
        solver.add_cnf(&cnf);
        let result = solver.solve(&assumptions);
        assert_eq!(result == SolveResult::Sat, expected, "seed {seed}");
        // And the solver stays reusable afterwards:
        let alone = reference::is_satisfiable(&cnf);
        assert_eq!(solver.solve(&[]) == SolveResult::Sat, alone, "seed {seed}");
    }
}

/// Failed assumptions are a genuine contradiction witness: asserting
/// just the failed subset is already unsatisfiable.
#[test]
fn failed_assumptions_form_a_core() {
    for seed in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x2000 + seed);
        let cnf = random_cnf(&mut rng, 6, 16);
        let assumptions: Vec<Lit> = (0..6u32)
            .map(|i| Lit::new(Var::new(i), rng.gen_bool(0.5)))
            .collect();
        let mut solver = Solver::new();
        solver.add_cnf(&cnf);
        if solver.solve(&assumptions) == SolveResult::Unsat {
            let failed: Vec<Lit> = solver.failed_assumptions().to_vec();
            for lit in &failed {
                assert!(
                    assumptions.contains(lit),
                    "seed {seed}: {lit:?} not an assumption"
                );
            }
            let mut check = cnf.clone();
            for &lit in &failed {
                check.add_clause(Clause::unit(lit));
            }
            assert!(
                !reference::is_satisfiable(&check),
                "seed {seed}: failed set {failed:?} is not contradictory"
            );
        }
    }
}

/// Incremental use: clause-by-clause addition gives the same verdicts
/// as monolithic solving at every step.
#[test]
fn incremental_matches_monolithic() {
    for seed in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0x3000 + seed);
        let cnf = random_cnf(&mut rng, 6, 10);
        let mut solver = Solver::new();
        let mut so_far = Cnf::new(cnf.num_vars());
        for clause in cnf.clauses() {
            solver.add_clause(clause.lits().iter().copied());
            so_far.add_clause(clause.clone());
            let expected = reference::is_satisfiable(&so_far);
            assert_eq!(
                solver.solve(&[]) == SolveResult::Sat,
                expected,
                "seed {seed}"
            );
        }
    }
}
