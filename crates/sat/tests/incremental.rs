//! Incremental-session semantics: warm-state reuse across
//! [`Solver::solve`] queries, failed-assumption soundness, learnt-tier
//! retention, and DRAT proofs that span a whole session.
//!
//! These are the substrate guarantees the `hqs serve` architecture (and
//! the query-hungry DQBF backends it anticipates) rely on.

use hqs_base::Lit;
use hqs_cnf::Cnf;
use hqs_proof::{check_proof, parse_text_drat, CheckMode};
use hqs_sat::{ProofBuffer, SatConfig, SolveResult, Solver, TextDratLogger};

fn lit(v: i64) -> Lit {
    Lit::from_dimacs(v).unwrap()
}

/// Pigeonhole clauses over DIMACS variables `base+1 ..`: pigeon `i` in
/// hole `j` is variable `base + (i-1)*holes + j`.
fn pigeonhole(pigeons: i64, holes: i64, base: i64) -> Vec<Vec<i64>> {
    let var = |p: i64, h: i64| base + (p - 1) * holes + h;
    let mut clauses = Vec::new();
    for p in 1..=pigeons {
        clauses.push((1..=holes).map(|h| var(p, h)).collect());
    }
    for h in 1..=holes {
        for p1 in 1..=pigeons {
            for p2 in (p1 + 1)..=pigeons {
                clauses.push(vec![-var(p1, h), -var(p2, h)]);
            }
        }
    }
    clauses
}

/// A handful of extra binary clauses over the pigeonhole variables — the
/// "mutation" applied between the warm queries. They are consequences of
/// the at-most-one constraints' shape, keep the instance UNSAT, and
/// change the clause database enough that the second query is not the
/// byte-identical first one.
fn mutation(holes: i64, base: i64) -> Vec<Vec<i64>> {
    let var = |p: i64, h: i64| base + (p - 1) * holes + h;
    (1..=holes)
        .map(|h| vec![-var(1, h), -var(2, h), -var(3, h)])
        .collect()
}

/// The acceptance-criterion test: a warm second solve of a mutated
/// instance spends fewer conflicts than a cold solver on the same
/// mutated instance, because the learned clauses of the first query are
/// retained and reused.
#[test]
fn warm_second_solve_of_mutated_instance_beats_cold() {
    // Selector variable 31 (DIMACS) guards every clause so the UNSAT
    // verdict is assumption-scoped and the session stays alive.
    let selector = 31i64;
    let base = pigeonhole(6, 5, 0);

    let mut warm = Solver::new();
    for c in &base {
        warm.add_clause(c.iter().map(|&v| lit(v)).chain([lit(-selector)]));
    }
    assert_eq!(warm.solve(&[lit(selector)]), SolveResult::Unsat);
    let first_query_conflicts = warm.stats().conflicts;
    assert!(first_query_conflicts > 0, "PHP(6,5) needs real search");

    // Mutate the instance between queries, then re-solve warm.
    for c in mutation(5, 0) {
        warm.add_clause(c.iter().map(|&v| lit(v)).chain([lit(-selector)]));
    }
    assert_eq!(warm.solve(&[lit(selector)]), SolveResult::Unsat);
    let warm_conflicts = warm.stats().conflicts - first_query_conflicts;

    // Cold solver on exactly the mutated instance.
    let mut cold = Solver::new();
    for c in base.iter().chain(mutation(5, 0).iter()) {
        cold.add_clause(c.iter().map(|&v| lit(v)).chain([lit(-selector)]));
    }
    assert_eq!(cold.solve(&[lit(selector)]), SolveResult::Unsat);
    let cold_conflicts = cold.stats().conflicts;

    assert!(
        warm_conflicts < cold_conflicts,
        "warm retry should reuse learned clauses: warm {warm_conflicts} vs cold {cold_conflicts}"
    );
}

#[test]
fn failed_assumption_set_is_sound_and_excludes_irrelevant_assumptions() {
    // (¬a ∨ ¬b) with a=1, b=2; c=3 and d=4 are untouched by any clause.
    let mut s = Solver::new();
    s.add_clause([lit(-1), lit(-2)]);
    let assumptions = [lit(3), lit(1), lit(2), lit(4)];
    assert_eq!(s.solve(&assumptions), SolveResult::Unsat);
    let failed = s.failed_assumptions().to_vec();
    assert!(!failed.is_empty());
    // Every failed literal is one of the assumptions (soundness of the
    // reported set as a *subset*).
    assert!(failed.iter().all(|l| assumptions.contains(l)), "{failed:?}");
    // Minimal-ish: assumptions over variables no clause mentions cannot
    // be part of any failed core.
    assert!(!failed.contains(&lit(3)), "{failed:?}");
    assert!(!failed.contains(&lit(4)), "{failed:?}");
    // Soundness of the core itself: the failed subset alone is already
    // contradictory.
    assert_eq!(s.solve(&failed), SolveResult::Unsat);
    // And the session survives: dropping the core gives SAT.
    assert_eq!(s.solve(&[lit(3), lit(4)]), SolveResult::Sat);
}

#[test]
fn assumptions_round_trip_polarity_and_retention() {
    let mut s = Solver::new();
    s.add_clause([lit(1), lit(2)]);
    assert_eq!(s.solve(&[lit(-1)]), SolveResult::Sat);
    assert_eq!(s.model_value(lit(2).var()), Some(true));
    assert_eq!(s.solve(&[lit(-2)]), SolveResult::Sat);
    assert_eq!(s.model_value(lit(1).var()), Some(true));
    // Clauses added between queries take effect.
    s.add_clause([lit(-1)]);
    assert_eq!(s.solve(&[lit(-2)]), SolveResult::Unsat);
    assert_eq!(s.solve(&[]), SolveResult::Sat);
}

/// DRAT emitted across a whole incremental session — queries under
/// assumptions, clause additions in between, database reduction enabled —
/// still passes the independent checker in `hqs-proof` against the union
/// of every clause ever added.
#[test]
fn drat_from_incremental_session_passes_the_checker() {
    let mut cnf = Cnf::new(0);
    let buffer = ProofBuffer::new();
    // Zero tier cutoffs plus a tiny local cap force database reduction
    // to fire mid-session, so its deletions land in the proof stream too.
    let config = SatConfig::builder()
        .core_lbd_cutoff(0)
        .tier2_lbd_cutoff(0)
        .local_cap(8)
        .local_cap_growth(1)
        .build()
        .expect("valid");
    let mut solver = Solver::builder()
        .config(config)
        .proof_logger(Box::new(TextDratLogger::new(buffer.clone())))
        .build()
        .expect("valid");

    let add = |solver: &mut Solver, cnf: &mut Cnf, c: &[i64]| {
        let lits: Vec<Lit> = c.iter().map(|&v| lit(v)).collect();
        for &l in &lits {
            cnf.ensure_num_vars(l.var().index() + 1);
        }
        cnf.add_lits(lits.iter().copied());
        solver.add_clause(lits);
    };

    // Query 1: PHP(5,4) under a selector assumption — UNSAT, learns.
    let selector = 61i64;
    for c in pigeonhole(5, 4, 0) {
        let mut guarded = c.clone();
        guarded.push(-selector);
        add(&mut solver, &mut cnf, &guarded);
    }
    assert_eq!(solver.solve(&[lit(selector)]), SolveResult::Unsat);
    // Query 2: without the selector the formula is SAT.
    assert_eq!(solver.solve(&[]), SolveResult::Sat);
    // Mutation: a second, unguarded pigeonhole over fresh variables
    // closes the formula outright.
    for c in pigeonhole(4, 3, 70) {
        add(&mut solver, &mut cnf, &c);
    }
    assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    assert!(!solver.proof_had_error());

    let proof = parse_text_drat(std::str::from_utf8(&buffer.contents()).unwrap()).unwrap();
    assert!(proof.additions() > 0);
    check_proof(&cnf, &proof, CheckMode::Forward).unwrap();
    check_proof(&cnf, &proof, CheckMode::Backward).unwrap();
}
