//! End-to-end proof round trips: DRAT emitted by the CDCL solver in this
//! crate, checked by the independent checker in `hqs-proof`.
//!
//! The two crates share no propagation or serialisation code — the byte
//! stream produced by the logger is the only bridge — so these tests
//! exercise the full certification contract.

use hqs_base::Lit;
use hqs_cnf::Cnf;
use hqs_proof::{check_proof, parse_binary_drat, parse_text_drat, CheckMode, Proof, ProofStep};
use hqs_sat::{BinaryDratLogger, ProofBuffer, SatConfig, SolveResult, Solver, TextDratLogger};

fn lit(v: i64) -> Lit {
    Lit::from_dimacs(v).unwrap()
}

/// Builds the CNF (for the checker) and a proof-logging solver (text
/// format) loaded with the same clauses.
fn logged_solver(clauses: &[&[i64]]) -> (Cnf, Solver, ProofBuffer) {
    let mut cnf = Cnf::new(0);
    let buffer = ProofBuffer::new();
    let mut solver = Solver::builder()
        .proof_logger(Box::new(TextDratLogger::new(buffer.clone())))
        .build()
        .expect("valid");
    for c in clauses {
        let lits: Vec<Lit> = c.iter().map(|&v| lit(v)).collect();
        for &l in &lits {
            cnf.ensure_num_vars(l.var().index() + 1);
        }
        cnf.add_lits(lits.iter().copied());
        solver.add_clause(lits);
    }
    (cnf, solver, buffer)
}

fn pigeonhole(pigeons: i64, holes: i64) -> Vec<Vec<i64>> {
    let var = |p: i64, h: i64| (p - 1) * holes + h;
    let mut clauses = Vec::new();
    for p in 1..=pigeons {
        clauses.push((1..=holes).map(|h| var(p, h)).collect());
    }
    for h in 1..=holes {
        for p1 in 1..=pigeons {
            for p2 in (p1 + 1)..=pigeons {
                clauses.push(vec![-var(p1, h), -var(p2, h)]);
            }
        }
    }
    clauses
}

#[test]
fn hand_built_unsat_proof_checks() {
    // (a∨b)(¬a∨b)(a∨¬b)(¬a∨¬b): the smallest real CDCL refutation.
    let (cnf, mut solver, buffer) = logged_solver(&[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]);
    assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    assert!(!solver.proof_had_error());
    let proof = parse_text_drat(std::str::from_utf8(&buffer.contents()).unwrap()).unwrap();
    assert!(proof.additions() > 0);
    check_proof(&cnf, &proof, CheckMode::Forward).unwrap();
    let report = check_proof(&cnf, &proof, CheckMode::Backward).unwrap();
    assert!(report.core.is_some());
}

#[test]
fn pigeonhole_proof_checks_and_has_a_full_core() {
    let clauses = pigeonhole(4, 3);
    let refs: Vec<&[i64]> = clauses.iter().map(Vec::as_slice).collect();
    let (cnf, mut solver, buffer) = logged_solver(&refs);
    assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    let proof = parse_text_drat(std::str::from_utf8(&buffer.contents()).unwrap()).unwrap();
    check_proof(&cnf, &proof, CheckMode::Forward).unwrap();
    let report = check_proof(&cnf, &proof, CheckMode::Backward).unwrap();
    // CDCL emits pure-RUP proofs: the RAT fallback must never fire.
    assert_eq!(report.rat_steps, 0);
    assert!(report.core.is_some());
}

#[test]
fn strengthened_and_satisfied_clauses_emit_deletions() {
    // Unit 1 makes (−1 2 3) strengthen to (2 3) and satisfies (1 4).
    let (cnf, mut solver, buffer) = logged_solver(&[&[1], &[-1, 2, 3], &[1, 4], &[-2], &[-3]]);
    assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    let text = String::from_utf8(buffer.contents()).unwrap();
    let proof = parse_text_drat(&text).unwrap();
    assert!(
        proof.deletions() >= 2,
        "expected deletions for the strengthened and the satisfied clause:\n{text}"
    );
    check_proof(&cnf, &proof, CheckMode::Forward).unwrap();
    check_proof(&cnf, &proof, CheckMode::Backward).unwrap();
}

#[test]
fn conflict_during_clause_addition_emits_the_empty_clause() {
    // Adding -2 after 1, (−1 2) closes the formula by unit propagation
    // inside add_clause; the proof must still end in the empty clause.
    let (cnf, mut solver, buffer) = logged_solver(&[&[1], &[-1, 2], &[-2]]);
    assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    let proof = parse_text_drat(std::str::from_utf8(&buffer.contents()).unwrap()).unwrap();
    assert!(proof
        .steps
        .iter()
        .any(|s| matches!(s, ProofStep::Add(c) if c.is_empty())));
    check_proof(&cnf, &proof, CheckMode::Forward).unwrap();
    check_proof(&cnf, &proof, CheckMode::Backward).unwrap();
}

#[test]
fn aggressive_database_reduction_keeps_the_proof_valid() {
    // Force reduce_db to fire constantly; the emitted deletions must not
    // break checkability of the final refutation.
    let clauses = pigeonhole(6, 5);
    let refs: Vec<&[i64]> = clauses.iter().map(Vec::as_slice).collect();
    let mut cnf = Cnf::new(0);
    let buffer = ProofBuffer::new();
    // Zero tier cutoffs push every learnt into the Local tier, so the
    // tiny cap actually bites on a low-LBD instance like pigeonhole.
    let config = SatConfig::builder()
        .core_lbd_cutoff(0)
        .tier2_lbd_cutoff(0)
        .local_cap(8)
        .local_cap_growth(1)
        .build()
        .expect("valid");
    let mut solver = Solver::builder()
        .config(config)
        .proof_logger(Box::new(TextDratLogger::new(buffer.clone())))
        .build()
        .expect("valid");
    for c in &refs {
        let lits: Vec<Lit> = c.iter().map(|&v| lit(v)).collect();
        for &l in &lits {
            cnf.ensure_num_vars(l.var().index() + 1);
        }
        cnf.add_lits(lits.iter().copied());
        solver.add_clause(lits);
    }
    assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    assert!(solver.stats().deleted_clauses > 0, "reduce_db never fired");
    let proof = parse_text_drat(std::str::from_utf8(&buffer.contents()).unwrap()).unwrap();
    assert!(proof.deletions() > 0);
    check_proof(&cnf, &proof, CheckMode::Forward).unwrap();
    check_proof(&cnf, &proof, CheckMode::Backward).unwrap();
}

#[test]
fn binary_proof_round_trips_through_the_checker() {
    let clauses = pigeonhole(4, 3);
    let refs: Vec<&[i64]> = clauses.iter().map(Vec::as_slice).collect();
    let mut cnf = Cnf::new(0);
    let buffer = ProofBuffer::new();
    let mut solver = Solver::builder()
        .proof_logger(Box::new(BinaryDratLogger::new(buffer.clone())))
        .build()
        .expect("valid");
    for c in &refs {
        let lits: Vec<Lit> = c.iter().map(|&v| lit(v)).collect();
        for &l in &lits {
            cnf.ensure_num_vars(l.var().index() + 1);
        }
        cnf.add_lits(lits.iter().copied());
        solver.add_clause(lits);
    }
    assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    let proof = parse_binary_drat(&buffer.contents()).unwrap();
    assert!(proof.additions() > 0);
    check_proof(&cnf, &proof, CheckMode::Forward).unwrap();
    check_proof(&cnf, &proof, CheckMode::Backward).unwrap();
}

#[test]
fn corrupted_proof_is_rejected() {
    let clauses = pigeonhole(4, 3);
    let refs: Vec<&[i64]> = clauses.iter().map(Vec::as_slice).collect();
    let (cnf, mut solver, buffer) = logged_solver(&refs);
    assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    let proof = parse_text_drat(std::str::from_utf8(&buffer.contents()).unwrap()).unwrap();
    // Strip every addition: the gutted proof must not check (pigeonhole
    // needs real lemmas — plain unit propagation cannot refute it).
    let gutted = Proof {
        steps: proof
            .steps
            .iter()
            .filter(|s| matches!(s, ProofStep::Delete(_)))
            .cloned()
            .collect(),
    };
    assert!(check_proof(&cnf, &gutted, CheckMode::Forward).is_err());
    assert!(check_proof(&cnf, &gutted, CheckMode::Backward).is_err());
    // Flipping a literal of a mid-proof lemma must also be caught.
    let mut tampered = proof.clone();
    let target = tampered
        .steps
        .iter()
        .position(|s| matches!(s, ProofStep::Add(c) if c.len() >= 2))
        .expect("a non-trivial lemma exists");
    if let ProofStep::Add(c) = &mut tampered.steps[target] {
        c[0] = !c[0];
    }
    let forward = check_proof(&cnf, &tampered, CheckMode::Forward);
    let backward = check_proof(&cnf, &tampered, CheckMode::Backward);
    assert!(
        forward.is_err() || backward.is_err(),
        "tampered lemma accepted by both modes"
    );
}

#[test]
fn sat_outcome_leaves_proof_without_contradiction() {
    let (cnf, mut solver, buffer) = logged_solver(&[&[1, 2], &[-1, 2]]);
    assert_eq!(solver.solve(&[]), SolveResult::Sat);
    let proof = parse_text_drat(std::str::from_utf8(&buffer.contents()).unwrap()).unwrap();
    assert!(check_proof(&cnf, &proof, CheckMode::Forward).is_err());
}
