//! Arena-compaction soundness: clause-database reduction and arena
//! garbage collection interleaved with incremental queries must be
//! invisible — verdicts, models, failed-assumption cores and DRAT
//! checkability are all preserved across compactions.
//!
//! Every test runs a GC-hostile configuration: zero tier cutoffs push
//! all learnt clauses into the Local tier, and a tiny `local_cap` keeps
//! `reduce_db` (and therefore arena compaction) firing constantly.

use hqs_base::{Lit, Rng, TruthValue, Var};
use hqs_cnf::{Clause, Cnf};
use hqs_proof::{check_proof, parse_text_drat, CheckMode};
use hqs_sat::{reference, ProofBuffer, SatConfig, SolveResult, Solver, TextDratLogger};

fn lit(v: i64) -> Lit {
    Lit::from_dimacs(v).unwrap()
}

/// Every learnt goes Local; the cap trips after a handful of clauses.
fn gc_config() -> SatConfig {
    SatConfig::builder()
        .core_lbd_cutoff(0)
        .tier2_lbd_cutoff(0)
        .local_cap(8)
        .local_cap_growth(1)
        .build()
        .expect("valid")
}

/// Pigeonhole clauses over DIMACS variables `base+1 ..`: pigeon `i` in
/// hole `j` is variable `base + (i-1)*holes + j`.
fn pigeonhole(pigeons: i64, holes: i64, base: i64) -> Vec<Vec<i64>> {
    let var = |p: i64, h: i64| base + (p - 1) * holes + h;
    let mut clauses = Vec::new();
    for p in 1..=pigeons {
        clauses.push((1..=holes).map(|h| var(p, h)).collect());
    }
    for h in 1..=holes {
        for p1 in 1..=pigeons {
            for p2 in (p1 + 1)..=pigeons {
                clauses.push(vec![-var(p1, h), -var(p2, h)]);
            }
        }
    }
    clauses
}

/// Random add/solve interleavings on a solver whose arena is under
/// constant GC pressure from a hard guarded sub-formula.
///
/// Each session first refutes a selector-guarded PHP(7,6) — generating
/// the learnt churn that drives reduction and compaction — then runs
/// rounds of random clause additions and queries over a disjoint block
/// of variables. Because the blocks share no variables, the reference
/// oracle only ever has to settle the small random part, while the
/// solver answers against the full post-GC database:
///
/// - `Sat` verdicts must match the oracle and come with a model of the
///   *entire* formula (including every guarded clause);
/// - `Unsat` verdicts must match the oracle, and the reported failed
///   assumptions restricted to the random block must already be
///   contradictory there;
/// - the guarded query must stay `Unsat` at every re-check.
#[test]
fn gc_interleavings_preserve_verdicts_models_and_cores() {
    // PHP(7,6) occupies DIMACS 1..42, the selector is 43, and the random
    // block is 44..51.
    let selector = 43i64;
    let random_base = 43u32; // 0-based index of DIMACS 44
    let random_vars = 8u32;

    let mut total_gcs = 0u64;
    for seed in 0..16u64 {
        let mut rng = Rng::seed_from_u64(0x6C0_0000 + seed);
        let mut solver = Solver::builder()
            .config(gc_config())
            .build()
            .expect("valid");
        let mut full = Cnf::new(random_base + random_vars);
        let mut random_part = Cnf::new(random_base + random_vars);

        for c in pigeonhole(7, 6, 0) {
            let lits: Vec<Lit> = c.iter().map(|&v| lit(v)).chain([lit(-selector)]).collect();
            full.add_clause(Clause::from_lits(lits.iter().copied()));
            solver.add_clause(lits);
        }
        assert_eq!(
            solver.solve(&[lit(selector)]),
            SolveResult::Unsat,
            "seed {seed}"
        );
        assert!(
            solver.stats().deleted_clauses > 0,
            "seed {seed}: reduce_db never fired"
        );

        for round in 0..6 {
            for _ in 0..rng.gen_range(1..5usize) {
                let len = rng.gen_range(1..4usize);
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = Var::new(random_base + rng.gen_range(0..random_vars));
                        Lit::new(v, rng.gen_bool(0.5))
                    })
                    .collect();
                full.add_clause(Clause::from_lits(lits.iter().copied()));
                random_part.add_clause(Clause::from_lits(lits.iter().copied()));
                solver.add_clause(lits);
            }
            let mut assumptions = vec![lit(-selector)];
            for i in 0..random_vars {
                if rng.gen_bool(0.3) {
                    assumptions.push(Lit::new(Var::new(random_base + i), rng.gen_bool(0.5)));
                }
            }
            // Disjointness makes the full formula under ¬selector exactly
            // as satisfiable as the strengthened random block.
            let mut strengthened = random_part.clone();
            for &a in &assumptions[1..] {
                strengthened.add_clause(Clause::unit(a));
            }
            let expected = reference::is_satisfiable(&strengthened);
            match solver.solve(&assumptions) {
                SolveResult::Sat => {
                    assert!(
                        expected,
                        "seed {seed} round {round}: solver Sat, oracle Unsat"
                    );
                    let model = solver.model();
                    assert_eq!(
                        full.evaluate(&model),
                        TruthValue::True,
                        "seed {seed} round {round}: model does not satisfy the formula"
                    );
                    assert!(
                        assumptions.iter().all(|&a| model.satisfies(a)),
                        "seed {seed} round {round}: model violates an assumption"
                    );
                }
                SolveResult::Unsat => {
                    assert!(
                        !expected,
                        "seed {seed} round {round}: solver Unsat, oracle Sat"
                    );
                    let failed = solver.failed_assumptions().to_vec();
                    assert!(
                        failed.iter().all(|l| assumptions.contains(l)),
                        "seed {seed} round {round}: failed set {failed:?} not a subset"
                    );
                    // The core restricted to the random block must already
                    // be contradictory there (¬selector only satisfies
                    // guarded clauses, it cannot carry a contradiction).
                    let mut core = random_part.clone();
                    for &l in failed.iter().filter(|l| l.var().index() >= random_base) {
                        core.add_clause(Clause::unit(l));
                    }
                    assert!(
                        !reference::is_satisfiable(&core),
                        "seed {seed} round {round}: failed set {failed:?} is not a core"
                    );
                }
                SolveResult::Unknown => panic!("seed {seed} round {round}: no budget was set"),
            }
            // The guarded refutation must survive every compaction.
            if round % 2 == 1 {
                assert_eq!(
                    solver.solve(&[lit(selector)]),
                    SolveResult::Unsat,
                    "seed {seed} round {round}: guarded verdict changed after GC"
                );
            }
        }
        total_gcs += solver.stats().arena_gcs;
    }
    assert!(total_gcs > 0, "no session ever compacted the arena");
}

/// DRAT emitted across a GC-heavy incremental session still passes the
/// independent checker: reduction deletions and arena compactions must
/// leave the proof stream well-formed and checkable against the union
/// of every clause ever added.
#[test]
fn drat_stays_checkable_across_arena_compactions() {
    let mut cnf = Cnf::new(0);
    let buffer = ProofBuffer::new();
    let mut solver = Solver::builder()
        .config(gc_config())
        .proof_logger(Box::new(TextDratLogger::new(buffer.clone())))
        .build()
        .expect("valid");

    let add = |solver: &mut Solver, cnf: &mut Cnf, c: &[i64]| {
        let lits: Vec<Lit> = c.iter().map(|&v| lit(v)).collect();
        for &l in &lits {
            cnf.ensure_num_vars(l.var().index() + 1);
        }
        cnf.add_lits(lits.iter().copied());
        solver.add_clause(lits);
    };

    // Query 1: guarded PHP(8,7) — enough churn to force real GC.
    let selector = 71i64;
    for c in pigeonhole(8, 7, 0) {
        let mut guarded = c.clone();
        guarded.push(-selector);
        add(&mut solver, &mut cnf, &guarded);
    }
    assert_eq!(solver.solve(&[lit(selector)]), SolveResult::Unsat);
    assert!(solver.stats().arena_gcs > 0, "the arena never compacted");
    // Query 2: without the selector the formula is SAT.
    assert_eq!(solver.solve(&[]), SolveResult::Sat);
    // Mutation: an unguarded PHP(4,3) over fresh variables closes the
    // formula outright; the post-GC database must still refute it.
    for c in pigeonhole(4, 3, 80) {
        add(&mut solver, &mut cnf, &c);
    }
    assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    assert!(!solver.proof_had_error());

    let proof = parse_text_drat(std::str::from_utf8(&buffer.contents()).unwrap()).unwrap();
    assert!(proof.deletions() > 0, "a GC-heavy run must delete clauses");
    check_proof(&cnf, &proof, CheckMode::Forward).unwrap();
    check_proof(&cnf, &proof, CheckMode::Backward).unwrap();
}

/// Learnt tiers are retained across queries: a second identical query
/// reuses the tiered database instead of re-deriving it, and the tier
/// population survives (default configuration, no artificial pressure).
#[test]
fn learnt_tiers_are_retained_across_queries() {
    let selector = 31i64;
    let mut solver = Solver::new();
    for c in pigeonhole(6, 5, 0) {
        solver.add_clause(c.iter().map(|&v| lit(v)).chain([lit(-selector)]));
    }
    assert_eq!(solver.solve(&[lit(selector)]), SolveResult::Unsat);
    let after_first = solver.stats();
    let tiered_first =
        after_first.core_clauses + after_first.tier2_clauses + after_first.local_clauses;
    assert!(tiered_first > 0, "PHP(6,5) must learn clauses");
    assert!(after_first.conflicts > 0, "PHP(6,5) needs real search");

    assert_eq!(solver.solve(&[lit(selector)]), SolveResult::Unsat);
    let after_second = solver.stats();
    let tiered_second =
        after_second.core_clauses + after_second.tier2_clauses + after_second.local_clauses;
    assert!(
        tiered_second >= tiered_first,
        "tier population shrank across queries: {tiered_second} < {tiered_first}"
    );
    let second_conflicts = after_second.conflicts - after_first.conflicts;
    assert!(
        second_conflicts < after_first.conflicts,
        "warm re-query did not reuse the tiered database: \
         {second_conflicts} vs {} conflicts",
        after_first.conflicts
    );
}
