//! Warm-state soundness on the PEC smoke corpus: sessions solving
//! through a shared [`WarmCache`] must return exactly the verdicts a
//! cold session returns. A poisoned cache entry — a preprocessing
//! result or FRAIG cone keyed to the wrong formula — would surface
//! here as a verdict flip between the cold and warm runs.

use std::sync::Arc;

use hqs_core::{HqsConfig, Outcome, Session, WarmCache};
use hqs_pec::{families, Family, PecInstance};

/// The smallest instance of every family, faulted and fault-free, with
/// one and two black boxes — small enough for debug-mode solving while
/// still covering all seven encodings.
fn corpus() -> Vec<PecInstance> {
    let smallest = [
        (Family::Adder, 2),
        (Family::Bitcell, 3),
        (Family::Lookahead, 4),
        (Family::PecXor, 4),
        (Family::Z4, 2),
        (Family::Comp, 2),
        (Family::C432, 3),
    ];
    let mut instances = Vec::new();
    for (family, size) in smallest {
        for (seed, fault) in [(0, false), (1, true)] {
            let num_boxes = 1 + seed as u32;
            instances.push(families::generate(family, size, num_boxes, seed, fault));
        }
    }
    instances
}

#[test]
fn warm_verdicts_match_cold_on_the_smoke_corpus() {
    let config = HqsConfig {
        // Exercise the FRAIG cone cache alongside the preprocessing
        // cache (the default threshold of 0 leaves sweeping off).
        fraig_threshold: 8,
        ..HqsConfig::default()
    };
    let warm = Arc::new(WarmCache::new());
    for instance in corpus() {
        let mut cold = Session::builder()
            .config(config.clone())
            .build()
            .expect("valid config");
        let expected = cold.solve(&instance.dqbf);
        assert!(
            !matches!(expected, Outcome::Unknown(_)),
            "{}: cold solve exhausted without a verdict",
            instance.name
        );
        // Two warm passes: the first fills the shared cache, the second
        // replays from it (identical canonical formula hash).
        for pass in 0..2 {
            let mut session = Session::builder()
                .config(config.clone())
                .warm_cache(Arc::clone(&warm))
                .build()
                .expect("valid config");
            assert_eq!(
                session.solve(&instance.dqbf),
                expected,
                "{} diverged from the cold verdict on warm pass {pass}",
                instance.name
            );
        }
    }
    // The second warm passes replay identical formulas, so the run is
    // only meaningful if the cache actually served hits.
    let stats = warm.preprocess_stats();
    assert!(
        stats.hits > 0,
        "second warm passes must hit the preprocess cache: {stats:?}"
    );
    assert!(stats.misses > 0, "first warm passes must miss: {stats:?}");
}
