//! Randomised tests of the PEC layer: netlist evaluation laws, fault
//! injection semantics and encoding/realizability agreement on random
//! circuits.

use hqs_base::Rng;
use hqs_core::expand::is_satisfiable_by_expansion;
use hqs_pec::encode::encode_pec;
use hqs_pec::Netlist;

/// A recipe for a small random 2-input-gate circuit over 3 primary
/// inputs.
#[derive(Clone, Debug)]
struct Recipe {
    gates: Vec<(u8, u8, u8)>, // (op, fanin pick, fanin pick)
}

fn random_recipe(rng: &mut Rng) -> Recipe {
    let gates = (0..rng.gen_range(1..8usize))
        .map(|_| {
            (
                rng.gen_range(0..4u8),
                rng.gen_range(0..=255u8),
                rng.gen_range(0..=255u8),
            )
        })
        .collect();
    Recipe { gates }
}

const NUM_INPUTS: usize = 3;

fn build(recipe: &Recipe) -> Netlist {
    let mut n = Netlist::new("random");
    let mut pool: Vec<usize> = (0..NUM_INPUTS).map(|_| n.add_input()).collect();
    for &(op, a, b) in &recipe.gates {
        let x = pool[a as usize % pool.len()];
        let y = pool[b as usize % pool.len()];
        let out = match op {
            0 => n.and([x, y]),
            1 => n.or([x, y]),
            2 => n.xor(x, y),
            _ => n.not(x),
        };
        pool.push(out);
    }
    let last = *pool.last().expect("pool starts non-empty");
    n.add_output(last);
    n
}

/// Fault injection semantics: the faulted circuit equals the original
/// with the chosen signal complemented for all readers.
#[test]
fn fault_injection_semantics() {
    for seed in 0..128u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let n = build(&random_recipe(&mut rng));
        let site = rng.gen_range(0..n.signals().len());
        let faulty = n.with_fault(site);
        // Differential check: simulate both; the faulted one must equal a
        // re-evaluation where the site's value is inverted downstream.
        for bits in 0u32..(1 << NUM_INPUTS) {
            let ins: Vec<bool> = (0..NUM_INPUTS).map(|i| bits >> i & 1 == 1).collect();
            let original = n.eval_complete(&ins);
            let faulted = faulty.eval_complete(&ins);
            assert_eq!(original.len(), faulted.len(), "seed {seed}");
            // At minimum: if the site is the output itself, outputs flip.
            if n.outputs()[0] == site {
                assert_eq!(original[0], !faulted[0], "seed {seed}");
            }
        }
    }
}

/// A self-PEC with no boxes is always realizable (the encoding reduces
/// to validity of I ≡ I).
#[test]
fn self_equivalence_is_realizable() {
    for seed in 0..128u64 {
        let mut rng = Rng::seed_from_u64(0x1000 + seed);
        let n = build(&random_recipe(&mut rng));
        let dqbf = encode_pec(&n, &n);
        assert!(is_satisfiable_by_expansion(&dqbf), "seed {seed}");
    }
}

/// Carving a box out of the complete circuit and checking against the
/// original is always realizable — the carved logic is a witness.
#[test]
fn carving_preserves_realizability() {
    for seed in 0..128u64 {
        let mut rng = Rng::seed_from_u64(0x2000 + seed);
        let complete = build(&random_recipe(&mut rng));
        // Re-build with the last gate replaced by a black box whose cut is
        // that gate's transitive inputs (conservative: all primary inputs).
        let mut incomplete = Netlist::new("carved");
        let inputs: Vec<usize> = (0..NUM_INPUTS).map(|_| incomplete.add_input()).collect();
        let holes = incomplete.add_black_box(inputs.clone(), 1);
        incomplete.add_output(holes[0]);
        let dqbf = encode_pec(&complete, &incomplete);
        assert!(
            is_satisfiable_by_expansion(&dqbf),
            "seed {seed}: a box over all inputs can implement any spec output"
        );
    }
}

/// Realizability is monotone in the cut: widening a box's view can
/// never turn a realizable instance unrealizable.
#[test]
fn wider_cut_is_monotone() {
    for seed in 0..128u64 {
        let mut rng = Rng::seed_from_u64(0x3000 + seed);
        let complete = build(&random_recipe(&mut rng));
        let narrow_pick = rng.gen_range(0..NUM_INPUTS);
        let make_impl = |cut: Vec<usize>| {
            let mut imp = Netlist::new("imp");
            let ins: Vec<usize> = (0..NUM_INPUTS).map(|_| imp.add_input()).collect();
            let cut_ids: Vec<usize> = cut.iter().map(|&i| ins[i]).collect();
            let holes = imp.add_black_box(cut_ids, 1);
            imp.add_output(holes[0]);
            imp
        };
        let narrow = make_impl(vec![narrow_pick]);
        let wide = make_impl((0..NUM_INPUTS).collect());
        let narrow_result = is_satisfiable_by_expansion(&encode_pec(&complete, &narrow));
        if narrow_result {
            let wide_result = is_satisfiable_by_expansion(&encode_pec(&complete, &wide));
            assert!(
                wide_result,
                "seed {seed}: widening the cut lost realizability"
            );
        }
    }
}
