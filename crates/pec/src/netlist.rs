//! Gate-level netlists with optional black-box holes.

use std::fmt;

/// Index of a signal within a [`Netlist`].
pub type SignalId = usize;

/// Gate operators. Negation is a gate of its own (`Not`), so fanins are
/// plain signal ids.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GateOp {
    /// N-ary conjunction.
    And(Vec<SignalId>),
    /// N-ary disjunction.
    Or(Vec<SignalId>),
    /// Binary exclusive or.
    Xor(SignalId, SignalId),
    /// Inverter.
    Not(SignalId),
    /// Constant.
    Const(bool),
}

/// One signal of the netlist.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Signal {
    /// Primary input (with its input index).
    Input(usize),
    /// Driven by a gate.
    Gate(GateOp),
    /// Output of black box `box_id` (position `out_idx` of that box).
    Hole {
        /// Which black box drives this signal.
        box_id: usize,
        /// Output position within the box.
        out_idx: usize,
    },
}

/// A black box: an unimplemented part of the circuit. Its (future)
/// implementation may only observe the listed input signals.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlackBox {
    /// Signals the box observes (its input cut).
    pub inputs: Vec<SignalId>,
    /// Hole signals the box drives.
    pub outputs: Vec<SignalId>,
}

/// A combinational gate-level netlist, optionally incomplete (containing
/// [`Signal::Hole`]s driven by [`BlackBox`]es).
///
/// Signals must be created in topological order: a gate may only reference
/// already-created signals. This makes construction order a valid
/// evaluation order.
///
/// # Examples
///
/// ```
/// use hqs_pec::Netlist;
///
/// let mut n = Netlist::new("half_adder");
/// let a = n.add_input();
/// let b = n.add_input();
/// let sum = n.xor(a, b);
/// let carry = n.and([a, b]);
/// n.add_output(sum);
/// n.add_output(carry);
/// assert_eq!(n.eval_complete(&[true, true]), vec![false, true]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Netlist {
    name: String,
    signals: Vec<Signal>,
    inputs: Vec<SignalId>,
    outputs: Vec<SignalId>,
    boxes: Vec<BlackBox>,
}

impl Netlist {
    /// Creates an empty netlist.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Netlist {
            name: name.to_string(),
            signals: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            boxes: Vec::new(),
        }
    }

    /// The netlist's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a primary input; returns its signal.
    pub fn add_input(&mut self) -> SignalId {
        let id = self.signals.len();
        self.signals.push(Signal::Input(self.inputs.len()));
        self.inputs.push(id);
        id
    }

    fn add_gate(&mut self, op: GateOp) -> SignalId {
        let id = self.signals.len();
        let fanins: Vec<SignalId> = match &op {
            GateOp::And(ins) | GateOp::Or(ins) => ins.clone(),
            GateOp::Xor(a, b) => vec![*a, *b],
            GateOp::Not(a) => vec![*a],
            GateOp::Const(_) => Vec::new(),
        };
        for fanin in fanins {
            assert!(fanin < id, "gates must reference earlier signals");
        }
        self.signals.push(Signal::Gate(op));
        id
    }

    /// Adds an AND gate.
    pub fn and<I: IntoIterator<Item = SignalId>>(&mut self, ins: I) -> SignalId {
        self.add_gate(GateOp::And(ins.into_iter().collect()))
    }

    /// Adds an OR gate.
    pub fn or<I: IntoIterator<Item = SignalId>>(&mut self, ins: I) -> SignalId {
        self.add_gate(GateOp::Or(ins.into_iter().collect()))
    }

    /// Adds an XOR gate.
    pub fn xor(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.add_gate(GateOp::Xor(a, b))
    }

    /// Adds an inverter.
    pub fn not(&mut self, a: SignalId) -> SignalId {
        self.add_gate(GateOp::Not(a))
    }

    /// Adds a constant signal.
    pub fn constant(&mut self, value: bool) -> SignalId {
        self.add_gate(GateOp::Const(value))
    }

    /// Declares `signal` a primary output.
    pub fn add_output(&mut self, signal: SignalId) {
        assert!(signal < self.signals.len());
        self.outputs.push(signal);
    }

    /// Adds a black box with the given input cut and `num_outputs` fresh
    /// hole signals; returns the hole signal ids.
    pub fn add_black_box(&mut self, inputs: Vec<SignalId>, num_outputs: usize) -> Vec<SignalId> {
        let box_id = self.boxes.len();
        let mut holes = Vec::with_capacity(num_outputs);
        for out_idx in 0..num_outputs {
            let id = self.signals.len();
            self.signals.push(Signal::Hole { box_id, out_idx });
            holes.push(id);
        }
        self.boxes.push(BlackBox {
            inputs,
            outputs: holes.clone(),
        });
        holes
    }

    /// The primary inputs, in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// The primary outputs, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[SignalId] {
        &self.outputs
    }

    /// The black boxes.
    #[must_use]
    pub fn boxes(&self) -> &[BlackBox] {
        &self.boxes
    }

    /// All signals.
    #[must_use]
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// Number of gate signals (circuit size).
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.signals
            .iter()
            .filter(|s| matches!(s, Signal::Gate(_)))
            .count()
    }

    /// Evaluates a *complete* netlist (no holes) on the given inputs.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains holes or `inputs` has the wrong
    /// length.
    #[must_use]
    pub fn eval_complete(&self, inputs: &[bool]) -> Vec<bool> {
        self.eval_with_boxes(inputs, |_, _, _| {
            panic!("netlist contains black boxes; use eval_with_boxes")
        })
    }

    /// Evaluates the netlist with black boxes interpreted by `box_fn`:
    /// `box_fn(box_id, out_idx, box_input_values) -> bool`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the declared input count.
    pub fn eval_with_boxes<F>(&self, inputs: &[bool], mut box_fn: F) -> Vec<bool>
    where
        F: FnMut(usize, usize, &[bool]) -> bool,
    {
        assert_eq!(inputs.len(), self.inputs.len(), "input arity mismatch");
        let mut values = vec![false; self.signals.len()];
        for (id, signal) in self.signals.iter().enumerate() {
            values[id] = match signal {
                Signal::Input(idx) => inputs[*idx],
                Signal::Gate(op) => match op {
                    GateOp::And(ins) => ins.iter().all(|&i| values[i]),
                    GateOp::Or(ins) => ins.iter().any(|&i| values[i]),
                    GateOp::Xor(a, b) => values[*a] ^ values[*b],
                    GateOp::Not(a) => !values[*a],
                    GateOp::Const(c) => *c,
                },
                Signal::Hole { box_id, out_idx } => {
                    let cut: Vec<bool> = self.boxes[*box_id]
                        .inputs
                        .iter()
                        .map(|&z| values[z])
                        .collect();
                    box_fn(*box_id, *out_idx, &cut)
                }
            };
        }
        self.outputs.iter().map(|&o| values[o]).collect()
    }

    /// Returns a copy with each listed gate signal replaced by a fresh
    /// single-output black box observing exactly that gate's fanins — the
    /// generic "remove a part of the circuit" operation for building PEC
    /// instances from arbitrary netlists (e.g. parsed `.bench` files).
    ///
    /// # Panics
    ///
    /// Panics if a target is not a gate signal.
    #[must_use]
    pub fn carve_gates(&self, targets: &[SignalId]) -> Netlist {
        let mut carved = self.clone();
        carved.name = format!("{}_carved", self.name);
        for &target in targets {
            let Signal::Gate(op) = &self.signals[target] else {
                panic!("carve target {target} is not a gate");
            };
            let cut: Vec<SignalId> = match op {
                GateOp::And(ins) | GateOp::Or(ins) => ins.clone(),
                GateOp::Xor(a, b) => vec![*a, *b],
                GateOp::Not(a) => vec![*a],
                GateOp::Const(_) => Vec::new(),
            };
            let box_id = carved.boxes.len();
            carved.signals[target] = Signal::Hole { box_id, out_idx: 0 };
            carved.boxes.push(BlackBox {
                inputs: cut,
                outputs: vec![target],
            });
        }
        carved
    }

    /// Returns a copy with an inverter spliced onto signal `target`
    /// (every *later* gate reading `target` reads its negation instead) —
    /// the fault-injection primitive for generating unrealizable
    /// instances. Outputs reading `target` directly are also redirected.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    #[must_use]
    pub fn with_fault(&self, target: SignalId) -> Netlist {
        assert!(target < self.signals.len());
        // The inverter is inserted directly after `target` so topological
        // order is preserved; all later ids shift by one, and readers of
        // `target` read the inverter instead.
        let inv = target + 1;
        let shift = |id: SignalId| if id > target { id + 1 } else { id };
        let redirect = |id: SignalId| if id == target { inv } else { shift(id) };
        let mut signals = Vec::with_capacity(self.signals.len() + 1);
        for (id, signal) in self.signals.iter().enumerate() {
            let mapped = match signal {
                Signal::Input(idx) => Signal::Input(*idx),
                Signal::Hole { box_id, out_idx } => Signal::Hole {
                    box_id: *box_id,
                    out_idx: *out_idx,
                },
                Signal::Gate(op) => {
                    let mut op = op.clone();
                    for fanin in op_fanins_mut(&mut op) {
                        *fanin = redirect(*fanin);
                    }
                    Signal::Gate(op)
                }
            };
            signals.push(mapped);
            if id == target {
                signals.push(Signal::Gate(GateOp::Not(target)));
            }
        }
        Netlist {
            name: format!("{}_fault{}", self.name, target),
            signals,
            inputs: self.inputs.iter().map(|&i| shift(i)).collect(),
            outputs: self.outputs.iter().map(|&o| redirect(o)).collect(),
            boxes: self
                .boxes
                .iter()
                .map(|bb| BlackBox {
                    inputs: bb.inputs.iter().map(|&z| redirect(z)).collect(),
                    outputs: bb.outputs.iter().map(|&h| shift(h)).collect(),
                })
                .collect(),
        }
    }
}

fn op_fanins_mut(op: &mut GateOp) -> Vec<&mut SignalId> {
    match op {
        GateOp::And(ins) | GateOp::Or(ins) => ins.iter_mut().collect(),
        GateOp::Xor(a, b) => vec![a, b],
        GateOp::Not(a) => vec![a],
        GateOp::Const(_) => Vec::new(),
    }
}

impl fmt::Debug for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Netlist({}: {} inputs, {} gates, {} outputs, {} boxes)",
            self.name,
            self.inputs.len(),
            self.num_gates(),
            self.outputs.len(),
            self.boxes.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_adder_truth_table() {
        let mut n = Netlist::new("full_adder");
        let a = n.add_input();
        let b = n.add_input();
        let c = n.add_input();
        let ab = n.xor(a, b);
        let sum = n.xor(ab, c);
        let ab_and = n.and([a, b]);
        let abc = n.and([ab, c]);
        let carry = n.or([ab_and, abc]);
        n.add_output(sum);
        n.add_output(carry);
        for bits in 0u32..8 {
            let ins: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expected_sum = ins.iter().filter(|&&v| v).count();
            let out = n.eval_complete(&ins);
            assert_eq!(out[0], expected_sum % 2 == 1);
            assert_eq!(out[1], expected_sum >= 2);
        }
    }

    #[test]
    fn black_box_evaluation() {
        let mut n = Netlist::new("bb");
        let a = n.add_input();
        let b = n.add_input();
        let holes = n.add_black_box(vec![a, b], 1);
        let out = n.not(holes[0]);
        n.add_output(out);
        // Box implements AND.
        let result = n.eval_with_boxes(&[true, true], |_, _, cut| cut.iter().all(|&v| v));
        assert_eq!(result, vec![false]);
        let result = n.eval_with_boxes(&[true, false], |_, _, cut| cut.iter().all(|&v| v));
        assert_eq!(result, vec![true]);
    }

    #[test]
    fn fault_injection_flips_readers() {
        let mut n = Netlist::new("f");
        let a = n.add_input();
        let b = n.add_input();
        let conj = n.and([a, b]);
        n.add_output(conj);
        let faulty = n.with_fault(a);
        // Output now computes ¬a ∧ b.
        assert_eq!(faulty.eval_complete(&[false, true]), vec![true]);
        assert_eq!(faulty.eval_complete(&[true, true]), vec![false]);
        // Original untouched.
        assert_eq!(n.eval_complete(&[true, true]), vec![true]);
    }

    #[test]
    fn fault_on_output_signal() {
        let mut n = Netlist::new("g");
        let a = n.add_input();
        let inv = n.not(a);
        n.add_output(inv);
        let faulty = n.with_fault(inv);
        assert_eq!(faulty.eval_complete(&[false]), vec![false]);
    }

    #[test]
    #[should_panic(expected = "reference earlier signals")]
    fn forward_reference_panics() {
        let mut n = Netlist::new("bad");
        let a = n.add_input();
        let _ = n.and([a, 99]);
    }

    #[test]
    fn carve_gates_replaces_gate_with_box() {
        let mut n = Netlist::new("c");
        let a = n.add_input();
        let b = n.add_input();
        let g = n.and([a, b]);
        let out = n.not(g);
        n.add_output(out);
        let carved = n.carve_gates(&[g]);
        assert_eq!(carved.boxes().len(), 1);
        assert_eq!(carved.boxes()[0].inputs, vec![a, b]);
        assert_eq!(carved.boxes()[0].outputs, vec![g]);
        // Filling the box with AND restores the original function.
        let filled = carved.eval_with_boxes(&[true, true], |_, _, cut| cut.iter().all(|&v| v));
        assert_eq!(filled, n.eval_complete(&[true, true]));
        // Original netlist untouched.
        assert!(n.boxes().is_empty());
    }

    #[test]
    #[should_panic(expected = "is not a gate")]
    fn carve_non_gate_panics() {
        let mut n = Netlist::new("c");
        let a = n.add_input();
        let g = n.not(a);
        n.add_output(g);
        let _ = n.carve_gates(&[a]);
    }

    #[test]
    fn constants() {
        let mut n = Netlist::new("c");
        let t = n.constant(true);
        let f = n.constant(false);
        let o = n.or([t, f]);
        n.add_output(o);
        assert_eq!(n.eval_complete(&[]), vec![true]);
    }
}
