//! The PEC → DQBF encoding of Gitina et al. \[10\].
//!
//! Given a complete specification circuit `S(X)` and an incomplete
//! implementation `I(X, H)` whose black boxes `B_j` observe input cuts
//! `Z_j` and drive hole signals `H_j`, realizability is encoded as
//!
//! ```text
//! ∀X ∀Ẑ ∃H_j(Ẑ_j) :  (⋀_{z∈Z} ẑ ↔ z(X,H))  →  (I(X,H) ↔ S(X))
//! ```
//!
//! — the box outputs may depend *only* on fresh universal copies `ẑ` of
//! their cut signals, and whenever those copies are consistent with the
//! values the circuit actually computes, implementation and specification
//! must agree. The matrix is Tseitin-encoded: every gate gets an auxiliary
//! existential variable depending on all universals (HQS's gate detection
//! recognises and composes them away, exactly as the paper describes).
//!
//! Cut signals that are primary inputs need no copy: the box depends on
//! the input universal directly.

use crate::netlist::{GateOp, Netlist, Signal};
use hqs_base::{Lit, Var};
use hqs_core::Dqbf;
use std::collections::HashMap;

/// The value of a signal during encoding: a literal or a folded constant.
#[derive(Clone, Copy, Debug)]
enum Val {
    Lit(Lit),
    Const(bool),
}

/// Encodes the PEC realizability question "can the black boxes of
/// `implementation` be filled so that it matches `spec`?" as a DQBF that
/// is satisfiable iff the answer is yes.
///
/// # Panics
///
/// Panics if `spec` contains black boxes or the input/output arities
/// differ.
#[must_use]
pub fn encode_pec(spec: &Netlist, implementation: &Netlist) -> Dqbf {
    assert!(spec.boxes().is_empty(), "specification must be complete");
    assert_eq!(
        spec.inputs().len(),
        implementation.inputs().len(),
        "input arity mismatch"
    );
    assert_eq!(
        spec.outputs().len(),
        implementation.outputs().len(),
        "output arity mismatch"
    );

    let mut dqbf = Dqbf::new();
    // 1. Universals for primary inputs.
    let input_vars: Vec<Var> = (0..spec.inputs().len())
        .map(|_| dqbf.add_universal())
        .collect();

    // 2. Universal copies ẑ for cut signals that are not primary inputs.
    let mut cut_var: HashMap<usize, Var> = HashMap::new(); // signal -> ẑ
    for bb in implementation.boxes() {
        for &z in &bb.inputs {
            if let Signal::Input(_) = implementation.signals()[z] {
                continue;
            }
            cut_var.entry(z).or_insert_with(|| dqbf.add_universal());
        }
    }

    // 3. Hole existentials with per-box dependency sets.
    let mut hole_var: HashMap<usize, Var> = HashMap::new(); // signal -> y
    for bb in implementation.boxes() {
        let deps: Vec<Var> = bb
            .inputs
            .iter()
            .map(|&z| match implementation.signals()[z] {
                Signal::Input(idx) => input_vars[idx],
                _ => cut_var[&z],
            })
            .collect();
        for &h in &bb.outputs {
            let y = dqbf.add_existential(deps.iter().copied());
            hole_var.insert(h, y);
        }
    }

    // 4. Tseitin-encode both circuits.
    let mut encoder = Encoder {
        dqbf,
        input_vars,
        hole_var,
    };
    let impl_vals = encoder.encode_netlist(implementation);
    let spec_vals = encoder.encode_netlist(spec);

    // 5. Cut-consistency miters: diff_z ≡ ẑ ⊕ z(X,H).
    let mut antecedent_broken: Vec<Lit> = Vec::new(); // literals, true ⇒ ẑ ≠ z
    let mut cut_ids: Vec<usize> = cut_var.keys().copied().collect();
    cut_ids.sort_unstable();
    for z in cut_ids {
        let hat = Lit::positive(cut_var[&z]);
        match impl_vals[z] {
            Val::Const(c) => {
                // ẑ ⊕ c: a plain literal of ẑ.
                antecedent_broken.push(hat.xor_sign(c));
            }
            Val::Lit(lit) => {
                let diff = encoder.xor_aux(hat, lit);
                antecedent_broken.push(diff);
            }
        }
    }

    // 6. Output equivalence: alleq ≡ ⋀_k ¬(o_I ⊕ o_S).
    let mut eq_lits: Vec<Lit> = Vec::new();
    let mut trivially_different = false;
    for (k, (&oi, &os)) in implementation
        .outputs()
        .iter()
        .zip(spec.outputs())
        .enumerate()
    {
        let _ = k;
        match (impl_vals[oi], spec_vals[os]) {
            (Val::Const(a), Val::Const(b)) => {
                if a != b {
                    trivially_different = true;
                }
            }
            (Val::Lit(lit), Val::Const(c)) | (Val::Const(c), Val::Lit(lit)) => {
                eq_lits.push(lit.xor_sign(!c));
            }
            (Val::Lit(a), Val::Lit(b)) => {
                eq_lits.push(!encoder.xor_aux(a, b));
            }
        }
    }

    // 7. Final constraint: (⋁ diff) ∨ alleq.
    let mut dqbf = encoder.dqbf;
    if trivially_different {
        // Outputs differ structurally: the matrix reduces to ⋁ diff.
        if antecedent_broken.is_empty() {
            // No boxes can save it: unsatisfiable matrix.
            dqbf.add_clause(std::iter::empty());
        } else {
            dqbf.add_clause(antecedent_broken);
        }
    } else if eq_lits.is_empty() {
        // Equivalent regardless of boxes: trivially satisfiable, no clause.
    } else {
        // alleq as one aux AND (or direct literal for a single output).
        let alleq = if eq_lits.len() == 1 {
            eq_lits[0]
        } else {
            let t = Lit::positive(dqbf.add_existential_innermost());
            for &e in &eq_lits {
                dqbf.add_clause([!t, e]);
            }
            let mut long = vec![t];
            long.extend(eq_lits.iter().map(|&e| !e));
            dqbf.add_clause(long);
            t
        };
        let mut clause = antecedent_broken;
        clause.push(alleq);
        dqbf.add_clause(clause);
    }
    dqbf
}

struct Encoder {
    dqbf: Dqbf,
    input_vars: Vec<Var>,
    hole_var: HashMap<usize, Var>,
}

impl Encoder {
    /// Encodes all signals of `netlist`, returning per-signal values.
    /// Hole lookups go through `hole_var` (empty for the spec).
    fn encode_netlist(&mut self, netlist: &Netlist) -> Vec<Val> {
        let mut vals: Vec<Val> = Vec::with_capacity(netlist.signals().len());
        for (id, signal) in netlist.signals().iter().enumerate() {
            let val = match signal {
                Signal::Input(idx) => Val::Lit(Lit::positive(self.input_vars[*idx])),
                Signal::Hole { .. } => Val::Lit(Lit::positive(self.hole_var[&id])),
                Signal::Gate(op) => self.encode_gate(op, &vals),
            };
            vals.push(val);
        }
        vals
    }

    fn encode_gate(&mut self, op: &GateOp, vals: &[Val]) -> Val {
        match op {
            GateOp::Const(c) => Val::Const(*c),
            GateOp::Not(a) => match vals[*a] {
                Val::Const(c) => Val::Const(!c),
                Val::Lit(l) => Val::Lit(!l),
            },
            GateOp::And(ins) => self.encode_andor(ins, vals, false),
            GateOp::Or(ins) => self.encode_andor(ins, vals, true),
            GateOp::Xor(a, b) => match (vals[*a], vals[*b]) {
                (Val::Const(x), Val::Const(y)) => Val::Const(x ^ y),
                (Val::Const(c), Val::Lit(l)) | (Val::Lit(l), Val::Const(c)) => {
                    Val::Lit(l.xor_sign(c))
                }
                (Val::Lit(a), Val::Lit(b)) => Val::Lit(self.xor_aux(a, b)),
            },
        }
    }

    /// AND (or, with `dual`, OR via De Morgan) with constant folding.
    fn encode_andor(&mut self, ins: &[usize], vals: &[Val], dual: bool) -> Val {
        let mut lits: Vec<Lit> = Vec::with_capacity(ins.len());
        for &i in ins {
            match vals[i] {
                Val::Const(c) => {
                    if c == dual {
                        // AND with 0 / OR with 1: dominating constant.
                        return Val::Const(dual);
                    }
                    // neutral constant: skip
                }
                Val::Lit(l) => lits.push(l.xor_sign(dual)),
            }
        }
        lits.sort_unstable();
        lits.dedup();
        if lits.iter().zip(lits.iter().skip(1)).any(|(&a, &b)| a == !b) {
            return Val::Const(dual); // l ∧ ¬l
        }
        match lits.len() {
            0 => Val::Const(!dual),
            1 => Val::Lit(lits[0].xor_sign(dual)),
            _ => {
                // t ≡ ∧ lits; for OR the result is ¬t.
                let t = Lit::positive(self.dqbf.add_existential_innermost());
                for &l in &lits {
                    self.dqbf.add_clause([!t, l]);
                }
                let mut long = vec![t];
                long.extend(lits.iter().map(|&l| !l));
                self.dqbf.add_clause(long);
                Val::Lit(t.xor_sign(dual))
            }
        }
    }

    /// Fresh aux `t ≡ a ⊕ b` (4 clauses); returns `t`.
    fn xor_aux(&mut self, a: Lit, b: Lit) -> Lit {
        let t = Lit::positive(self.dqbf.add_existential_innermost());
        self.dqbf.add_clause([!t, a, b]);
        self.dqbf.add_clause([!t, !a, !b]);
        self.dqbf.add_clause([t, !a, b]);
        self.dqbf.add_clause([t, a, !b]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqs_core::expand::is_satisfiable_by_expansion;

    /// spec: out = a ∧ b. impl: out = BB(a, b). Realizable.
    #[test]
    fn single_box_copies_and() {
        let mut spec = Netlist::new("spec");
        let a = spec.add_input();
        let b = spec.add_input();
        let o = spec.and([a, b]);
        spec.add_output(o);

        let mut imp = Netlist::new("imp");
        let a = imp.add_input();
        let b = imp.add_input();
        let holes = imp.add_black_box(vec![a, b], 1);
        imp.add_output(holes[0]);

        let dqbf = encode_pec(&spec, &imp);
        assert!(is_satisfiable_by_expansion(&dqbf));
    }

    /// spec: out = a ∧ b. impl: out = BB(a) — the box cannot see b.
    /// Unrealizable.
    #[test]
    fn blind_box_is_unrealizable() {
        let mut spec = Netlist::new("spec");
        let a = spec.add_input();
        let b = spec.add_input();
        let o = spec.and([a, b]);
        spec.add_output(o);

        let mut imp = Netlist::new("imp");
        let a = imp.add_input();
        let _b = imp.add_input();
        let holes = imp.add_black_box(vec![a], 1);
        imp.add_output(holes[0]);

        let dqbf = encode_pec(&spec, &imp);
        assert!(!is_satisfiable_by_expansion(&dqbf));
    }

    /// Internal (non-input) cut: impl computes t = a⊕b and feeds the box
    /// only t; spec wants ¬t. Realizable (box = inverter).
    #[test]
    fn internal_cut_inverter() {
        let mut spec = Netlist::new("spec");
        let a = spec.add_input();
        let b = spec.add_input();
        let t = spec.xor(a, b);
        let o = spec.not(t);
        spec.add_output(o);

        let mut imp = Netlist::new("imp");
        let a = imp.add_input();
        let b = imp.add_input();
        let t = imp.xor(a, b);
        let holes = imp.add_black_box(vec![t], 1);
        imp.add_output(holes[0]);

        let dqbf = encode_pec(&spec, &imp);
        assert!(is_satisfiable_by_expansion(&dqbf));
        // ... but the spec "o = a" is not realizable from t alone.
        let mut spec2 = Netlist::new("spec2");
        let a2 = spec2.add_input();
        let _b2 = spec2.add_input();
        spec2.add_output(a2);
        let dqbf2 = encode_pec(&spec2, &imp);
        assert!(!is_satisfiable_by_expansion(&dqbf2));
    }

    /// Two boxes with different visibility — the genuinely DQBF case of
    /// Example 1: neither box sees the other's input.
    #[test]
    fn two_boxes_with_disjoint_views() {
        // spec: o = (a ∧ b); impl: o = BB1(a) ∧ BB2(b). Unrealizable:
        // BB1 sees only a, BB2 only b — yet (a∧b) IS realizable as
        // BB1(a)=a, BB2(b)=b. So expect SAT here.
        let mut spec = Netlist::new("spec");
        let a = spec.add_input();
        let b = spec.add_input();
        let o = spec.and([a, b]);
        spec.add_output(o);

        let mut imp = Netlist::new("imp");
        let a = imp.add_input();
        let b = imp.add_input();
        let h1 = imp.add_black_box(vec![a], 1);
        let h2 = imp.add_black_box(vec![b], 1);
        let o = imp.and([h1[0], h2[0]]);
        imp.add_output(o);
        let dqbf = encode_pec(&spec, &imp);
        assert!(is_satisfiable_by_expansion(&dqbf));

        // spec o = a ⊕ b is NOT realizable as AND of unary functions.
        let mut spec2 = Netlist::new("spec2");
        let a2 = spec2.add_input();
        let b2 = spec2.add_input();
        let o2 = spec2.xor(a2, b2);
        spec2.add_output(o2);
        let dqbf2 = encode_pec(&spec2, &imp);
        assert!(!is_satisfiable_by_expansion(&dqbf2));
    }

    /// Brute-force cross-check: for random small circuits with two 1-input
    /// boxes, enumerate all box implementations and compare against the
    /// DQBF encoding.
    #[test]
    fn encoding_matches_brute_force_realizability() {
        use hqs_base::Rng;
        let mut rng = Rng::seed_from_u64(515);
        for round in 0..40 {
            // Complete circuit: 2 inputs; g1 = op1(a,b), g2 = op2(g1, a),
            // out = op3(g2, b). Boxes will replace g1 and g2 in the impl.
            let ops: Vec<u8> = (0..3).map(|_| rng.gen_range(0..3u8)).collect();
            let build_gate = |n: &mut Netlist, op: u8, x: usize, y: usize| match op {
                0 => n.and([x, y]),
                1 => n.or([x, y]),
                _ => n.xor(x, y),
            };
            let mut spec = Netlist::new("spec");
            let a = spec.add_input();
            let b = spec.add_input();
            let g1 = build_gate(&mut spec, ops[0], a, b);
            let g2 = build_gate(&mut spec, ops[1], g1, a);
            let o = build_gate(&mut spec, ops[2], g2, b);
            spec.add_output(o);
            // Optionally mutate the spec to get UNSAT instances too.
            let spec = if rng.gen_bool(0.5) {
                spec.with_fault(rng.gen_range(0..=o))
            } else {
                spec
            };

            // Implementation: g1 ← BB1(a), g2 ← BB2(b).
            let mut imp = Netlist::new("imp");
            let a = imp.add_input();
            let b = imp.add_input();
            let h1 = imp.add_black_box(vec![a], 1)[0];
            let h2 = imp.add_black_box(vec![b], 1)[0];
            let o = build_gate(&mut imp, ops[2], h2, b);
            let _ = h1;
            let o_final = imp.or([o, h1]);
            imp.add_output(o_final);

            // Brute force: all 4 unary functions per box (tables over 1
            // input: 2 bits each).
            let mut realizable = false;
            'outer: for t1 in 0u8..4 {
                for t2 in 0u8..4 {
                    let box_fn = |box_id: usize, _out: usize, cut: &[bool]| {
                        let table = if box_id == 0 { t1 } else { t2 };
                        table >> usize::from(cut[0]) & 1 == 1
                    };
                    let mut all_match = true;
                    for bits in 0u32..4 {
                        let ins = [bits & 1 == 1, bits >> 1 & 1 == 1];
                        if imp.eval_with_boxes(&ins, box_fn) != spec.eval_complete(&ins) {
                            all_match = false;
                            break;
                        }
                    }
                    if all_match {
                        realizable = true;
                        break 'outer;
                    }
                }
            }

            let dqbf = encode_pec(&spec, &imp);
            assert_eq!(
                is_satisfiable_by_expansion(&dqbf),
                realizable,
                "round {round}, ops {ops:?}"
            );
        }
    }

    /// The encoding feeds straight into the production pipeline: HQS and
    /// iDQ agree with the oracle on a carved instance.
    #[test]
    fn solvers_agree_on_encoded_instance() {
        let mut spec = Netlist::new("spec");
        let a = spec.add_input();
        let b = spec.add_input();
        let c = spec.add_input();
        let ab = spec.xor(a, b);
        let o = spec.and([ab, c]);
        spec.add_output(o);

        let mut imp = Netlist::new("imp");
        let a = imp.add_input();
        let b = imp.add_input();
        let c = imp.add_input();
        let h1 = imp.add_black_box(vec![a, b], 1)[0];
        let o = imp.and([h1, c]);
        imp.add_output(o);

        let dqbf = encode_pec(&spec, &imp);
        let expected = is_satisfiable_by_expansion(&dqbf);
        assert!(expected, "carved instance is realizable");
        let hqs = hqs_core::Session::builder()
            .build()
            .expect("defaults are valid")
            .solve(&dqbf);
        assert_eq!(hqs, hqs_core::Outcome::Sat);
    }
}
