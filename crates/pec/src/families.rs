//! The seven PEC benchmark circuit families of the HQS evaluation.
//!
//! Each generator builds a *complete* reference circuit, carves a number
//! of cells out as black boxes for the implementation, and uses either the
//! intact circuit (realizable instances) or a fault-injected variant
//! (typically unrealizable) as the specification — mirroring how the
//! original benchmark set mixes SAT and UNSAT PEC problems.

use crate::encode::encode_pec;
use crate::netlist::Netlist;
use hqs_base::Rng;
use hqs_core::Dqbf;
use std::collections::HashSet;
use std::fmt;

/// The benchmark families of Table I.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Family {
    /// Ripple-carry adders with black-boxed full-adder cells.
    Adder,
    /// Iterative arbiter bit-cell chain (Dally & Harting \[31\]).
    Bitcell,
    /// Tree-structured ("lookahead") arbiter \[31\].
    Lookahead,
    /// XOR chains (Finkbeiner & Tentrup \[15\]).
    PecXor,
    /// Small multiply-accumulate circuit (ISCAS-style `Z4`).
    Z4,
    /// Magnitude comparator (ISCAS-style `comp`).
    Comp,
    /// 27-channel interrupt-controller-style priority logic (`C432`).
    C432,
}

impl Family {
    /// All families in Table I order.
    pub const ALL: [Family; 7] = [
        Family::Adder,
        Family::Bitcell,
        Family::Lookahead,
        Family::PecXor,
        Family::Z4,
        Family::Comp,
        Family::C432,
    ];

    /// The family name as used in the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Family::Adder => "adder",
            Family::Bitcell => "bitcell",
            Family::Lookahead => "lookahead",
            Family::PecXor => "pec_xor",
            Family::Z4 => "z4",
            Family::Comp => "comp",
            Family::C432 => "C432",
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One generated PEC benchmark instance.
#[derive(Clone, Debug)]
pub struct PecInstance {
    /// Instance name, e.g. `adder_n4_b2_s7_fault`.
    pub name: String,
    /// The family.
    pub family: Family,
    /// The size parameter (bits / cells / channels).
    pub size: u32,
    /// Number of black boxes.
    pub num_boxes: u32,
    /// Whether the specification carries an injected fault.
    pub fault: bool,
    /// The encoded realizability DQBF.
    pub dqbf: Dqbf,
}

/// How large a benchmark run to generate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// A handful of instances per family — smoke tests.
    Smoke,
    /// ~10% of the paper's 1820 instances — CI/laptop runs (default for
    /// the `table1`/`fig4` binaries).
    Ci,
    /// The paper's instance counts (300/300/300/200/240/240/240).
    Paper,
}

impl Scale {
    fn count(self, paper_count: usize) -> usize {
        match self {
            Scale::Smoke => (paper_count / 60).max(4),
            Scale::Ci => paper_count / 10,
            Scale::Paper => paper_count,
        }
    }
}

/// Generates one instance of `family` with the given size, box count and
/// seed; `fault` selects an (almost always unrealizable) mutated
/// specification.
#[must_use]
pub fn generate(family: Family, size: u32, num_boxes: u32, seed: u64, fault: bool) -> PecInstance {
    let mut rng = Rng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let size = size.max(2);
    let builder: fn(u32, &HashSet<u32>) -> Netlist = match family {
        Family::Adder => adder,
        Family::Bitcell => bitcell,
        Family::Lookahead => lookahead,
        Family::PecXor => pec_xor,
        Family::Z4 => z4,
        Family::Comp => comp,
        Family::C432 => c432,
    };
    let cells = cell_count(family, size);
    let num_boxes = num_boxes.clamp(1, cells);
    // Choose distinct cells to replace by boxes.
    let mut boxed: HashSet<u32> = HashSet::new();
    while (boxed.len() as u32) < num_boxes {
        boxed.insert(rng.gen_range(0..cells));
    }
    let implementation = builder(size, &boxed);
    let complete = builder(size, &HashSet::new());
    let spec = if fault {
        // Prefer fault sites on gate signals (inputs would often stay
        // fixable); retry a few times to find a gate.
        let mut site = rng.gen_range(0..complete.signals().len());
        for _ in 0..16 {
            if matches!(complete.signals()[site], crate::netlist::Signal::Gate(_)) {
                break;
            }
            site = rng.gen_range(0..complete.signals().len());
        }
        complete.with_fault(site)
    } else {
        complete
    };
    let dqbf = encode_pec(&spec, &implementation);
    PecInstance {
        name: format!(
            "{family}_n{size}_b{num_boxes}_s{seed}{}",
            if fault { "_fault" } else { "" }
        ),
        family,
        size,
        num_boxes,
        fault,
        dqbf,
    }
}

/// The number of black-boxable cells of a family at a given size.
fn cell_count(family: Family, size: u32) -> u32 {
    match family {
        Family::Adder | Family::Bitcell | Family::Comp | Family::PecXor => size,
        Family::Lookahead => size.next_power_of_two() - 1,
        Family::Z4 => size * size, // partial-product adder cells
        Family::C432 => 3,         // one maskable unit per bank
    }
}

/// Generates the full graded benchmark suite at the given scale, mirroring
/// the family proportions of Table I.
#[must_use]
pub fn benchmark_suite(scale: Scale) -> Vec<PecInstance> {
    let plan: [(Family, usize, &[u32]); 7] = [
        (Family::Adder, 300, &[2, 3, 4, 5, 6]),
        (Family::Bitcell, 300, &[3, 4, 6, 8, 10]),
        (Family::Lookahead, 300, &[4, 8, 12, 16]),
        (Family::PecXor, 200, &[4, 8, 16, 24]),
        (Family::Z4, 240, &[2, 3]),
        (Family::Comp, 240, &[2, 3, 4, 5]),
        (Family::C432, 240, &[3, 6, 9]),
    ];
    let mut instances = Vec::new();
    for (family, paper_count, sizes) in plan {
        let count = scale.count(paper_count);
        for i in 0..count {
            let size = sizes[i % sizes.len()];
            let seed = i as u64;
            // Paper ratio: roughly 3/4 of solved instances are UNSAT.
            let fault = i % 4 != 0;
            let num_boxes = 1 + (i as u32 % 3);
            instances.push(generate(family, size, num_boxes, seed, fault));
        }
    }
    instances
}

// ---------------------------------------------------------------------
// Family builders. Each takes (size, boxed-cells) and returns the netlist
// with the listed cells replaced by black boxes.
// ---------------------------------------------------------------------

/// Ripple-carry adder: cells are full adders. Box cut: (aᵢ, bᵢ, carryᵢ).
fn adder(bits: u32, boxed: &HashSet<u32>) -> Netlist {
    let mut n = Netlist::new("adder");
    let a: Vec<_> = (0..bits).map(|_| n.add_input()).collect();
    let b: Vec<_> = (0..bits).map(|_| n.add_input()).collect();
    let mut carry = n.add_input(); // carry-in
    for i in 0..bits {
        let (ai, bi) = (a[i as usize], b[i as usize]);
        if boxed.contains(&i) {
            let holes = n.add_black_box(vec![ai, bi, carry], 2);
            n.add_output(holes[0]);
            carry = holes[1];
        } else {
            let ab = n.xor(ai, bi);
            let sum = n.xor(ab, carry);
            let ab_and = n.and([ai, bi]);
            let abc = n.and([ab, carry]);
            let cout = n.or([ab_and, abc]);
            n.add_output(sum);
            carry = cout;
        }
    }
    n.add_output(carry);
    n
}

/// Iterative arbiter: cell i computes grantᵢ = reqᵢ ∧ tokenᵢ and passes
/// tokenᵢ₊₁ = tokenᵢ ∧ ¬reqᵢ. Box cut: (reqᵢ, tokenᵢ).
fn bitcell(cells: u32, boxed: &HashSet<u32>) -> Netlist {
    let mut n = Netlist::new("bitcell");
    let reqs: Vec<_> = (0..cells).map(|_| n.add_input()).collect();
    let mut token = n.constant(true);
    for i in 0..cells {
        let req = reqs[i as usize];
        if boxed.contains(&i) {
            let holes = n.add_black_box(vec![req, token], 2);
            n.add_output(holes[0]);
            token = holes[1];
        } else {
            let grant = n.and([req, token]);
            let nreq = n.not(req);
            let pass = n.and([token, nreq]);
            n.add_output(grant);
            token = pass;
        }
    }
    n
}

/// Tree arbiter: a balanced OR tree computes "some request in subtree";
/// grants use path information. Cells are the internal tree nodes
/// (numbered level order). Box cut: the two child "any request" signals.
fn lookahead(width: u32, boxed: &HashSet<u32>) -> Netlist {
    let width = width.next_power_of_two();
    let mut n = Netlist::new("lookahead");
    let reqs: Vec<_> = (0..width).map(|_| n.add_input()).collect();
    // Bottom-up OR tree; each internal node may be boxed.
    let mut level: Vec<usize> = reqs.clone();
    let mut cell = 0u32;
    let mut anys: Vec<Vec<usize>> = vec![level.clone()];
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / 2);
        for pair in level.chunks(2) {
            let combined = if boxed.contains(&cell) {
                n.add_black_box(vec![pair[0], pair[1]], 1)[0]
            } else {
                n.or([pair[0], pair[1]])
            };
            cell += 1;
            next.push(combined);
        }
        anys.push(next.clone());
        level = next;
    }
    // Grant for leaf i: req_i ∧ no request in any subtree left of the
    // path (fixed-priority lookahead arbitration).
    #[allow(clippy::needless_range_loop)] // index walks the tree levels too
    for i in 0..width as usize {
        let mut blockers: Vec<usize> = Vec::new();
        let mut idx = i;
        for lvl in &anys {
            if idx % 2 == 1 {
                blockers.push(lvl[idx - 1]);
            }
            idx /= 2;
        }
        let grant = if blockers.is_empty() {
            reqs[i]
        } else {
            let any_block = if blockers.len() == 1 {
                blockers[0]
            } else {
                n.or(blockers.iter().copied())
            };
            let free = n.not(any_block);
            n.and([reqs[i], free])
        };
        n.add_output(grant);
    }
    n
}

/// XOR chain: zᵢ = zᵢ₋₁ ⊕ xᵢ. Box cut: (zᵢ₋₁, xᵢ).
fn pec_xor(length: u32, boxed: &HashSet<u32>) -> Netlist {
    let mut n = Netlist::new("pec_xor");
    let xs: Vec<_> = (0..=length).map(|_| n.add_input()).collect();
    let mut z = xs[0];
    for i in 0..length {
        let x = xs[(i + 1) as usize];
        z = if boxed.contains(&i) {
            n.add_black_box(vec![z, x], 1)[0]
        } else {
            n.xor(z, x)
        };
    }
    n.add_output(z);
    n
}

/// Multiply-accumulate: out = a·b + c with a `size`×`size` array
/// multiplier; cells are the array's adder positions. Box cut: the cell's
/// partial product, incoming sum and carry.
fn z4(size: u32, boxed: &HashSet<u32>) -> Netlist {
    let w = size as usize;
    let mut n = Netlist::new("z4");
    let a: Vec<_> = (0..w).map(|_| n.add_input()).collect();
    let b: Vec<_> = (0..w).map(|_| n.add_input()).collect();
    let c: Vec<_> = (0..w).map(|_| n.add_input()).collect();
    // Row-by-row array multiplier accumulating into `acc` (2w bits).
    let zero = n.constant(false);
    let mut acc: Vec<usize> = vec![zero; 2 * w];
    let mut cell = 0u32;
    for (i, &bi) in b.iter().enumerate() {
        let mut carry = zero;
        for (j, &aj) in a.iter().enumerate() {
            let pos = i + j;
            let pp = n.and([aj, bi]);
            if boxed.contains(&cell) {
                let holes = n.add_black_box(vec![pp, acc[pos], carry], 2);
                acc[pos] = holes[0];
                carry = holes[1];
            } else {
                let t = n.xor(pp, acc[pos]);
                let sum = n.xor(t, carry);
                let g1 = n.and([pp, acc[pos]]);
                let g2 = n.and([t, carry]);
                let cout = n.or([g1, g2]);
                acc[pos] = sum;
                carry = cout;
            }
            cell += 1;
        }
        // Propagate the row's final carry.
        let pos = i + w;
        let t = n.xor(acc[pos], carry);
        acc[pos] = t;
    }
    // Add c (ripple), propagating the carry through the upper half.
    let mut carry = zero;
    for (j, &cj) in c.iter().enumerate() {
        let t = n.xor(acc[j], cj);
        let sum = n.xor(t, carry);
        let g1 = n.and([acc[j], cj]);
        let g2 = n.and([t, carry]);
        carry = n.or([g1, g2]);
        acc[j] = sum;
    }
    for slot in acc.iter_mut().take(2 * w).skip(w) {
        let sum = n.xor(*slot, carry);
        carry = n.and([*slot, carry]);
        *slot = sum;
    }
    for &bit in &acc {
        n.add_output(bit);
    }
    n
}

/// Magnitude comparator: per-bit cells update (eq, lt) from MSB to LSB.
/// Box cut: (aᵢ, bᵢ, eqᵢ₋₁, ltᵢ₋₁).
fn comp(bits: u32, boxed: &HashSet<u32>) -> Netlist {
    let mut n = Netlist::new("comp");
    let a: Vec<_> = (0..bits).map(|_| n.add_input()).collect();
    let b: Vec<_> = (0..bits).map(|_| n.add_input()).collect();
    let mut eq = n.constant(true);
    let mut lt = n.constant(false);
    for i in (0..bits).rev() {
        let (ai, bi) = (a[i as usize], b[i as usize]);
        if boxed.contains(&i) {
            let holes = n.add_black_box(vec![ai, bi, eq, lt], 2);
            eq = holes[0];
            lt = holes[1];
        } else {
            let x = n.xor(ai, bi);
            let bit_eq = n.not(x);
            let na = n.not(ai);
            let here_lt = n.and([na, bi, eq]);
            eq = n.and([eq, bit_eq]);
            lt = n.or([lt, here_lt]);
        }
    }
    n.add_output(eq);
    n.add_output(lt);
    n
}

/// C432-style priority logic: three banks of `size` request lines with
/// per-bank enables; a bank is active when enabled and requesting, the
/// highest-priority active bank wins, and within it the highest-priority
/// channel. Cells are the per-bank request-mask units. Box cut: the
/// bank's enable plus its request lines.
fn c432(size: u32, boxed: &HashSet<u32>) -> Netlist {
    let channels = size.max(2) as usize;
    let mut n = Netlist::new("c432");
    let enables: Vec<_> = (0..3).map(|_| n.add_input()).collect();
    let requests: Vec<Vec<usize>> = (0..3)
        .map(|_| (0..channels).map(|_| n.add_input()).collect())
        .collect();
    // Per-bank "any enabled request" unit — the boxable cell.
    let mut bank_active = Vec::with_capacity(3);
    for bank in 0..3 {
        let active = if boxed.contains(&(bank as u32)) {
            let mut cut = vec![enables[bank]];
            cut.extend(&requests[bank]);
            n.add_black_box(cut, 1)[0]
        } else {
            let any = n.or(requests[bank].iter().copied());
            n.and([enables[bank], any])
        };
        bank_active.push(active);
    }
    // Fixed bank priority 0 > 1 > 2.
    let n0 = n.not(bank_active[0]);
    let n1 = n.not(bank_active[1]);
    let sel0 = bank_active[0];
    let sel1 = n.and([n0, bank_active[1]]);
    let sel2 = n.and([n0, n1, bank_active[2]]);
    let selects = [sel0, sel1, sel2];
    // Channel outputs: channel c granted iff its bank selected, channel
    // requesting, and no lower-indexed channel of that bank requesting.
    for ch in 0..channels {
        let mut grant_terms = Vec::with_capacity(3);
        for bank in 0..3 {
            let mut term = vec![selects[bank], requests[bank][ch]];
            for &prev in requests[bank].iter().take(ch) {
                let blocked = n.not(prev);
                term.push(blocked);
            }
            grant_terms.push(n.and(term));
        }
        let grant = n.or(grant_terms);
        n.add_output(grant);
    }
    let valid = n.or(selects.to_vec());
    n.add_output(valid);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqs_core::expand::{is_satisfiable_by_expansion, MAX_EXPANSION_UNIVERSALS};
    use hqs_core::{Outcome, Session};

    /// Every family: the carved (fault-free) instance must be realizable.
    #[test]
    fn carved_instances_are_satisfiable() {
        for family in Family::ALL {
            let instance = generate(family, 2, 1, 0, false);
            let result = Session::builder()
                .build()
                .expect("defaults are valid")
                .solve(&instance.dqbf);
            assert_eq!(result, Outcome::Sat, "{}", instance.name);
        }
    }

    /// Small instances agree with the expansion oracle, faulted or not.
    #[test]
    fn small_instances_match_oracle() {
        for family in Family::ALL {
            for fault in [false, true] {
                for seed in 0..3 {
                    let instance = generate(family, 2, 1, seed, fault);
                    if instance.dqbf.universals().len() > MAX_EXPANSION_UNIVERSALS {
                        continue;
                    }
                    let expected = if is_satisfiable_by_expansion(&instance.dqbf) {
                        Outcome::Sat
                    } else {
                        Outcome::Unsat
                    };
                    let got = Session::builder()
                        .build()
                        .expect("defaults are valid")
                        .solve(&instance.dqbf);
                    assert_eq!(got, expected, "{}", instance.name);
                }
            }
        }
    }

    /// The netlists compute what they claim (complete versions).
    #[test]
    fn adder_is_an_adder() {
        let n = adder(3, &HashSet::new());
        for a in 0u32..8 {
            for b in 0u32..8 {
                for cin in 0u32..2 {
                    let mut ins = Vec::new();
                    for i in 0..3 {
                        ins.push(a >> i & 1 == 1);
                    }
                    for i in 0..3 {
                        ins.push(b >> i & 1 == 1);
                    }
                    ins.push(cin == 1);
                    let out = n.eval_complete(&ins);
                    let total = a + b + cin;
                    for (i, &bit) in out.iter().enumerate() {
                        assert_eq!(bit, total >> i & 1 == 1, "a={a} b={b} cin={cin}");
                    }
                }
            }
        }
    }

    #[test]
    fn bitcell_grants_first_requester() {
        let n = bitcell(4, &HashSet::new());
        let out = n.eval_complete(&[false, true, true, false]);
        assert_eq!(out, vec![false, true, false, false]);
        let out = n.eval_complete(&[false, false, false, false]);
        assert_eq!(out, vec![false, false, false, false]);
    }

    #[test]
    fn lookahead_matches_priority_semantics() {
        let n = lookahead(4, &HashSet::new());
        for bits in 0u32..16 {
            let ins: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let out = n.eval_complete(&ins);
            let first = ins.iter().position(|&r| r);
            for (i, &g) in out.iter().enumerate() {
                assert_eq!(g, Some(i) == first, "bits {bits:04b}");
            }
        }
    }

    #[test]
    fn comp_compares() {
        let n = comp(3, &HashSet::new());
        for a in 0u32..8 {
            for b in 0u32..8 {
                let mut ins = Vec::new();
                for i in 0..3 {
                    ins.push(a >> i & 1 == 1);
                }
                for i in 0..3 {
                    ins.push(b >> i & 1 == 1);
                }
                let out = n.eval_complete(&ins);
                assert_eq!(out[0], a == b, "eq a={a} b={b}");
                assert_eq!(out[1], a < b, "lt a={a} b={b}");
            }
        }
    }

    #[test]
    fn z4_multiplies_and_accumulates() {
        let n = z4(2, &HashSet::new());
        for a in 0u32..4 {
            for b in 0u32..4 {
                for c in 0u32..4 {
                    let mut ins = Vec::new();
                    for i in 0..2 {
                        ins.push(a >> i & 1 == 1);
                    }
                    for i in 0..2 {
                        ins.push(b >> i & 1 == 1);
                    }
                    for i in 0..2 {
                        ins.push(c >> i & 1 == 1);
                    }
                    let out = n.eval_complete(&ins);
                    let total = a * b + c;
                    for (i, &bit) in out.iter().enumerate() {
                        assert_eq!(bit, total >> i & 1 == 1, "a={a} b={b} c={c} bit {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn c432_priority_logic() {
        let n = c432(2, &HashSet::new());
        // enables: bank0 off, bank1 on, bank2 on; requests: bank1 ch1,
        // bank2 ch0 → bank1 wins, channel 1 granted.
        let ins = vec![
            false, true, true, // enables
            true, false, // bank0 (ignored: disabled)
            false, true, // bank1
            true, false, // bank2
        ];
        let out = n.eval_complete(&ins);
        assert_eq!(out, vec![false, true, true]); // ch0, ch1, valid
    }

    #[test]
    fn suite_counts_follow_scale() {
        let smoke = benchmark_suite(Scale::Smoke);
        assert!(smoke.len() >= 28);
        assert!(smoke.iter().any(|i| i.fault));
        assert!(smoke.iter().any(|i| !i.fault));
        let families: HashSet<Family> = smoke.iter().map(|i| i.family).collect();
        assert_eq!(families.len(), 7);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(Family::Adder, 4, 2, 11, true);
        let b = generate(Family::Adder, 4, 2, 11, true);
        assert_eq!(a.name, b.name);
        assert_eq!(
            a.dqbf.matrix().clauses().len(),
            b.dqbf.matrix().clauses().len()
        );
        assert_eq!(a.dqbf.universals(), b.dqbf.universals());
    }
}
