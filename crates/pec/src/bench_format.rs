//! The ISCAS `.bench` netlist format.
//!
//! `.bench` is the textual format the ISCAS-85/89 benchmark circuits are
//! distributed in (and the namesake of the paper's `C432` family):
//!
//! ```text
//! # comment
//! INPUT(G1)
//! OUTPUT(G22)
//! G10 = NAND(G1, G3)
//! G22 = NOT(G10)
//! ```
//!
//! Supported gate types: `AND`, `NAND`, `OR`, `NOR`, `XOR`, `XNOR`,
//! `NOT`, `BUF`/`BUFF`. Parsing produces a [`Netlist`]; together with
//! [`Netlist::carve_gates`] this allows building PEC instances from real
//! circuit files.

use crate::netlist::{GateOp, Netlist, Signal, SignalId};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// Errors produced while parsing a `.bench` document.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BenchError {
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// A gate references a signal that is never defined.
    UndefinedSignal {
        /// The referenced name.
        name: String,
    },
    /// A signal is defined twice.
    Redefined {
        /// 1-based line number.
        line: usize,
        /// The redefined name.
        name: String,
    },
    /// An unknown gate type.
    UnknownGate {
        /// 1-based line number.
        line: usize,
        /// The gate keyword.
        gate: String,
    },
    /// The definitions contain a combinational cycle.
    Cyclic,
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::BadLine { line } => write!(f, "line {line}: malformed"),
            BenchError::UndefinedSignal { name } => {
                write!(f, "signal {name} is referenced but never defined")
            }
            BenchError::Redefined { line, name } => {
                write!(f, "line {line}: signal {name} defined twice")
            }
            BenchError::UnknownGate { line, gate } => {
                write!(f, "line {line}: unknown gate type {gate}")
            }
            BenchError::Cyclic => write!(f, "combinational cycle in definitions"),
        }
    }
}

impl std::error::Error for BenchError {}

#[derive(Clone, Debug)]
struct GateDef {
    line: usize,
    kind: String,
    inputs: Vec<String>,
}

/// Parses a `.bench` document into a [`Netlist`].
///
/// Signal names are resolved to dense ids; gates may be declared in any
/// order (the parser topologically sorts them).
///
/// # Errors
///
/// Returns a [`BenchError`] on malformed lines, undefined or redefined
/// signals, unknown gate types, or cyclic definitions.
pub fn parse_bench(text: &str) -> Result<Netlist, BenchError> {
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut defs: HashMap<String, GateDef> = HashMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = parse_call(line, "INPUT") {
            inputs.push(rest);
            continue;
        }
        if let Some(rest) = parse_call(line, "OUTPUT") {
            outputs.push(rest);
            continue;
        }
        // NAME = GATE(arg, ...)
        let Some((name, rhs)) = line.split_once('=') else {
            return Err(BenchError::BadLine { line: line_no });
        };
        let name = name.trim().to_string();
        let rhs = rhs.trim();
        let Some((kind, args)) = rhs.split_once('(') else {
            return Err(BenchError::BadLine { line: line_no });
        };
        let Some(args) = args.strip_suffix(')') else {
            return Err(BenchError::BadLine { line: line_no });
        };
        let gate = GateDef {
            line: line_no,
            kind: kind.trim().to_ascii_uppercase(),
            inputs: args
                .split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect(),
        };
        if defs.insert(name.clone(), gate).is_some() {
            return Err(BenchError::Redefined {
                line: line_no,
                name,
            });
        }
    }

    let mut netlist = Netlist::new("bench");
    let mut ids: HashMap<String, SignalId> = HashMap::new();
    for name in &inputs {
        if defs.contains_key(name) {
            return Err(BenchError::Redefined {
                line: 0,
                name: name.clone(),
            });
        }
        ids.insert(name.clone(), netlist.add_input());
    }
    // Topological construction with cycle detection.
    fn build(
        name: &str,
        defs: &HashMap<String, GateDef>,
        ids: &mut HashMap<String, SignalId>,
        netlist: &mut Netlist,
        visiting: &mut Vec<String>,
    ) -> Result<SignalId, BenchError> {
        if let Some(&id) = ids.get(name) {
            return Ok(id);
        }
        if visiting.iter().any(|v| v == name) {
            return Err(BenchError::Cyclic);
        }
        let Some(def) = defs.get(name) else {
            return Err(BenchError::UndefinedSignal {
                name: name.to_string(),
            });
        };
        visiting.push(name.to_string());
        let mut fanins = Vec::with_capacity(def.inputs.len());
        for input in &def.inputs {
            fanins.push(build(input, defs, ids, netlist, visiting)?);
        }
        visiting.pop();
        let id = match (def.kind.as_str(), fanins.as_slice()) {
            ("AND", _) => netlist.and(fanins.iter().copied()),
            ("OR", _) => netlist.or(fanins.iter().copied()),
            ("NAND", _) => {
                let g = netlist.and(fanins.iter().copied());
                netlist.not(g)
            }
            ("NOR", _) => {
                let g = netlist.or(fanins.iter().copied());
                netlist.not(g)
            }
            ("XOR", [a, b]) => netlist.xor(*a, *b),
            ("XNOR", [a, b]) => {
                let g = netlist.xor(*a, *b);
                netlist.not(g)
            }
            ("NOT", [a]) => netlist.not(*a),
            ("BUF" | "BUFF", [a]) => *a,
            _ => {
                return Err(BenchError::UnknownGate {
                    line: def.line,
                    gate: format!("{}({})", def.kind, def.inputs.len()),
                })
            }
        };
        ids.insert(name.to_string(), id);
        Ok(id)
    }
    let def_names: Vec<String> = defs.keys().cloned().collect();
    let mut visiting = Vec::new();
    for name in def_names {
        build(&name, &defs, &mut ids, &mut netlist, &mut visiting)?;
    }
    for name in &outputs {
        let Some(&id) = ids.get(name) else {
            return Err(BenchError::UndefinedSignal { name: name.clone() });
        };
        netlist.add_output(id);
    }
    Ok(netlist)
}

fn parse_call(line: &str, keyword: &str) -> Option<String> {
    let rest = line.strip_prefix(keyword)?.trim();
    let inner = rest.strip_prefix('(')?.strip_suffix(')')?;
    Some(inner.trim().to_string())
}

/// Renders a (complete) [`Netlist`] as a `.bench` document.
///
/// Signals get synthetic names `I<k>` (inputs) and `S<id>` (gates); the
/// output is parseable by [`parse_bench`].
///
/// # Panics
///
/// Panics if the netlist contains black boxes.
#[must_use]
pub fn write_bench(netlist: &Netlist) -> String {
    assert!(
        netlist.boxes().is_empty(),
        "bench format has no black-box notion"
    );
    let mut out = String::new();
    let _ = writeln!(out, "# {}", netlist.name());
    let name_of = |id: SignalId| -> String {
        match netlist.signals()[id] {
            Signal::Input(k) => format!("I{k}"),
            _ => format!("S{id}"),
        }
    };
    for &input in netlist.inputs() {
        let _ = writeln!(out, "INPUT({})", name_of(input));
    }
    for &output in netlist.outputs() {
        let _ = writeln!(out, "OUTPUT({})", name_of(output));
    }
    for (id, signal) in netlist.signals().iter().enumerate() {
        let Signal::Gate(op) = signal else { continue };
        let (kind, fanins): (&str, Vec<SignalId>) = match op {
            GateOp::And(ins) => ("AND", ins.clone()),
            GateOp::Or(ins) => ("OR", ins.clone()),
            GateOp::Xor(a, b) => ("XOR", vec![*a, *b]),
            GateOp::Not(a) => ("NOT", vec![*a]),
            GateOp::Const(value) => {
                // No constant in .bench: encode as x AND NOT x / x OR NOT x
                // over the first input if one exists; otherwise skip (the
                // generators never emit dangling constants).
                let Some(&first) = netlist.inputs().first() else {
                    continue;
                };
                let kind = if *value { "XNOR" } else { "XOR" };
                let _ = writeln!(
                    out,
                    "{} = {kind}({}, {})",
                    name_of(id),
                    name_of(first),
                    name_of(first)
                );
                continue;
            }
        };
        let args: Vec<String> = fanins.into_iter().map(name_of).collect();
        let _ = writeln!(out, "{} = {kind}({})", name_of(id), args.join(", "));
    }
    out
}

/// The ISCAS-85 c17 circuit (six NAND gates) — the classic smoke-test
/// netlist, embedded for examples and tests.
pub const C17: &str = "\
# c17 (ISCAS-85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_c17() {
        let netlist = parse_bench(C17).unwrap();
        assert_eq!(netlist.inputs().len(), 5);
        assert_eq!(netlist.outputs().len(), 2);
        // c17 truth check at a known point: all inputs 0. The first-level
        // NANDs output 1, so both output NANDs see two 1s and emit 0.
        let out = netlist.eval_complete(&[false; 5]);
        assert_eq!(out, vec![false, false]);
        // And a second point: inputs (1,0,1,1,1).
        let out = netlist.eval_complete(&[true, false, true, true, true]);
        // 10 = !(1&3)=!(1∧1)=0; 11 = !(3&6)=0; 16 = !(2&11)=!(0∧0)=1;
        // 19 = !(11&7)=!(0∧1)=1; 22 = !(10&16)=!(0∧1)=1; 23 = !(16&19)=0.
        assert_eq!(out, vec![true, false]);
    }

    #[test]
    fn roundtrip_through_writer() {
        let original = parse_bench(C17).unwrap();
        let text = write_bench(&original);
        let again = parse_bench(&text).unwrap();
        for bits in 0u32..32 {
            let ins: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(
                original.eval_complete(&ins),
                again.eval_complete(&ins),
                "bits {bits:05b}"
            );
        }
    }

    #[test]
    fn out_of_order_definitions() {
        let text = "INPUT(a)\nOUTPUT(z)\nz = NOT(m)\nm = BUF(a)\n";
        let netlist = parse_bench(text).unwrap();
        assert_eq!(netlist.eval_complete(&[true]), vec![false]);
    }

    #[test]
    fn gate_variants() {
        let text = "INPUT(a)\nINPUT(b)\nOUTPUT(o1)\nOUTPUT(o2)\nOUTPUT(o3)\n\
                    o1 = XNOR(a, b)\no2 = NOR(a, b)\no3 = OR(a, b)\n";
        let n = parse_bench(text).unwrap();
        assert_eq!(n.eval_complete(&[true, true]), vec![true, false, true]);
        assert_eq!(n.eval_complete(&[false, false]), vec![true, true, false]);
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            parse_bench("garbage\n"),
            Err(BenchError::BadLine { line: 1 })
        ));
        assert!(matches!(
            parse_bench("INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n"),
            Err(BenchError::UnknownGate { .. })
        ));
        assert!(matches!(
            parse_bench("OUTPUT(z)\nz = NOT(q)\n"),
            Err(BenchError::UndefinedSignal { .. })
        ));
        assert!(matches!(
            parse_bench("INPUT(a)\nz = NOT(a)\nz = BUF(a)\n"),
            Err(BenchError::Redefined { .. })
        ));
        assert!(matches!(
            parse_bench("INPUT(i)\nOUTPUT(a)\na = NOT(b)\nb = NOT(a)\n"),
            Err(BenchError::Cyclic)
        ));
    }
}
