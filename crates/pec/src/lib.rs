//! Partial equivalence checking (PEC) benchmarks for DQBF solvers.
//!
//! The HQS paper evaluates on 1820 PEC instances: *incomplete* gate-level
//! circuits containing unimplemented parts ("black boxes"), asked whether
//! the boxes can be implemented so that the circuit matches a specification
//! (the *realizability* / partial-equivalence-checking problem \[20\], \[32\]).
//! With more than one black box, exact dependencies of each box on its own
//! input cone cannot be expressed in QBF — DQBF is needed \[10\].
//!
//! The original DQDIMACS files are not distributed, so this crate
//! regenerates the seven circuit families as parameterised netlists:
//!
//! | family      | circuit                                        |
//! |-------------|------------------------------------------------|
//! | `adder`     | ripple-carry adders, black-boxed full adders   |
//! | `bitcell`   | iterative arbiter bit-cell chain (\[31\])        |
//! | `lookahead` | tree ("lookahead") arbiter (\[31\])              |
//! | `pec_xor`   | XOR chains (\[15\])                              |
//! | `z4`        | small multiply-accumulate (ISCAS-ish Z4)       |
//! | `comp`      | n-bit magnitude comparator (ISCAS-ish `comp`)  |
//! | `c432`      | 27-channel interrupt-controller-style priority |
//!
//! Satisfiable instances are produced by carving boxes out of a complete
//! circuit (a realization exists by construction); unsatisfiable ones by
//! additionally mutating the specification outside the boxes' reach.
//!
//! # Examples
//!
//! ```
//! use hqs_pec::{families, Family, Scale};
//! use hqs_core::{Outcome, Session};
//!
//! let instance = families::generate(Family::PecXor, 4, 2, 0, false);
//! let mut session = Session::builder().build().expect("defaults are valid");
//! assert_eq!(session.solve(&instance.dqbf), Outcome::Sat);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_format;
pub mod encode;
pub mod families;
pub mod netlist;

pub use families::{benchmark_suite, Family, PecInstance, Scale};
pub use netlist::{BlackBox, GateOp, Netlist, Signal, SignalId};
