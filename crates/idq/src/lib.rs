//! An instantiation-based DQBF solver — the iDQ-style baseline.
//!
//! iDQ (Fröhlich, Kovásznai, Biere, Veith: *iDQ: Instantiation-Based DQBF
//! Solving*, POS 2014) was the only publicly available DQBF solver when the
//! HQS paper was written and is its experimental comparator. iDQ grounds
//! the DQBF clause set lazily, Inst-Gen style, and decides the instances
//! with a SAT solver.
//!
//! This crate reimplements the approach as a counterexample-guided
//! instantiation loop with the same defining characteristics
//! (see `DESIGN.md` for the substitution note):
//!
//! * the matrix is *instantiated* under a growing set `Ω` of universal
//!   assignments; an existential `y` instantiated under `ω` is keyed by
//!   the restriction `ω|D_y`, so instances are shared exactly when the
//!   Skolem function must agree;
//! * the propositional *abstraction* (all instantiated clauses) goes to an
//!   incremental CDCL solver — **UNSAT ⇒ the DQBF is unsatisfied** (the
//!   abstraction is a subset of the full expansion);
//! * a SAT answer yields candidate Skolem values on the sampled points; a
//!   second SAT query searches a universal assignment falsifying the
//!   matrix under every candidate-consistent choice — **UNSAT ⇒ the DQBF
//!   is satisfied**, otherwise the counterexample joins `Ω`.
//!
//! Like iDQ, the worst case instantiates the full (exponential) expansion,
//! which is why HQS beats it so clearly on the PEC families — and like
//! iDQ, instances whose abstraction is unsatisfiable after the very first
//! instantiation round are solved with a single cheap SAT call (the
//! paper's `comp`/`C432` observation).
//!
//! # Examples
//!
//! ```
//! use hqs_base::Lit;
//! use hqs_core::{Dqbf, DqbfResult};
//! use hqs_idq::InstantiationSolver;
//!
//! let mut dqbf = Dqbf::new();
//! let x1 = dqbf.add_universal();
//! let x2 = dqbf.add_universal();
//! let y = dqbf.add_existential([x1]);
//! // y ↔ x2 with y blind to x2: unsatisfiable.
//! dqbf.add_clause([Lit::positive(x2), Lit::negative(y)]);
//! dqbf.add_clause([Lit::negative(x2), Lit::positive(y)]);
//! assert_eq!(InstantiationSolver::new().solve(&dqbf), DqbfResult::Unsat);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hqs_base::{Budget, Lit, Var};
use hqs_core::{Dqbf, DqbfResult};
use hqs_sat::{SolveResult, Solver};
use std::collections::HashMap;

/// Counters describing one [`InstantiationSolver::solve`] call.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct InstStats {
    /// Refinement iterations (abstraction/counterexample rounds).
    pub iterations: u64,
    /// Distinct existential instances created.
    pub instances: usize,
    /// Ground clauses added to the abstraction.
    pub ground_clauses: u64,
    /// SAT calls issued.
    pub sat_calls: u64,
}

/// The instantiation-based DQBF solver.
///
/// See the [crate docs](crate) for the algorithm and an example.
#[derive(Debug, Default)]
pub struct InstantiationSolver {
    budget: Budget,
    stats: InstStats,
}

/// Packed restriction of a universal assignment to a dependency set
/// (values in dependency-iteration order, 64 per block).
type RestrictionKey = Vec<u64>;

impl InstantiationSolver {
    /// Creates a solver with an unlimited budget.
    #[must_use]
    pub fn new() -> Self {
        InstantiationSolver::default()
    }

    /// Sets the resource budget. The node limit bounds the number of
    /// ground clauses in the abstraction (the solver's dominating
    /// allocation, analogous to the paper's memory limit).
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Statistics of the most recent solve.
    #[must_use]
    pub fn stats(&self) -> InstStats {
        self.stats
    }

    /// Decides `dqbf`.
    pub fn solve(&mut self, dqbf: &Dqbf) -> DqbfResult {
        self.stats = InstStats::default();
        let mut dqbf = dqbf.clone();
        dqbf.bind_free_vars();
        let universals: Vec<Var> = dqbf.universals().to_vec();

        // Abstraction state.
        let mut abstraction = Solver::builder()
            .budget(self.budget.clone())
            .build()
            .expect("default SAT configuration is valid");
        let mut instances: HashMap<(Var, RestrictionKey), Var> = HashMap::new();
        let mut seed = vec![false; universals.len()];
        loop {
            self.stats.iterations += 1;
            self.instantiate(&dqbf, &universals, &seed, &mut abstraction, &mut instances);
            self.stats.instances = instances.len();

            if let Some(e) = self.budget.check(self.stats.ground_clauses as usize) {
                return DqbfResult::Limit(e);
            }
            self.stats.sat_calls += 1;
            match abstraction.solve(&[]) {
                SolveResult::Unsat => return DqbfResult::Unsat,
                SolveResult::Sat => {}
                SolveResult::Unknown => return DqbfResult::Limit(self.budget.stop_reason()),
            }
            let model = abstraction.model();

            // Counterexample query: find ω falsifying the matrix under every
            // candidate-consistent existential choice.
            self.stats.sat_calls += 1;
            match self.find_counterexample(&dqbf, &universals, &instances, &model) {
                Ok(None) => return DqbfResult::Sat,
                Ok(Some(omega)) => seed = omega,
                Err(limit) => return DqbfResult::Limit(limit),
            }
            if self.budget.stop_requested() {
                return DqbfResult::Limit(self.budget.stop_reason());
            }
        }
    }

    /// Adds the instantiation of every matrix clause under `omega` to the
    /// abstraction.
    fn instantiate(
        &mut self,
        dqbf: &Dqbf,
        universals: &[Var],
        omega: &[bool],
        abstraction: &mut Solver,
        instances: &mut HashMap<(Var, RestrictionKey), Var>,
    ) {
        let position: HashMap<Var, usize> = universals
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, i))
            .collect();
        'clauses: for clause in dqbf.matrix().clauses() {
            let mut ground: Vec<Lit> = Vec::with_capacity(clause.len());
            for &lit in clause.lits() {
                if let Some(&pos) = position.get(&lit.var()) {
                    if omega[pos] != lit.is_negative() {
                        continue 'clauses; // satisfied under ω
                    }
                } else {
                    let deps = dqbf.dependencies(lit.var()).expect("free vars bound");
                    let mut key: RestrictionKey = vec![0; deps.len().div_ceil(64).max(1)];
                    for (i, dep) in deps.iter().enumerate() {
                        if omega[position[&dep]] {
                            key[i / 64] |= 1 << (i % 64);
                        }
                    }
                    let instance = *instances
                        .entry((lit.var(), key))
                        .or_insert_with(|| abstraction.new_var());
                    ground.push(Lit::new(instance, lit.is_negative()));
                }
            }
            abstraction.add_clause(ground);
            self.stats.ground_clauses += 1;
        }
    }

    /// Searches for a universal assignment under which the matrix is
    /// falsified by *some* existential assignment consistent with the
    /// candidate model. `None` means the candidate extends to total Skolem
    /// functions and the DQBF is satisfied.
    fn find_counterexample(
        &mut self,
        dqbf: &Dqbf,
        universals: &[Var],
        instances: &HashMap<(Var, RestrictionKey), Var>,
        model: &hqs_base::Assignment,
    ) -> Result<Option<Vec<bool>>, hqs_base::Exhaustion> {
        let mut query = Solver::builder()
            .budget(self.budget.clone())
            .build()
            .expect("default SAT configuration is valid");
        // Variable space: reuse the DQBF's own variables; selectors
        // appended after.
        query.ensure_vars(dqbf.num_vars());

        // ¬φ: at least one clause falsified; selector s_c forces every
        // literal of clause c false.
        let mut selectors: Vec<Lit> = Vec::with_capacity(dqbf.matrix().clauses().len());
        for clause in dqbf.matrix().clauses() {
            let s = Lit::positive(query.new_var());
            for &lit in clause.lits() {
                query.add_clause([!s, !lit]);
            }
            selectors.push(s);
        }
        query.add_clause(selectors);

        // Candidate consistency: if ω matches a sampled restriction key of
        // y, then y takes the candidate value.
        for ((y, key), &instance) in instances {
            let deps = dqbf.dependencies(*y).expect("existential");
            let value = model.satisfies(Lit::positive(instance));
            let mut clause: Vec<Lit> = Vec::with_capacity(deps.len() + 1);
            for (i, dep) in deps.iter().enumerate() {
                let bit = key[i / 64] >> (i % 64) & 1 == 1;
                // Literal true when ω differs from the key at `dep`.
                clause.push(Lit::new(dep, bit));
            }
            clause.push(Lit::new(*y, !value));
            query.add_clause(clause);
        }

        match query.solve(&[]) {
            SolveResult::Sat => Ok(Some(
                universals
                    .iter()
                    .map(|&x| query.model_value(x).unwrap_or(false))
                    .collect(),
            )),
            SolveResult::Unsat => Ok(None),
            SolveResult::Unknown => Err(self.budget.stop_reason()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqs_core::expand::is_satisfiable_by_expansion;

    fn example_one(matching: bool) -> Dqbf {
        let mut d = Dqbf::new();
        let x1 = d.add_universal();
        let x2 = d.add_universal();
        let y1 = d.add_existential([x1]);
        let y2 = d.add_existential([x2]);
        let pairs = if matching {
            [(x1, y1), (x2, y2)]
        } else {
            [(x2, y1), (x1, y2)]
        };
        for (x, y) in pairs {
            d.add_clause([Lit::positive(x), Lit::negative(y)]);
            d.add_clause([Lit::negative(x), Lit::positive(y)]);
        }
        d
    }

    #[test]
    fn example_one_both_ways() {
        assert_eq!(
            InstantiationSolver::new().solve(&example_one(true)),
            DqbfResult::Sat
        );
        assert_eq!(
            InstantiationSolver::new().solve(&example_one(false)),
            DqbfResult::Unsat
        );
    }

    #[test]
    fn trivially_unsat_matrix_needs_one_round() {
        // Matrix contains complementary units on an existential: the very
        // first abstraction is UNSAT — the behaviour the paper notes for
        // comp/C432 ("only a single SAT solver call").
        let mut d = Dqbf::new();
        let x = d.add_universal();
        let y = d.add_existential([x]);
        d.add_clause([Lit::positive(y)]);
        d.add_clause([Lit::negative(y)]);
        let mut solver = InstantiationSolver::new();
        assert_eq!(solver.solve(&d), DqbfResult::Unsat);
        assert_eq!(solver.stats().iterations, 1);
        assert_eq!(solver.stats().sat_calls, 1);
    }

    #[test]
    fn universal_tautology_is_sat() {
        let mut d = Dqbf::new();
        let x = d.add_universal();
        d.add_clause([Lit::positive(x), Lit::negative(x)]);
        assert_eq!(InstantiationSolver::new().solve(&d), DqbfResult::Sat);
    }

    #[test]
    fn universal_unit_is_unsat() {
        let mut d = Dqbf::new();
        let x = d.add_universal();
        d.add_clause([Lit::positive(x)]);
        assert_eq!(InstantiationSolver::new().solve(&d), DqbfResult::Unsat);
    }

    #[test]
    fn budget_limits_ground_clauses() {
        let mut d = Dqbf::new();
        let xs: Vec<Var> = (0..8).map(|_| d.add_universal()).collect();
        // An instance that needs many refinements: y_i must equal x_i.
        for &x in &xs {
            let y = d.add_existential([x]);
            d.add_clause([Lit::positive(x), Lit::negative(y)]);
            d.add_clause([Lit::negative(x), Lit::positive(y)]);
        }
        let mut solver = InstantiationSolver::new();
        solver.set_budget(Budget::new().with_node_limit(4));
        assert!(matches!(solver.solve(&d), DqbfResult::Limit(_)));
    }

    /// Agreement with the expansion oracle on random small DQBFs.
    #[test]
    fn agrees_with_expansion_oracle() {
        use hqs_base::Rng;
        let mut rng = Rng::seed_from_u64(777);
        for round in 0..80 {
            let mut d = Dqbf::new();
            let nu = rng.gen_range(1..=4u32);
            let ne = rng.gen_range(1..=4u32);
            let xs: Vec<Var> = (0..nu).map(|_| d.add_universal()).collect();
            let mut all: Vec<Var> = xs.clone();
            for _ in 0..ne {
                let deps: Vec<Var> = xs.iter().copied().filter(|_| rng.gen_bool(0.5)).collect();
                all.push(d.add_existential(deps));
            }
            for _ in 0..rng.gen_range(2..=9usize) {
                let len = rng.gen_range(1..=3usize);
                let lits: Vec<Lit> = (0..len)
                    .map(|_| Lit::new(all[rng.gen_range(0..all.len())], rng.gen_bool(0.5)))
                    .collect();
                d.add_clause(lits);
            }
            let expected = if is_satisfiable_by_expansion(&d) {
                DqbfResult::Sat
            } else {
                DqbfResult::Unsat
            };
            assert_eq!(
                InstantiationSolver::new().solve(&d),
                expected,
                "round {round}: {d:?}"
            );
        }
    }

    /// HQS and the instantiation baseline agree on random instances
    /// (cross-solver integration check).
    #[test]
    fn agrees_with_hqs() {
        use hqs_base::Rng;
        use hqs_core::{Outcome, Session};
        let mut rng = Rng::seed_from_u64(888);
        for _ in 0..40 {
            let mut d = Dqbf::new();
            let nu = rng.gen_range(1..=5u32);
            let xs: Vec<Var> = (0..nu).map(|_| d.add_universal()).collect();
            let mut all: Vec<Var> = xs.clone();
            for _ in 0..rng.gen_range(1..=4u32) {
                let deps: Vec<Var> = xs.iter().copied().filter(|_| rng.gen_bool(0.4)).collect();
                all.push(d.add_existential(deps));
            }
            for _ in 0..rng.gen_range(2..=10usize) {
                let len = rng.gen_range(1..=3usize);
                let lits: Vec<Lit> = (0..len)
                    .map(|_| Lit::new(all[rng.gen_range(0..all.len())], rng.gen_bool(0.5)))
                    .collect();
                d.add_clause(lits);
            }
            let idq = Outcome::from(InstantiationSolver::new().solve(&d));
            let hqs = Session::builder()
                .build()
                .expect("defaults are valid")
                .solve(&d);
            assert_eq!(idq, hqs, "{d:?}");
        }
    }
}
