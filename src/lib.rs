//! HQS — solving DQBF through quantifier elimination.
//!
//! This is the facade crate of the workspace: it re-exports the public API
//! of every layer so applications can depend on a single crate. The
//! implementation reproduces, from scratch in Rust, the DQBF solver HQS of
//!
//! > K. Gitina, R. Wimmer, S. Reimer, M. Sauer, C. Scholl, B. Becker:
//! > *Solving DQBF Through Quantifier Elimination*, DATE 2015,
//!
//! together with every substrate the paper relies on: a CDCL SAT solver,
//! a partial MaxSAT solver, an AIG package with syntactic unit/pure
//! detection, an AIGSOLVE-style QBF solver, an iDQ-style instantiation
//! baseline, and the PEC benchmark circuit families of the evaluation.
//!
//! # Quickstart
//!
//! Solve through a [`Session`], the blessed entry point — it validates
//! the configuration and carries the observer/cancellation wiring:
//!
//! ```
//! use hqs::{Dqbf, Outcome, Session};
//! use hqs::base::Lit;
//!
//! // Example 1 of the paper: ∀x₁∀x₂ ∃y₁(x₁) ∃y₂(x₂) : (y₁↔x₁) ∧ (y₂↔x₂).
//! let mut dqbf = Dqbf::new();
//! let x1 = dqbf.add_universal();
//! let x2 = dqbf.add_universal();
//! let y1 = dqbf.add_existential([x1]);
//! let y2 = dqbf.add_existential([x2]);
//! for (x, y) in [(x1, y1), (x2, y2)] {
//!     dqbf.add_clause([Lit::positive(x), Lit::negative(y)]);
//!     dqbf.add_clause([Lit::negative(x), Lit::positive(y)]);
//! }
//! let mut session = Session::builder().build().expect("defaults are valid");
//! assert_eq!(session.solve(&dqbf), Outcome::Sat);
//! ```
//!
//! # Layer map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`base`] | `hqs-base` | variables, literals, bitsets, budgets |
//! | [`cnf`] | `hqs-cnf` | clauses, CNF, (D)QDIMACS I/O |
//! | [`sat`] | `hqs-sat` | CDCL SAT solver with DRAT proof logging |
//! | [`proof`] | `hqs-proof` | independent DRAT/RUP proof checker |
//! | [`maxsat`] | `hqs-maxsat` | partial MaxSAT (totalizer) |
//! | [`aig`] | `hqs-aig` | AIG manager, quantification, unit/pure, FRAIG |
//! | [`qbf`] | `hqs-qbf` | AIG-based QBF solver (AIGSOLVE role) |
//! | [`core`] | `hqs-core` | the HQS DQBF solver itself |
//! | [`obs`] | `hqs-obs` | observability: metrics, phase spans, exporters |
//! | [`idq`] | `hqs-idq` | instantiation-based baseline (iDQ role) |
//! | [`pec`] | `hqs-pec` | PEC benchmark circuits and encoding |
//! | [`engine`] | `hqs-engine` | parallel portfolio racing + batch scheduler |
//! | [`serve`] | `hqs-serve` | long-lived solver service with warm-state reuse |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hqs_aig as aig;
pub use hqs_base as base;
pub use hqs_cnf as cnf;
pub use hqs_core as core;
pub use hqs_engine as engine;
pub use hqs_idq as idq;
pub use hqs_maxsat as maxsat;
pub use hqs_obs as obs;
pub use hqs_pec as pec;
pub use hqs_proof as proof;
pub use hqs_qbf as qbf;
pub use hqs_sat as sat;
pub use hqs_serve as serve;

pub use hqs_core::{
    CertifiedOutcome, CertifyError, ConfigError, Dqbf, DqbfResult, ElimStrategy, HqsConfig,
    HqsConfigBuilder, HqsStats, Outcome, QbfBackend, RefutationCertificate, Session,
    SessionBuilder, SkolemCertificate,
};
pub use hqs_idq::InstantiationSolver;
pub use hqs_qbf::{QbfResult, QbfSolver};
