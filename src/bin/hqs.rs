//! The `hqs` command-line DQBF solver.
//!
//! ```text
//! hqs [OPTIONS] <file.dqdimacs>
//!
//! OPTIONS:
//!   --solver hqs|idq|expansion   decision procedure (default: hqs)
//!   --strategy maxsat|all        universal-elimination strategy
//!   --qbf-backend elim|search    QBF engine for the linearised remainder
//!   --no-preprocess              skip CNF preprocessing
//!   --no-gates                   skip Tseitin gate detection
//!   --no-unit-pure               skip Theorem-5/6 elimination
//!   --initial-sat                up-front SAT call on the matrix
//!   --subsume                    subsumption/self-subsumption preprocessing
//!   --dynamic-order              recompute elimination order per step
//!   --paranoid                   audit solver-state invariants after
//!                                every main-loop step (debug builds
//!                                always audit at mutation sites)
//!   --fraig <nodes>              SAT-sweep cones above this size
//!   --timeout <seconds>          wall-clock budget
//!   --node-limit <n>             AIG-node / ground-clause budget
//!   --certify                    certify the verdict: extract+verify Skolem
//!                                functions on SAT, an expansion trace + DRAT
//!                                refutation (checked by the independent
//!                                hqs-proof crate) on UNSAT; internal SAT
//!                                calls of the HQS pipeline are proof-logged
//!                                too (small instances)
//!   --proof <file>               with --certify: write the DRAT refutation
//!                                of an UNSAT verdict to this file
//!   --stats                      print pipeline statistics
//! ```
//!
//! Exit codes follow the (Q)DIMACS convention: 10 = SAT, 20 = UNSAT,
//! 1 = error/unknown.

#![forbid(unsafe_code)]

use hqs::base::Budget;
use hqs::cnf::dimacs;
use hqs::core::expand;
use hqs::core::refute;
use hqs::core::skolem;
use hqs::{Dqbf, DqbfResult, ElimStrategy, HqsConfig, HqsSolver, InstantiationSolver, QbfBackend};
use std::process::ExitCode;
use std::time::Duration;

#[derive(Debug)]
struct Options {
    file: Option<String>,
    solver: SolverChoice,
    config: HqsConfig,
    timeout: Option<u64>,
    node_limit: Option<usize>,
    certify: bool,
    proof_file: Option<String>,
    stats: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SolverChoice {
    Hqs,
    Idq,
    Expansion,
}

fn usage() -> ! {
    eprintln!(
        "usage: hqs [--solver hqs|idq|expansion] [--strategy maxsat|all] \
         [--no-preprocess] [--no-gates] [--no-unit-pure] [--initial-sat] \
         [--subsume] [--dynamic-order] [--paranoid] [--qbf-backend elim|search] \
         [--fraig N] [--timeout S] [--node-limit N] [--certify] [--proof FILE] \
         [--stats] <file.dqdimacs>"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut options = Options {
        file: None,
        solver: SolverChoice::Hqs,
        config: HqsConfig::default(),
        timeout: None,
        node_limit: None,
        certify: false,
        proof_file: None,
        stats: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--solver" => {
                options.solver = match args.next().as_deref() {
                    Some("hqs") => SolverChoice::Hqs,
                    Some("idq") => SolverChoice::Idq,
                    Some("expansion") => SolverChoice::Expansion,
                    _ => usage(),
                }
            }
            "--strategy" => {
                options.config.strategy = match args.next().as_deref() {
                    Some("maxsat") => ElimStrategy::MaxSatMinimal,
                    Some("all") => ElimStrategy::AllUniversals,
                    _ => usage(),
                }
            }
            "--no-preprocess" => {
                options.config.preprocess = false;
                options.config.gate_detection = false;
            }
            "--no-gates" => options.config.gate_detection = false,
            "--no-unit-pure" => options.config.unit_pure = false,
            "--initial-sat" => options.config.initial_sat_check = true,
            "--subsume" => options.config.subsumption = true,
            "--qbf-backend" => {
                options.config.qbf_backend = match args.next().as_deref() {
                    Some("elim") => QbfBackend::Elimination,
                    Some("search") => QbfBackend::Search,
                    _ => usage(),
                }
            }
            "--dynamic-order" => options.config.dynamic_order = true,
            "--paranoid" => options.config.paranoid = true,
            "--fraig" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => options.config.fraig_threshold = n,
                None => usage(),
            },
            "--timeout" => match args.next().and_then(|v| v.parse().ok()) {
                Some(secs) => options.timeout = Some(secs),
                None => usage(),
            },
            "--node-limit" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => options.node_limit = Some(n),
                None => usage(),
            },
            "--certify" => {
                options.certify = true;
                options.config.certify = true;
            }
            "--proof" => match args.next() {
                Some(path) => options.proof_file = Some(path),
                None => usage(),
            },
            "--stats" => options.stats = true,
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && options.file.is_none() => {
                options.file = Some(other.to_string());
            }
            _ => usage(),
        }
    }
    options
}

fn main() -> ExitCode {
    let options = parse_options();
    let Some(path) = options.file.clone() else {
        usage();
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("error: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let file = match dimacs::parse_dqdimacs(&text) {
        Ok(file) => file,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    };
    let dqbf = Dqbf::from_file(&file);
    println!(
        "c {} universals, {} existentials, {} clauses",
        dqbf.universals().len(),
        dqbf.existentials().len(),
        dqbf.matrix().clauses().len()
    );

    let mut budget = Budget::new();
    if let Some(secs) = options.timeout {
        budget = budget.with_timeout(Duration::from_secs(secs));
    }
    if let Some(nodes) = options.node_limit {
        budget = budget.with_node_limit(nodes);
    }

    let result = match options.solver {
        SolverChoice::Hqs => {
            let mut solver = HqsSolver::with_config(HqsConfig {
                budget,
                ..options.config
            });
            let result = solver.solve(&dqbf);
            if options.stats {
                print_stats(&solver.stats());
            }
            result
        }
        SolverChoice::Idq => {
            let mut solver = InstantiationSolver::new();
            solver.set_budget(budget);
            let result = solver.solve(&dqbf);
            if options.stats {
                let stats = solver.stats();
                println!(
                    "c idq: {} iterations, {} instances, {} ground clauses, {} SAT calls",
                    stats.iterations, stats.instances, stats.ground_clauses, stats.sat_calls
                );
            }
            result
        }
        SolverChoice::Expansion => {
            if dqbf.universals().len() > expand::MAX_EXPANSION_UNIVERSALS {
                eprintln!(
                    "error: expansion limited to {} universals",
                    expand::MAX_EXPANSION_UNIVERSALS
                );
                return ExitCode::FAILURE;
            }
            if expand::is_satisfiable_by_expansion(&dqbf) {
                DqbfResult::Sat
            } else {
                DqbfResult::Unsat
            }
        }
    };

    if options.certify {
        if dqbf.universals().len() > expand::MAX_EXPANSION_UNIVERSALS {
            println!("c certificate skipped: too many universals for expansion");
        } else {
            match result {
                DqbfResult::Sat => match skolem::extract_skolem(&dqbf) {
                    Some(cert) if cert.verify_certified(&dqbf) => {
                        println!(
                            "c certificate: {} Skolem functions, verified (proof-checked)",
                            cert.functions.len()
                        );
                    }
                    Some(_) => {
                        eprintln!("error: certificate failed verification (bug!)");
                        return ExitCode::FAILURE;
                    }
                    None => {
                        eprintln!("error: certification contradicts the SAT verdict (bug!)");
                        return ExitCode::FAILURE;
                    }
                },
                DqbfResult::Unsat => match refute::extract_refutation(&dqbf) {
                    Some(cert) if cert.verify(&dqbf) => {
                        println!(
                            "c certificate: refutation over {} expansion instances, \
                             DRAT proof accepted",
                            cert.bindings.len()
                        );
                        if let Some(path) = &options.proof_file {
                            if let Err(err) = std::fs::write(path, &cert.drat) {
                                eprintln!("error: cannot write {path}: {err}");
                                return ExitCode::FAILURE;
                            }
                            println!("c proof written to {path}");
                        }
                    }
                    Some(_) => {
                        eprintln!("error: refutation certificate failed verification (bug!)");
                        return ExitCode::FAILURE;
                    }
                    None => {
                        eprintln!("error: certification contradicts the UNSAT verdict (bug!)");
                        return ExitCode::FAILURE;
                    }
                },
                DqbfResult::Limit(_) => {
                    println!("c certificate skipped: no verdict within the budget");
                }
            }
        }
    }

    match result {
        DqbfResult::Sat => {
            println!("s cnf SAT");
            ExitCode::from(10)
        }
        DqbfResult::Unsat => {
            println!("s cnf UNSAT");
            ExitCode::from(20)
        }
        DqbfResult::Limit(e) => {
            println!("s cnf UNKNOWN ({e:?})");
            ExitCode::FAILURE
        }
    }
}

fn print_stats(stats: &hqs::HqsStats) {
    println!(
        "c preprocess: {} units, {} universal reductions, {} pures, \
         {} equivalences, {} subsumed, {} strengthened, {} gates{}",
        stats.preprocess.units,
        stats.preprocess.universal_reductions,
        stats.preprocess.pures,
        stats.preprocess.equivalences,
        stats.preprocess.subsumed,
        stats.preprocess.strengthened,
        stats.preprocess.gates,
        if stats.decided_by_preprocessing {
            " (decided)"
        } else {
            ""
        },
    );
    println!(
        "c main loop: {} universal elims, {} existential elims, {} unit/pure, \
         elimination set {}, peak {} nodes",
        stats.universal_elims,
        stats.existential_elims,
        stats.unit_pure_elims,
        stats.elimination_set_size,
        stats.peak_nodes,
    );
    if stats.reached_qbf {
        println!(
            "c qbf backend: {} universal elims, {} existential elims, \
             {} unit/pure, {} SAT calls, peak {} nodes",
            stats.qbf.universal_elims,
            stats.qbf.existential_elims,
            stats.qbf.unit_pure_elims,
            stats.qbf.sat_calls,
            stats.qbf.peak_nodes,
        );
    }
}
