//! The `hqs` command-line DQBF solver.
//!
//! ```text
//! hqs [OPTIONS] <file.dqdimacs>          solve one instance
//! hqs batch [OPTIONS] <dir>              solve a corpus of .dqdimacs files
//! hqs serve [--stdio | --socket PATH]    long-lived solver service (JSONL
//!                                        requests in, JSONL responses out,
//!                                        warm caches shared across requests;
//!                                        see `hqs serve --help`)
//!
//! OPTIONS:
//!   --solver hqs|idq|expansion   decision procedure (default: hqs)
//!   --portfolio[=DECK]           race a strategy deck across threads
//!                                (decks: standard, small, wide)
//!   --jobs <n>                   worker threads for --portfolio / batch
//!   --deterministic              reproducible portfolio arbitration:
//!                                every worker finishes, lowest deck
//!                                index with a verdict wins
//!   --jsonl <file>               batch: also write JSONL records here
//!   --entry <name>               batch: entry name stamped into JSONL
//!   --strategy maxsat|all        universal-elimination strategy
//!   --qbf-backend elim|search    QBF engine for the linearised remainder
//!   --no-preprocess              skip CNF preprocessing
//!   --no-gates                   skip Tseitin gate detection
//!   --no-unit-pure               skip Theorem-5/6 elimination
//!   --initial-sat                up-front SAT call on the matrix
//!   --subsume                    subsumption/self-subsumption preprocessing
//!   --dynamic-order              recompute elimination order per step
//!   --paranoid                   audit solver-state invariants after
//!                                every main-loop step (debug builds
//!                                always audit at mutation sites)
//!   --fraig <nodes>              SAT-sweep cones above this size
//!   --timeout <seconds>          wall-clock budget
//!   --node-limit <n>             AIG-node / ground-clause budget
//!   --certify                    certify the verdict: extract+verify Skolem
//!                                functions on SAT, an expansion trace + DRAT
//!                                refutation (checked by the independent
//!                                hqs-proof crate) on UNSAT; internal SAT
//!                                calls of the HQS pipeline are proof-logged
//!                                too (small instances)
//!   --proof <file>               with --certify: write the DRAT refutation
//!                                of an UNSAT verdict to this file
//!   --metrics[=json]             print solver metrics after the run: the
//!                                human summary as `c` comment lines, or
//!                                one stable hqs-metrics/1 JSON line
//!   --trace-out <file.json>      write a Chrome trace-event file of the
//!                                phase spans (load in Perfetto or
//!                                chrome://tracing)
//!   --stats                      print pipeline statistics
//! ```
//!
//! Exit codes follow the (Q)DIMACS convention: 10 = SAT, 20 = UNSAT,
//! 30 = UNKNOWN (a resource budget ran out first), 1 = error,
//! 2 = usage error. `hqs batch` exits 0 when every job ran (solved or
//! budget-limited) and 1 if any job panicked or failed certification.

#![forbid(unsafe_code)]

use hqs::base::Budget;
use hqs::cnf::dimacs;
use hqs::core::expand;
use hqs::core::refute;
use hqs::core::skolem;
use hqs::engine;
use hqs::obs::{MetricsObserver, Obs, Phase};
use hqs::{Dqbf, HqsConfig, InstantiationSolver, Outcome, Session};
use hqs::{ElimStrategy, QbfBackend};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug)]
struct Options {
    file: Option<String>,
    solver: SolverChoice,
    config: HqsConfig,
    timeout: Option<u64>,
    node_limit: Option<usize>,
    certify: bool,
    proof_file: Option<String>,
    stats: bool,
    portfolio: Option<String>,
    jobs: Option<usize>,
    deterministic: bool,
    metrics: Option<MetricsFormat>,
    trace_out: Option<String>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SolverChoice {
    Hqs,
    Idq,
    Expansion,
}

/// How `--metrics` renders the final snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MetricsFormat {
    /// Human summary as `c`-prefixed comment lines.
    Summary,
    /// One stable `hqs-metrics/1` JSON object on its own line.
    Json,
}

fn usage() -> ! {
    eprintln!(
        "usage: hqs [--solver hqs|idq|expansion] [--strategy maxsat|all] \
         [--no-preprocess] [--no-gates] [--no-unit-pure] [--initial-sat] \
         [--subsume] [--dynamic-order] [--paranoid] [--qbf-backend elim|search] \
         [--fraig N] [--timeout S] [--node-limit N] [--certify] [--proof FILE] \
         [--portfolio[=standard|small|wide]] [--jobs N] [--deterministic] \
         [--metrics[=json]] [--trace-out FILE] [--stats] <file.dqdimacs>\n\
         \x20      hqs batch [--jobs N] [--timeout S] [--node-limit N] [--certify] \
         [--jsonl FILE] [--entry NAME] [--metrics[=json]] [solver flags] <dir>"
    );
    std::process::exit(2);
}

/// Applies one solver-configuration flag shared between the single-solve
/// and batch parsers. Returns `false` when the flag is not a config flag.
fn apply_config_flag(
    arg: &str,
    args: &mut impl Iterator<Item = String>,
    config: &mut HqsConfig,
) -> bool {
    match arg {
        "--strategy" => {
            config.strategy = match args.next().as_deref() {
                Some("maxsat") => ElimStrategy::MaxSatMinimal,
                Some("all") => ElimStrategy::AllUniversals,
                _ => usage(),
            }
        }
        "--no-preprocess" => {
            config.preprocess = false;
            config.gate_detection = false;
        }
        "--no-gates" => config.gate_detection = false,
        "--no-unit-pure" => config.unit_pure = false,
        "--initial-sat" => config.initial_sat_check = true,
        "--subsume" => config.subsumption = true,
        "--qbf-backend" => {
            config.qbf_backend = match args.next().as_deref() {
                Some("elim") => QbfBackend::Elimination,
                Some("search") => QbfBackend::Search,
                _ => usage(),
            }
        }
        "--dynamic-order" => config.dynamic_order = true,
        "--paranoid" => config.paranoid = true,
        "--fraig" => match args.next().and_then(|v| v.parse().ok()) {
            Some(n) => config.fraig_threshold = n,
            None => usage(),
        },
        _ => return false,
    }
    true
}

/// Parses a `--metrics` / `--metrics=json` / `--trace-out` flag shared
/// between the single-solve and batch parsers. Returns `false` when the
/// flag is not an observability flag.
fn apply_obs_flag(
    arg: &str,
    args: &mut impl Iterator<Item = String>,
    metrics: &mut Option<MetricsFormat>,
    trace_out: &mut Option<String>,
) -> bool {
    match arg {
        "--metrics" => *metrics = Some(MetricsFormat::Summary),
        "--metrics=json" => *metrics = Some(MetricsFormat::Json),
        "--trace-out" => match args.next() {
            Some(path) => *trace_out = Some(path),
            None => usage(),
        },
        _ => return false,
    }
    true
}

fn parse_options(args: impl Iterator<Item = String>) -> Options {
    let mut options = Options {
        file: None,
        solver: SolverChoice::Hqs,
        config: HqsConfig::default(),
        timeout: None,
        node_limit: None,
        certify: false,
        proof_file: None,
        stats: false,
        portfolio: None,
        jobs: None,
        deterministic: false,
        metrics: None,
        trace_out: None,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        if apply_config_flag(&arg, &mut args, &mut options.config) {
            continue;
        }
        if apply_obs_flag(
            &arg,
            &mut args,
            &mut options.metrics,
            &mut options.trace_out,
        ) {
            continue;
        }
        match arg.as_str() {
            "--solver" => {
                options.solver = match args.next().as_deref() {
                    Some("hqs") => SolverChoice::Hqs,
                    Some("idq") => SolverChoice::Idq,
                    Some("expansion") => SolverChoice::Expansion,
                    _ => usage(),
                }
            }
            "--timeout" => match args.next().and_then(|v| v.parse().ok()) {
                Some(secs) => options.timeout = Some(secs),
                None => usage(),
            },
            "--node-limit" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => options.node_limit = Some(n),
                None => usage(),
            },
            "--certify" => {
                options.certify = true;
                options.config.certify = true;
            }
            "--proof" => match args.next() {
                Some(path) => options.proof_file = Some(path),
                None => usage(),
            },
            "--portfolio" => options.portfolio = Some("standard".to_string()),
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => options.jobs = Some(n),
                _ => usage(),
            },
            "--deterministic" => options.deterministic = true,
            "--stats" => options.stats = true,
            "--help" | "-h" => usage(),
            other if other.starts_with("--portfolio=") => {
                options.portfolio = other.split_once('=').map(|(_, deck)| deck.to_string());
            }
            other if !other.starts_with('-') && options.file.is_none() => {
                options.file = Some(other.to_string());
            }
            _ => usage(),
        }
    }
    options
}

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("batch") {
        raw.next();
        return run_batch_command(raw);
    }
    if raw.peek().map(String::as_str) == Some("serve") {
        raw.next();
        return run_serve_command(raw);
    }
    let options = parse_options(raw);
    let Some(path) = options.file.clone() else {
        usage();
    };

    // One shared recorder feeds the session, the portfolio workers and
    // the CLI's own parse/total spans; disabled entirely when neither
    // --metrics nor --trace-out asked for it.
    let recorder = (options.metrics.is_some() || options.trace_out.is_some())
        .then(|| Arc::new(MetricsObserver::new()));
    let obs = match &recorder {
        Some(observer) => Obs::attached(Arc::clone(observer) as _),
        None => Obs::disabled(),
    };

    let total_span = obs.span(Phase::Total);
    let parse_span = obs.span(Phase::Parse);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("error: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let file = match dimacs::parse_dqdimacs(&text) {
        Ok(file) => file,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    };
    let dqbf = Dqbf::from_file(&file);
    drop(parse_span);
    println!(
        "c {} universals, {} existentials, {} clauses",
        dqbf.universals().len(),
        dqbf.existentials().len(),
        dqbf.matrix().clauses().len()
    );

    let mut budget = Budget::new();
    if let Some(secs) = options.timeout {
        budget = budget.with_timeout(Duration::from_secs(secs));
    }
    if let Some(nodes) = options.node_limit {
        budget = budget.with_node_limit(nodes);
    }

    let solved = solve_command(&options, &dqbf, budget, &obs);
    drop(total_span);
    if let Some(recorder) = &recorder {
        if let Err(code) = export_observations(&options, recorder) {
            return code;
        }
    }
    match solved {
        Ok(result) => verdict_exit(result),
        Err(code) => code,
    }
}

/// Solves the parsed formula per the chosen procedure, including the
/// optional post-hoc certification. `Err` carries the exit code of a
/// failure that pre-empts the verdict line.
fn solve_command(
    options: &Options,
    dqbf: &Dqbf,
    budget: Budget,
    obs: &Obs,
) -> Result<Outcome, ExitCode> {
    if let Some(deck_name) = &options.portfolio {
        return run_portfolio(dqbf, deck_name, options, budget, obs);
    }

    let result = match options.solver {
        SolverChoice::Hqs => {
            let config = HqsConfig {
                budget,
                ..options.config.clone()
            };
            let mut builder = Session::builder().config(config);
            if let Some(observer) = obs.observer() {
                builder = builder.observer(observer);
            }
            let mut session = match builder.build() {
                Ok(session) => session,
                Err(err) => {
                    eprintln!("error: {err}");
                    return Err(ExitCode::from(2));
                }
            };
            let result = session.solve(dqbf);
            if options.stats {
                print_stats(&session.stats());
            }
            result
        }
        SolverChoice::Idq => {
            let mut solver = InstantiationSolver::new();
            solver.set_budget(budget);
            let result = solver.solve(dqbf).into();
            if options.stats {
                let stats = solver.stats();
                println!(
                    "c idq: {} iterations, {} instances, {} ground clauses, {} SAT calls",
                    stats.iterations, stats.instances, stats.ground_clauses, stats.sat_calls
                );
            }
            result
        }
        SolverChoice::Expansion => {
            if dqbf.universals().len() > expand::MAX_EXPANSION_UNIVERSALS {
                eprintln!(
                    "error: expansion limited to {} universals",
                    expand::MAX_EXPANSION_UNIVERSALS
                );
                return Err(ExitCode::FAILURE);
            }
            if expand::is_satisfiable_by_expansion(dqbf) {
                Outcome::Sat
            } else {
                Outcome::Unsat
            }
        }
    };

    if options.certify {
        if dqbf.universals().len() > expand::MAX_EXPANSION_UNIVERSALS {
            println!("c certificate skipped: too many universals for expansion");
        } else {
            let _certify_span = obs.span(Phase::Certify);
            match result {
                Outcome::Sat => match skolem::extract_skolem(dqbf) {
                    Some(cert) if cert.verify_certified(dqbf) => {
                        println!(
                            "c certificate: {} Skolem functions, verified (proof-checked)",
                            cert.functions.len()
                        );
                    }
                    Some(_) => {
                        eprintln!("error: certificate failed verification (bug!)");
                        return Err(ExitCode::FAILURE);
                    }
                    None => {
                        eprintln!("error: certification contradicts the SAT verdict (bug!)");
                        return Err(ExitCode::FAILURE);
                    }
                },
                Outcome::Unsat => match refute::extract_refutation(dqbf) {
                    Some(cert) if cert.verify(dqbf) => {
                        println!(
                            "c certificate: refutation over {} expansion instances, \
                             DRAT proof accepted",
                            cert.bindings.len()
                        );
                        if let Some(path) = &options.proof_file {
                            if let Err(err) = std::fs::write(path, &cert.drat) {
                                eprintln!("error: cannot write {path}: {err}");
                                return Err(ExitCode::FAILURE);
                            }
                            println!("c proof written to {path}");
                        }
                    }
                    Some(_) => {
                        eprintln!("error: refutation certificate failed verification (bug!)");
                        return Err(ExitCode::FAILURE);
                    }
                    None => {
                        eprintln!("error: certification contradicts the UNSAT verdict (bug!)");
                        return Err(ExitCode::FAILURE);
                    }
                },
                Outcome::Unknown(_) => {
                    println!("c certificate skipped: no verdict within the budget");
                }
            }
        }
    }

    Ok(result)
}

/// Prints the recorded metrics per `--metrics` and writes the Chrome
/// trace per `--trace-out`.
fn export_observations(options: &Options, recorder: &MetricsObserver) -> Result<(), ExitCode> {
    let snapshot = recorder.snapshot();
    match options.metrics {
        Some(MetricsFormat::Summary) => {
            for line in snapshot.render_summary().lines() {
                println!("c {line}");
            }
        }
        Some(MetricsFormat::Json) => println!("{}", snapshot.to_json()),
        None => {}
    }
    if let Some(path) = &options.trace_out {
        if let Err(err) = std::fs::write(path, snapshot.to_chrome_trace()) {
            eprintln!("error: cannot write {path}: {err}");
            return Err(ExitCode::FAILURE);
        }
        println!("c trace written to {path}");
    }
    Ok(())
}

/// Prints the `s cnf` verdict line and maps the outcome to the
/// documented exit code (10 SAT / 20 UNSAT / 30 UNKNOWN-budget).
fn verdict_exit(result: Outcome) -> ExitCode {
    match result {
        Outcome::Sat => println!("s cnf SAT"),
        Outcome::Unsat => println!("s cnf UNSAT"),
        Outcome::Unknown(e) => println!("s cnf UNKNOWN ({e})"),
    }
    ExitCode::from(u8::try_from(result.to_exit_code()).unwrap_or(1))
}

/// Worker-thread default when `--jobs` is absent.
fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Races a strategy deck on the parsed formula (`--portfolio`).
fn run_portfolio(
    dqbf: &Dqbf,
    deck_name: &str,
    options: &Options,
    budget: Budget,
    obs: &Obs,
) -> Result<Outcome, ExitCode> {
    let Some(deck) = engine::deck_by_name(deck_name) else {
        eprintln!(
            "error: unknown portfolio deck '{deck_name}' (have: {})",
            engine::DECK_NAMES.join(", ")
        );
        return Err(ExitCode::FAILURE);
    };
    let opts = engine::PortfolioOptions {
        threads: options.jobs.unwrap_or_else(default_jobs),
        deterministic: options.deterministic,
        certify: options.certify,
        budget,
        observer: obs.clone(),
    };
    match engine::solve_portfolio(dqbf, &deck, &opts) {
        Ok(outcome) => {
            match (&outcome.winner, &outcome.winner_name) {
                (Some(index), Some(name)) => {
                    // Keep this line free of timing so --deterministic
                    // runs are diffable byte-for-byte.
                    println!("c portfolio winner: {name} (deck {index})");
                }
                _ => println!("c portfolio: no definitive verdict"),
            }
            if options.certify && outcome.certified {
                println!("c certificate: winner verdict certified");
            }
            if options.stats {
                for report in &outcome.reports {
                    println!(
                        "c portfolio worker {} [{}]: {:?} in {:.3}s{}",
                        report.deck_index,
                        report.name,
                        report.result,
                        report.wall_seconds,
                        if report.certified { " (certified)" } else { "" },
                    );
                }
            }
            Ok(outcome.result)
        }
        Err(err) => {
            eprintln!("error: {err}");
            Err(ExitCode::FAILURE)
        }
    }
}

/// The `hqs serve` subcommand: a long-lived solver service speaking the
/// batch JSONL record schema over stdio (single client) or a Unix
/// domain socket (concurrent clients), with preprocessing results,
/// FRAIG-reduced cones and verdicts cached across requests.
fn run_serve_command(args: impl Iterator<Item = String>) -> ExitCode {
    fn serve_usage() -> ! {
        eprintln!(
            "usage: hqs serve [--stdio | --socket PATH] [--jobs N] [--queue N] \
             [--timeout S] [--node-limit N] [--certify] [solver flags]\n\
             \x20      requests: one JSON object per line —\n\
             \x20        {{\"id\":\"r1\",\"file\":\"inst.dqdimacs\"}}\n\
             \x20        {{\"id\":\"r2\",\"dqdimacs\":\"p cnf 1 1\\n1 0\\n\",\
             \"timeout_ms\":500}}\n\
             \x20        {{\"cmd\":\"stats\"}} | {{\"cmd\":\"shutdown\"}}"
        );
        std::process::exit(2);
    }
    let mut socket: Option<String> = None;
    let mut stdio = false;
    let mut opts = hqs::serve::ServeOptions {
        workers: default_jobs(),
        ..hqs::serve::ServeOptions::default()
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        if apply_config_flag(&arg, &mut args, &mut opts.config) {
            continue;
        }
        match arg.as_str() {
            "--stdio" => stdio = true,
            "--socket" => match args.next() {
                Some(path) => socket = Some(path),
                None => serve_usage(),
            },
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.workers = n,
                _ => serve_usage(),
            },
            "--queue" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.queue_capacity = n,
                None => serve_usage(),
            },
            "--timeout" => match args.next().and_then(|v| v.parse().ok()) {
                Some(secs) => opts.default_timeout = Some(Duration::from_secs(secs)),
                None => serve_usage(),
            },
            "--node-limit" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.default_node_limit = Some(n),
                None => serve_usage(),
            },
            "--certify" => opts.certify = true,
            "--help" | "-h" => serve_usage(),
            _ => serve_usage(),
        }
    }
    if stdio == socket.is_some() {
        // Exactly one transport must be chosen.
        serve_usage();
    }
    let code = match socket {
        Some(path) => hqs::serve::run_socket(&path, opts),
        None => hqs::serve::run_stdio(opts),
    };
    ExitCode::from(u8::try_from(code).unwrap_or(1))
}

/// The `hqs batch <dir>` subcommand: solve every `.dqdimacs` file in a
/// directory through the work-stealing scheduler, streaming one JSONL
/// record per job to stdout.
fn run_batch_command(args: impl Iterator<Item = String>) -> ExitCode {
    let mut dir: Option<String> = None;
    let mut opts = engine::BatchOptions {
        workers: default_jobs(),
        ..engine::BatchOptions::default()
    };
    let mut jsonl_file: Option<String> = None;
    let mut metrics: Option<MetricsFormat> = None;
    let mut trace_out: Option<String> = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        if apply_config_flag(&arg, &mut args, &mut opts.config) {
            continue;
        }
        if apply_obs_flag(&arg, &mut args, &mut metrics, &mut trace_out) {
            continue;
        }
        match arg.as_str() {
            "--jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.workers = n,
                _ => usage(),
            },
            "--timeout" => match args.next().and_then(|v| v.parse().ok()) {
                Some(secs) => opts.job_timeout = Some(Duration::from_secs(secs)),
                None => usage(),
            },
            "--node-limit" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.node_limit = Some(n),
                None => usage(),
            },
            "--certify" => opts.certify = true,
            "--jsonl" => match args.next() {
                Some(path) => jsonl_file = Some(path),
                None => usage(),
            },
            "--entry" => match args.next() {
                Some(name) => opts.entry_name = name,
                None => usage(),
            },
            "--deterministic" => {
                // Batch outcomes are deterministic by construction (each
                // job is solved by the same single-threaded solver);
                // accepted for symmetry with --portfolio.
            }
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && dir.is_none() => dir = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(dir) = dir else { usage() };
    opts.collect_metrics = metrics.is_some() || trace_out.is_some();

    let jobs = match engine::load_corpus(std::path::Path::new(&dir)) {
        Ok(jobs) => jobs,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!("c batch: {} jobs, {} workers", jobs.len(), opts.workers);
    let summary = engine::run_batch(&jobs, &opts, &|record| {
        println!("{}", record.to_jsonl());
    });
    if let Some(path) = jsonl_file {
        let mut out = String::new();
        for record in &summary.records {
            out.push_str(&record.to_jsonl());
            out.push('\n');
        }
        if let Err(err) = std::fs::write(&path, out) {
            eprintln!("error: cannot write {path}: {err}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(merged) = &summary.metrics {
        match metrics {
            Some(MetricsFormat::Summary) => {
                for line in merged.render_summary().lines() {
                    println!("c {line}");
                }
            }
            Some(MetricsFormat::Json) => println!("{}", merged.to_json()),
            None => {}
        }
        if let Some(path) = &trace_out {
            if let Err(err) = std::fs::write(path, merged.to_chrome_trace()) {
                eprintln!("error: cannot write {path}: {err}");
                return ExitCode::FAILURE;
            }
            println!("c trace written to {path}");
        }
    }
    println!(
        "c batch done: {} sat, {} unsat, {} unsolved, {} failed in {:.3}s",
        summary.sat, summary.unsat, summary.unsolved, summary.failed, summary.wall_seconds
    );
    if summary.failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_stats(stats: &hqs::HqsStats) {
    println!(
        "c preprocess: {} units, {} universal reductions, {} pures, \
         {} equivalences, {} subsumed, {} strengthened, {} gates{}",
        stats.preprocess.units,
        stats.preprocess.universal_reductions,
        stats.preprocess.pures,
        stats.preprocess.equivalences,
        stats.preprocess.subsumed,
        stats.preprocess.strengthened,
        stats.preprocess.gates,
        if stats.decided_by_preprocessing {
            " (decided)"
        } else {
            ""
        },
    );
    println!(
        "c main loop: {} universal elims, {} existential elims, {} unit/pure, \
         elimination set {}, peak {} nodes",
        stats.universal_elims,
        stats.existential_elims,
        stats.unit_pure_elims,
        stats.elimination_set_size,
        stats.peak_nodes,
    );
    if stats.reached_qbf {
        println!(
            "c qbf backend: {} universal elims, {} existential elims, \
             {} unit/pure, {} SAT calls, peak {} nodes",
            stats.qbf.universal_elims,
            stats.qbf.existential_elims,
            stats.qbf.unit_pure_elims,
            stats.qbf.sat_calls,
            stats.qbf.peak_nodes,
        );
    }
}
