//! Workspace-level integration: the three decision procedures (HQS in
//! several configurations, the instantiation baseline, and the expansion
//! oracle) must agree on random DQBFs, and the file interface must
//! round-trip.

use hqs::base::{Lit, Var};
use hqs::cnf::dimacs;
use hqs::core::expand::is_satisfiable_by_expansion;
use hqs::{Dqbf, DqbfResult, ElimStrategy, HqsConfig, InstantiationSolver, Outcome, Session};
use hqs_base::Rng;

fn random_dqbf(rng: &mut Rng) -> Dqbf {
    let mut d = Dqbf::new();
    let nu = rng.gen_range(1..=4u32);
    let ne = rng.gen_range(1..=4u32);
    let xs: Vec<Var> = (0..nu).map(|_| d.add_universal()).collect();
    let mut all: Vec<Var> = xs.clone();
    for _ in 0..ne {
        let deps: Vec<Var> = xs.iter().copied().filter(|_| rng.gen_bool(0.5)).collect();
        all.push(d.add_existential(deps));
    }
    for _ in 0..rng.gen_range(2..=10usize) {
        let len = rng.gen_range(1..=3usize);
        let lits: Vec<Lit> = (0..len)
            .map(|_| Lit::new(all[rng.gen_range(0..all.len())], rng.gen_bool(0.5)))
            .collect();
        d.add_clause(lits);
    }
    d
}

#[test]
fn all_procedures_agree_on_random_dqbfs() {
    let mut rng = Rng::seed_from_u64(0xDA7E_2015);
    for round in 0..60 {
        let d = random_dqbf(&mut rng);
        let expected = if is_satisfiable_by_expansion(&d) {
            Outcome::Sat
        } else {
            Outcome::Unsat
        };
        let mut hqs = Session::builder().build().expect("defaults are valid");
        assert_eq!(hqs.solve(&d), expected, "hqs, round {round}");
        assert_eq!(
            Outcome::from(InstantiationSolver::new().solve(&d)),
            expected,
            "idq, round {round}"
        );
        let baseline_cfg = HqsConfig {
            strategy: ElimStrategy::AllUniversals,
            preprocess: false,
            gate_detection: false,
            unit_pure: false,
            ..HqsConfig::default()
        };
        let mut baseline = Session::builder()
            .config(baseline_cfg)
            .build()
            .expect("baseline config is valid");
        assert_eq!(
            baseline.solve(&d),
            expected,
            "gitina2013 baseline, round {round}"
        );
    }
}

#[test]
fn dqdimacs_file_roundtrip_preserves_verdict() {
    let mut rng = Rng::seed_from_u64(0xF11E);
    for _ in 0..25 {
        let d = random_dqbf(&mut rng);
        let mut session = Session::builder().build().expect("defaults are valid");
        let expected = session.solve(&d);
        let text = dimacs::write_dqdimacs(&d.to_file());
        let reparsed = dimacs::parse_dqdimacs(&text).expect("own output parses");
        let again = session.solve_file(&reparsed);
        assert_eq!(expected, again, "\n{text}");
    }
}

/// DQBFs whose dependency sets are nested (a chain under ⊆) are plain
/// QBFs; HQS must then agree with the QBF solver run directly on the
/// linearised prefix.
#[test]
fn qbf_expressible_dqbfs_match_qbf_solver() {
    use hqs::core::depgraph::linearise;
    use hqs::qbf::QbfSolver;
    let mut rng = Rng::seed_from_u64(0xABCD);
    for _ in 0..40 {
        let mut d = Dqbf::new();
        let nu = rng.gen_range(1..=4u32);
        let xs: Vec<Var> = (0..nu).map(|_| d.add_universal()).collect();
        let mut all: Vec<Var> = xs.clone();
        // Nested dependency sets: prefixes of xs.
        for _ in 0..rng.gen_range(1..=3u32) {
            let k = rng.gen_range(0..=nu) as usize;
            all.push(d.add_existential(xs[..k].iter().copied()));
        }
        for _ in 0..rng.gen_range(2..=8usize) {
            let len = rng.gen_range(1..=3usize);
            let lits: Vec<Lit> = (0..len)
                .map(|_| Lit::new(all[rng.gen_range(0..all.len())], rng.gen_bool(0.5)))
                .collect();
            d.add_clause(lits);
        }
        let hqs = Session::builder()
            .build()
            .expect("defaults are valid")
            .solve(&d);

        // Direct QBF route: linearise and hand the CNF-built AIG over.
        let deps: Vec<_> = d
            .existentials()
            .iter()
            .map(|&y| (y, d.dependencies(y).unwrap().clone()))
            .collect();
        let prefix = linearise(d.universals(), &deps).expect("nested deps are acyclic");
        let mut aig = hqs::aig::Aig::new();
        let root = aig.from_cnf(d.matrix());
        let qbf = QbfSolver::new().solve(&mut aig, root, prefix);
        let qbf_as_dqbf = Outcome::from(DqbfResult::from_qbf(qbf));
        assert_eq!(hqs, qbf_as_dqbf, "{d:?}");
    }
}
