//! Structural assertions on the solver pipeline: the statistics of a PEC
//! solve must reflect the paper's architecture — Tseitin gates are
//! detected and composed away, the MaxSAT elimination set is a small
//! fraction of the universals, and the linearised remainder reaches the
//! QBF backend.

use hqs::pec::families::generate;
use hqs::pec::Family;
use hqs::{ElimStrategy, HqsConfig, Outcome, QbfBackend, Session};

#[test]
fn pec_solve_exercises_every_pipeline_stage() {
    // A mid-size adder with two boxes: cyclic dependencies guaranteed.
    let instance = generate(Family::Adder, 5, 2, 1, true);
    let dqbf = &instance.dqbf;
    let num_universals = dqbf.universals().len();
    assert!(!dqbf.is_qbf_expressible(), "two boxes ⇒ non-linear prefix");

    let mut session = Session::builder().build().expect("defaults are valid");
    let verdict = session.solve(dqbf);
    assert!(matches!(verdict, Outcome::Sat | Outcome::Unsat));
    let stats = session.stats();

    // Circuit-derived CNF: the preprocessor must find Tseitin gates.
    assert!(
        stats.decided_by_preprocessing || stats.preprocess.gates > 0,
        "no gates detected in a Tseitin-encoded circuit: {stats:?}"
    );
    if !stats.decided_by_preprocessing {
        // The MaxSAT-minimal elimination set is much smaller than the
        // full universal count (that is the point of the paper).
        assert!(
            stats.elimination_set_size < num_universals,
            "elimination set {} should be < {} universals",
            stats.elimination_set_size,
            num_universals
        );
        assert!(stats.universal_elims as usize <= num_universals);
    }
}

#[test]
fn qbf_backend_is_reached_on_cyclic_instances() {
    // Disable preprocessing so the main loop (and the handoff) must run.
    let instance = generate(Family::Bitcell, 4, 2, 3, false);
    let config = HqsConfig {
        preprocess: false,
        gate_detection: false,
        ..HqsConfig::default()
    };
    let mut session = Session::builder().config(config).build().expect("valid");
    let verdict = session.solve(&instance.dqbf);
    assert_eq!(verdict, Outcome::Sat, "carved instance is realizable");
    let stats = session.stats();
    assert!(
        stats.reached_qbf || stats.universal_elims == 0,
        "a decided cyclic instance passes through the QBF backend \
         unless constants short-circuit: {stats:?}"
    );
    assert!(stats.peak_nodes > 0);
}

#[test]
fn qbf_backends_agree_on_pec_instances() {
    // The paper's abstract: the linearised remainder "can be decided using
    // any standard QBF solver" — elimination and QDPLL-search backends
    // must agree.
    for family in [Family::Bitcell, Family::PecXor] {
        for fault in [false, true] {
            let instance = generate(family, 2, 1, 9, fault);
            let elimination = Session::builder()
                .build()
                .expect("defaults are valid")
                .solve(&instance.dqbf);
            let mut search = Session::builder()
                .config(HqsConfig {
                    qbf_backend: QbfBackend::Search,
                    ..HqsConfig::default()
                })
                .build()
                .expect("valid");
            let search_verdict = search.solve(&instance.dqbf);
            assert_eq!(elimination, search_verdict, "{}", instance.name);
        }
    }
}

#[test]
fn eliminate_all_strategy_never_reaches_qbf_with_universals() {
    let instance = generate(Family::PecXor, 6, 2, 2, true);
    let config = HqsConfig {
        strategy: ElimStrategy::AllUniversals,
        ..HqsConfig::default()
    };
    let mut session = Session::builder().config(config).build().expect("valid");
    let verdict = session.solve(&instance.dqbf);
    assert!(matches!(verdict, Outcome::Sat | Outcome::Unsat));
    let stats = session.stats();
    if stats.reached_qbf {
        // The [10] strategy only hands off once every universal is gone,
        // so the backend must have performed no universal eliminations.
        assert_eq!(stats.qbf.universal_elims, 0, "{stats:?}");
    }
}
