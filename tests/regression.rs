//! Golden regression instances: handcrafted DQDIMACS documents with known
//! verdicts, exercising the file-level interface and the corner cases the
//! pipeline must handle (free variables, empty dependency sets, mixed
//! `e`/`d` lines, tautologies, Tseitin gates, duplicate clauses).

use hqs::cnf::dimacs::parse_dqdimacs;
use hqs::{InstantiationSolver, Outcome, Session};

fn check(name: &str, text: &str, expected: Outcome) {
    let file = parse_dqdimacs(text).unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut session = Session::builder().build().expect("defaults are valid");
    let hqs = session.solve_file(&file);
    assert_eq!(hqs, expected, "{name} (HQS)");
    let idq = Outcome::from(InstantiationSolver::new().solve(&hqs::Dqbf::from_file(&file)));
    assert_eq!(idq, expected, "{name} (baseline)");
}

#[test]
fn paper_example_1_satisfiable() {
    check(
        "example1-sat",
        "p cnf 4 4\na 1 2 0\nd 3 1 0\nd 4 2 0\n-3 1 0\n3 -1 0\n-4 2 0\n4 -2 0\n",
        Outcome::Sat,
    );
}

#[test]
fn crossed_dependencies_unsatisfiable() {
    // y1 must copy x2 but sees only x1 (and vice versa).
    check(
        "crossed-unsat",
        "p cnf 4 4\na 1 2 0\nd 3 1 0\nd 4 2 0\n-3 2 0\n3 -2 0\n-4 1 0\n4 -1 0\n",
        Outcome::Unsat,
    );
}

#[test]
fn free_variables_are_outer_existentials() {
    // Variable 3 is never quantified: it may be set to true.
    check(
        "free-var-sat",
        "p cnf 3 2\na 1 0\nd 2 1 0\n3 0\n-2 1 0\n",
        Outcome::Sat,
    );
    // ... but a constant cannot track a universal.
    check(
        "free-var-unsat",
        "p cnf 2 2\na 1 0\n2 -1 0\n-2 1 0\n",
        Outcome::Unsat,
    );
}

#[test]
fn empty_dependency_set_is_a_constant() {
    // d 2 0: y with no dependencies must satisfy y↔x1 — impossible.
    check(
        "empty-deps-unsat",
        "p cnf 2 2\na 1 0\nd 2 0\n2 -1 0\n-2 1 0\n",
        Outcome::Unsat,
    );
    // A constant suffices when only one phase is demanded.
    check(
        "empty-deps-sat",
        "p cnf 2 1\na 1 0\nd 2 0\n2 1 0\n",
        Outcome::Sat,
    );
}

#[test]
fn mixed_e_and_d_lines() {
    // e-line variables depend on all universals declared so far: y3 may
    // copy x1 even though declared with `e`.
    check(
        "e-line-sat",
        "p cnf 3 2\na 1 2 0\ne 3 0\n3 -1 0\n-3 1 0\n",
        Outcome::Sat,
    );
}

#[test]
fn tautologies_and_duplicates_are_harmless() {
    check(
        "taut-dup-sat",
        "p cnf 3 5\na 1 0\nd 2 1 0\n1 -1 0\n2 -2 0\n2 -1 0\n2 -1 0\n-2 1 0\n",
        Outcome::Sat,
    );
}

#[test]
fn tseitin_gate_instance() {
    // t(=4) ≡ x1 ∧ y3 via AND-gate clauses plus one usage clause:
    // choosing y3 ≡ 1 satisfies everything.
    check(
        "gate-sat",
        "p cnf 4 4\n\
         a 1 2 0\n\
         d 3 1 2 0\n\
         d 4 1 2 0\n\
         -4 1 0\n\
         -4 3 0\n\
         4 -1 -3 0\n\
         4 3 -2 0\n",
        Outcome::Sat,
    );
    // Adding (¬y3 ∨ x1 ∨ ¬x2) makes the x1=0, x2=1 row impossible: the
    // usage clause forces y3 there, the new clause forbids it.
    check(
        "gate-unsat",
        "p cnf 4 5\n\
         a 1 2 0\n\
         d 3 1 2 0\n\
         d 4 1 2 0\n\
         -4 1 0\n\
         -4 3 0\n\
         4 -1 -3 0\n\
         4 3 -2 0\n\
         -3 1 -2 0\n",
        Outcome::Unsat,
    );
}

#[test]
fn universal_unit_clause() {
    check("universal-unit", "p cnf 1 1\na 1 0\n1 0\n", Outcome::Unsat);
}

#[test]
fn empty_matrix_is_valid() {
    check("empty-matrix", "p cnf 2 0\na 1 0\nd 2 1 0\n", Outcome::Sat);
}

#[test]
fn propositional_fallbacks() {
    // No universals at all: plain SAT.
    check(
        "plain-sat",
        "p cnf 2 2\nd 1 0\nd 2 0\n1 2 0\n-1 2 0\n",
        Outcome::Sat,
    );
    check(
        "plain-unsat",
        "p cnf 1 2\nd 1 0\n1 0\n-1 0\n",
        Outcome::Unsat,
    );
}

#[test]
fn three_boxes_with_pairwise_incomparable_views() {
    // ∀x1 x2 x3, y_i sees {x_i}: each must copy its own input — SAT; the
    // dependency graph has three pairwise cycles, so the MaxSAT set must
    // break all of them.
    check(
        "three-cycles-sat",
        "p cnf 6 6\n\
         a 1 2 3 0\n\
         d 4 1 0\nd 5 2 0\nd 6 3 0\n\
         -4 1 0\n4 -1 0\n-5 2 0\n5 -2 0\n-6 3 0\n6 -3 0\n",
        Outcome::Sat,
    );
    // The same prefix, but y4 must equal x2: UNSAT.
    check(
        "three-cycles-unsat",
        "p cnf 6 6\n\
         a 1 2 3 0\n\
         d 4 1 0\nd 5 2 0\nd 6 3 0\n\
         -4 2 0\n4 -2 0\n-5 2 0\n5 -2 0\n-6 3 0\n6 -3 0\n",
        Outcome::Unsat,
    );
}

#[test]
fn shared_dependency_blocks() {
    // Two existentials with the same dependency set form one QBF block.
    check(
        "shared-block-sat",
        "p cnf 4 3\na 1 2 0\nd 3 1 2 0\nd 4 1 2 0\n3 4 0\n-3 1 0\n-4 -1 0\n",
        Outcome::Sat,
    );
}
