//! Integration of the PEC application pipeline: circuit → black boxes →
//! DQBF encoding → both solvers, across all seven benchmark families.

use hqs::base::Budget;
use hqs::core::expand::{is_satisfiable_by_expansion, MAX_EXPANSION_UNIVERSALS};
use hqs::pec::families::generate;
use hqs::pec::{benchmark_suite, Family, Scale};
use hqs::{InstantiationSolver, Outcome, Session};
use std::time::Duration;

#[test]
fn carved_instances_of_every_family_are_realizable() {
    for family in Family::ALL {
        for (size, boxes) in [(2u32, 1u32), (3, 2)] {
            let instance = generate(family, size, boxes, 3, false);
            let verdict = Session::builder()
                .build()
                .expect("defaults are valid")
                .solve(&instance.dqbf);
            assert_eq!(verdict, Outcome::Sat, "{}", instance.name);
        }
    }
}

#[test]
fn hqs_and_baseline_agree_on_small_pec_instances() {
    for family in Family::ALL {
        for fault in [false, true] {
            let instance = generate(family, 2, 1, 5, fault);
            let hqs = Session::builder()
                .build()
                .expect("defaults are valid")
                .solve(&instance.dqbf);
            let mut baseline = InstantiationSolver::new();
            baseline.set_budget(
                Budget::new()
                    .with_timeout(Duration::from_secs(60))
                    .with_node_limit(2_000_000),
            );
            let idq = Outcome::from(baseline.solve(&instance.dqbf));
            if !matches!(idq, Outcome::Unknown(_)) {
                assert_eq!(hqs, idq, "{}", instance.name);
            }
            if instance.dqbf.universals().len() <= MAX_EXPANSION_UNIVERSALS {
                let oracle = if is_satisfiable_by_expansion(&instance.dqbf) {
                    Outcome::Sat
                } else {
                    Outcome::Unsat
                };
                assert_eq!(hqs, oracle, "{} vs oracle", instance.name);
            }
        }
    }
}

#[test]
fn smoke_suite_solves_under_hqs() {
    // Every smoke-scale instance must be decided by HQS within a generous
    // budget — the Table I harness depends on it.
    let suite = benchmark_suite(Scale::Smoke);
    assert!(suite.len() >= 28);
    for instance in &suite {
        let mut session = Session::builder()
            .config(hqs::HqsConfig {
                budget: Budget::new()
                    .with_timeout(Duration::from_secs(120))
                    .with_node_limit(3_000_000),
                ..hqs::HqsConfig::default()
            })
            .build()
            .expect("valid");
        let verdict = session.solve(&instance.dqbf);
        if matches!(verdict, Outcome::Unknown(_)) {
            // The paper's own Table I shows HQS running out of memory on
            // most C432 and many comp instances; the regenerated families
            // reproduce that hardness ordering.
            assert!(
                matches!(instance.family, Family::C432 | Family::Comp),
                "{} not decided: {verdict:?}",
                instance.name
            );
            continue;
        }
        if !instance.fault {
            assert_eq!(
                verdict,
                Outcome::Sat,
                "{} must be realizable",
                instance.name
            );
        }
    }
}

#[test]
fn encoding_structure_is_as_documented() {
    // One existential per black-box output, dependencies = the box's cut.
    let instance = generate(Family::Adder, 3, 2, 0, false);
    let dqbf = &instance.dqbf;
    // adder boxes have 2 outputs each.
    let bb_outputs: Vec<_> = dqbf
        .existentials()
        .iter()
        .filter(|&&y| {
            let deps = dqbf.dependencies(y).unwrap();
            !deps.is_empty() && deps.len() < dqbf.universals().len()
        })
        .collect();
    assert!(
        bb_outputs.len() >= 4,
        "two boxes × two outputs have restricted dependency sets"
    );
}
