//! Golden tests for the observability exporters, driven end-to-end
//! through [`Session`] on a fixed PEC smoke instance.
//!
//! Three properties are pinned here:
//!
//! 1. the stable JSON export (`hqs-metrics/1`) and the Chrome trace are
//!    structurally valid and carry every schema key plus nonzero solver
//!    counters and a nested span tree;
//! 2. the span tree's self-times account for the wall time of the run
//!    (within 10%), so the summary's "self" column can be trusted;
//! 3. attaching a [`NoopObserver`] perturbs nothing — same verdict, same
//!    solver statistics, and the same number of heap allocations as an
//!    uninstrumented solve.

use hqs::obs::{
    looks_like_valid_export, Metric, MetricsObserver, NoopObserver, Obs, Observer, Phase,
};
use hqs::pec::families::generate;
use hqs::pec::Family;
use hqs::{Dqbf, HqsConfig, Outcome, Session};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A pass-through allocator that counts allocations, for the
/// "instrumentation is allocation-identical" test below.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System`; the counter is a relaxed
// atomic and does not affect allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The fixed smoke instance: a 3-stage arbiter bit-cell chain with two
/// black boxes, fault-free (realizable, so the verdict is known to be
/// SAT). Small enough to solve in milliseconds, large enough that the
/// main loop computes an elimination set and eliminates universals.
fn smoke_instance() -> Dqbf {
    generate(Family::Bitcell, 3, 2, 3, false).dqbf
}

/// Preprocessing alone would decide the instance; disable it so the solve
/// exercises the main elimination loop and its instrumentation.
fn loop_config() -> HqsConfig {
    HqsConfig::builder()
        .preprocess(false)
        .gate_detection(false)
        .build()
        .expect("loop config is valid")
}

fn observed_session(observer: Arc<dyn Observer>) -> Session {
    Session::builder()
        .config(loop_config())
        .observer(observer)
        .build()
        .expect("observed config is valid")
}

#[test]
fn metrics_json_export_is_schema_stable_on_pec_smoke() {
    let dqbf = smoke_instance();
    let observer = Arc::new(MetricsObserver::new());
    let obs = Obs::attached(observer.clone() as Arc<dyn Observer>);
    {
        let _total = obs.span(Phase::Total);
        assert_eq!(
            observed_session(observer.clone()).solve(&dqbf),
            Outcome::Sat
        );
    }
    let snapshot = observer.snapshot();
    let json = snapshot.to_json();

    assert!(
        json.starts_with("{\"schema\":\"hqs-metrics/1\",\"epoch_unix_ns\":"),
        "schema header moved: {json}"
    );
    assert!(looks_like_valid_export(
        &json,
        &["schema", "epoch_unix_ns", "counters", "gauges", "spans"]
    ));
    // Every metric appears by name even when zero — consumers index
    // without existence checks.
    for metric in Metric::ALL {
        assert!(
            json.contains(&format!("\"{}\":", metric.name())),
            "metric {} missing from JSON export",
            metric.name()
        );
    }
    // The solve actually went through the elimination loop.
    assert!(snapshot.counter(Metric::ElimSetsComputed) >= 1);
    assert!(snapshot.counter(Metric::UniversalElims) >= 1);
    assert!(snapshot.counter(Metric::AigPeakNodes) > 0);
    // The span tree nests: total at depth 0 wraps the elim loop.
    assert!(snapshot
        .spans
        .iter()
        .any(|s| s.phase == Phase::Total && s.depth == 0));
    assert!(snapshot
        .spans
        .iter()
        .any(|s| s.phase == Phase::ElimLoop && s.depth >= 1));
    // The compact per-job form stays balanced too.
    assert!(looks_like_valid_export(&snapshot.to_json_compact(), &[]));
}

#[test]
fn chrome_trace_export_loads_as_complete_events() {
    let dqbf = smoke_instance();
    let observer = Arc::new(MetricsObserver::new());
    let obs = Obs::attached(observer.clone() as Arc<dyn Observer>);
    {
        let _total = obs.span(Phase::Total);
        assert_eq!(
            observed_session(observer.clone()).solve(&dqbf),
            Outcome::Sat
        );
    }
    let trace = observer.snapshot().to_chrome_trace();
    assert!(looks_like_valid_export(
        &trace,
        &["displayTimeUnit", "traceEvents"]
    ));
    // Complete events only, with the phases the run must have touched.
    assert!(trace.contains("\"ph\":\"X\""));
    assert!(trace.contains("\"name\":\"total\""));
    assert!(trace.contains("\"name\":\"elim-loop\""));
    assert!(trace.contains("\"cat\":\"hqs\""));
    // Perfetto rejects events without pid/ts/dur.
    for key in ["\"pid\":", "\"tid\":", "\"ts\":", "\"dur\":"] {
        assert!(trace.contains(key), "trace missing {key}: {trace}");
    }
}

#[test]
fn span_self_times_account_for_wall_time() {
    let dqbf = smoke_instance();
    let observer = Arc::new(MetricsObserver::new());
    let obs = Obs::attached(observer.clone() as Arc<dyn Observer>);
    let wall_start = Instant::now();
    {
        let _total = obs.span(Phase::Total);
        assert_eq!(
            observed_session(observer.clone()).solve(&dqbf),
            Outcome::Sat
        );
    }
    let wall_ns = wall_start.elapsed().as_nanos() as u64;

    let snapshot = observer.snapshot();
    let tree = snapshot.phase_tree();
    let root = tree
        .iter()
        .find(|n| n.span.phase == Phase::Total)
        .expect("total span recorded");
    // Self-times are durations minus same-thread child spans, so across
    // the whole tree they sum back to the outermost span's duration.
    let self_sum: u64 = tree.iter().map(|n| n.self_ns).sum();
    assert_eq!(
        self_sum, root.span.dur_ns,
        "self-times must partition the total span"
    );
    // And the total span tracks the wall clock of the run within 10%.
    assert!(
        root.span.dur_ns <= wall_ns,
        "span outlived the wall clock: {} > {wall_ns}",
        root.span.dur_ns
    );
    assert!(
        wall_ns - root.span.dur_ns <= wall_ns / 10,
        "span misses more than 10% of wall time: span {} vs wall {wall_ns}",
        root.span.dur_ns
    );
}

#[test]
fn noop_observer_is_allocation_identical_and_does_not_perturb() {
    let dqbf = smoke_instance();

    let solve_counted = |observer: Option<Arc<dyn Observer>>| {
        let mut builder = Session::builder().config(loop_config());
        if let Some(observer) = observer {
            builder = builder.observer(observer);
        }
        let mut session = builder.build().expect("config is valid");
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let verdict = session.solve(&dqbf);
        let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
        (verdict, session.stats(), allocs)
    };

    // Warm-up pass (lazy thread-locals, lock pools), then two baseline
    // passes to confirm the solve itself allocates deterministically.
    let _ = solve_counted(None);
    let (plain_verdict, plain_stats, plain_allocs) = solve_counted(None);
    let (_, _, repeat_allocs) = solve_counted(None);
    assert_eq!(
        plain_allocs, repeat_allocs,
        "baseline solve must allocate deterministically for this test to mean anything"
    );

    let (noop_verdict, noop_stats, noop_allocs) = solve_counted(Some(Arc::new(NoopObserver)));
    assert_eq!(noop_verdict, plain_verdict);
    assert_eq!(
        noop_allocs, plain_allocs,
        "NoopObserver changed the allocation count"
    );
    assert_eq!(noop_stats.universal_elims, plain_stats.universal_elims);
    assert_eq!(noop_stats.existential_elims, plain_stats.existential_elims);
    assert_eq!(noop_stats.unit_pure_elims, plain_stats.unit_pure_elims);
    assert_eq!(noop_stats.peak_nodes, plain_stats.peak_nodes);
    assert_eq!(
        noop_stats.elimination_set_size,
        plain_stats.elimination_set_size
    );
}
