//! Workspace-level certification: the full `--certify` pipeline must
//! produce independently checkable artefacts — Skolem function tables on
//! SAT, expansion traces with DRAT refutations on UNSAT — that survive a
//! DQDIMACS round-trip and reject deliberate corruption.

use hqs::base::{Lit, Rng, Var};
use hqs::cnf::dimacs;
use hqs::core::expand::is_satisfiable_by_expansion;
use hqs::pec::{benchmark_suite, Scale};
use hqs::proof::parse_text_drat;
use hqs::{CertifiedOutcome, Dqbf, HqsConfig, Outcome, Session};

fn random_dqbf(rng: &mut Rng) -> Dqbf {
    let mut d = Dqbf::new();
    let nu = rng.gen_range(1..=4u32);
    let ne = rng.gen_range(1..=4u32);
    let xs: Vec<Var> = (0..nu).map(|_| d.add_universal()).collect();
    let mut all: Vec<Var> = xs.clone();
    for _ in 0..ne {
        let deps: Vec<Var> = xs.iter().copied().filter(|_| rng.gen_bool(0.5)).collect();
        all.push(d.add_existential(deps));
    }
    for _ in 0..rng.gen_range(2..=10usize) {
        let len = rng.gen_range(1..=3usize);
        let lits: Vec<Lit> = (0..len)
            .map(|_| Lit::new(all[rng.gen_range(0..all.len())], rng.gen_bool(0.5)))
            .collect();
        d.add_clause(lits);
    }
    d
}

fn certifying_session() -> Session {
    Session::builder()
        .config(HqsConfig {
            certify: true,
            initial_sat_check: true,
            ..HqsConfig::default()
        })
        .build()
        .expect("certifying config is valid")
}

#[test]
fn every_verdict_on_random_dqbfs_is_certified() {
    let mut rng = Rng::seed_from_u64(0xCE27_1F1C);
    for _ in 0..40 {
        let d = random_dqbf(&mut rng);
        let expected = is_satisfiable_by_expansion(&d);
        match certifying_session().solve_certified(&d).expect("certified") {
            CertifiedOutcome::Sat(cert) => {
                assert!(expected, "certified SAT on an unsatisfiable formula");
                assert!(cert.verify(&d));
                assert!(cert.verify_certified(&d));
            }
            CertifiedOutcome::Unsat(cert) => {
                assert!(!expected, "certified UNSAT on a satisfiable formula");
                assert!(cert.verify(&d));
                // The embedded DRAT text is well-formed on its own.
                assert!(parse_text_drat(&cert.drat).is_ok());
            }
            CertifiedOutcome::Limit(e) => panic!("unexpected limit: {e:?}"),
        }
    }
}

#[test]
fn certificates_survive_a_dqdimacs_round_trip() {
    let mut rng = Rng::seed_from_u64(0x0DD5_EED5);
    let mut checked = 0;
    while checked < 10 {
        let d = random_dqbf(&mut rng);
        // Round-trip the formula through the on-disk format; certificates
        // extracted from the original must verify against the reparsed
        // formula (same variable numbering by construction).
        let text = dimacs::write_dqdimacs(&d.to_file());
        let reparsed = Dqbf::from_file(&dimacs::parse_dqdimacs(&text).expect("own output parses"));
        match certifying_session().solve_certified(&d).expect("certified") {
            CertifiedOutcome::Sat(cert) => {
                assert!(cert.verify(&reparsed));
                checked += 1;
            }
            CertifiedOutcome::Unsat(cert) => {
                assert!(cert.verify(&reparsed));
                checked += 1;
            }
            CertifiedOutcome::Limit(e) => panic!("unexpected limit: {e:?}"),
        }
    }
}

#[test]
fn pec_smoke_instances_certify_end_to_end() {
    // One realizable and one faulty instance from the smallest PEC
    // benchmarks, kept tiny so the expansion-based certification is fast.
    let suite = benchmark_suite(Scale::Smoke);
    let mut small = suite.iter().filter(|inst| {
        let mut bound = inst.dqbf.clone();
        bound.bind_free_vars();
        bound.universals().len() <= 7
    });
    let mut seen = 0;
    for inst in small.by_ref().take(2) {
        let verdict = Session::builder()
            .build()
            .expect("defaults are valid")
            .solve(&inst.dqbf);
        match certifying_session()
            .solve_certified(&inst.dqbf)
            .expect("certified")
        {
            CertifiedOutcome::Sat(cert) => {
                assert_eq!(verdict, Outcome::Sat, "{}", inst.name);
                assert!(cert.verify(&inst.dqbf), "{}", inst.name);
            }
            CertifiedOutcome::Unsat(cert) => {
                assert_eq!(verdict, Outcome::Unsat, "{}", inst.name);
                assert!(cert.verify(&inst.dqbf), "{}", inst.name);
            }
            CertifiedOutcome::Limit(e) => panic!("{}: unexpected limit: {e:?}", inst.name),
        }
        seen += 1;
    }
    assert!(seen > 0, "smoke suite has no small instances");
}

#[test]
fn corrupted_certificates_are_rejected_end_to_end() {
    // ∀x ∃y(x): y ↔ x — unique Skolem function, every corruption rejected.
    let mut sat = Dqbf::new();
    let x = sat.add_universal();
    let y = sat.add_existential([x]);
    sat.add_clause([Lit::positive(x), Lit::negative(y)]);
    sat.add_clause([Lit::negative(x), Lit::positive(y)]);
    let CertifiedOutcome::Sat(cert) = certifying_session()
        .solve_certified(&sat)
        .expect("certified")
    else {
        panic!("y ↔ x is satisfiable");
    };
    for row in 0..cert.functions[0].table.len() {
        let mut tampered = cert.clone();
        tampered.functions[0].table[row] = !tampered.functions[0].table[row];
        assert!(!tampered.verify(&sat), "flipped row {row} accepted");
    }

    // ∀x₁∀x₂ ∃y(x₁): y ↔ x₂ — dependency-mismatch UNSAT.
    let mut unsat = Dqbf::new();
    let _x1 = unsat.add_universal();
    let x2 = unsat.add_universal();
    let y = unsat.add_existential([Var::new(0)]);
    unsat.add_clause([Lit::positive(x2), Lit::negative(y)]);
    unsat.add_clause([Lit::negative(x2), Lit::positive(y)]);
    let CertifiedOutcome::Unsat(cert) = certifying_session()
        .solve_certified(&unsat)
        .expect("certified")
    else {
        panic!("dependency mismatch is unsatisfiable");
    };
    let mut tampered = cert.clone();
    tampered.drat = "not a proof".to_string();
    assert!(!tampered.verify(&unsat));
    let mut tampered = cert.clone();
    tampered.num_universals = 0;
    assert!(!tampered.verify(&unsat));
    let mut tampered = cert;
    if let Some(binding) = tampered.bindings.first_mut() {
        binding.instance = Var::new(binding.instance.index() + 1000);
    }
    assert!(!tampered.verify(&unsat));
}
